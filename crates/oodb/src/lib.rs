//! # volcano-oodb — an object algebra model specification
//!
//! The data-model-independence proof: a *second*, non-relational model
//! plugged into the same `volcano-core` search engine, following the
//! paper's object-oriented query processing plans (§4.1, §6):
//!
//! * the Open OODB **materialize** (scope) operator, "which captures the
//!   semantics of path expressions in a logical algebra expression"
//!   (`employee.department.floor`);
//! * **assembledness** of complex objects in memory as a *physical
//!   property*, with the **assembly operator** [Keller, Graefe & Maier,
//!   SIGMOD 1991] as its enforcer — and a naive pointer-chasing enforcer
//!   competing with it on cost;
//! * **uniqueness** as a physical property "with two enforcers, sort- and
//!   hash-based" (§4.1), chosen by cost.
//!
//! The model is deliberately small — it exists to show that nothing in
//! the search engine is relational.
//!
//! ```
//! use volcano_core::{Optimizer, SearchOptions, PhysicalProps};
//! use volcano_oodb::*;
//!
//! let schema = OodbSchema::demo();
//! let model = OodbModel::new(schema);
//! let query = model.materialize_query("Employee", &["department", "floor"]);
//! let mut opt = Optimizer::new(&model, SearchOptions::default());
//! let root = opt.insert_tree(&query);
//! // Ask for Employee objects with the whole path assembled in memory.
//! let goal = model.assembled_goal(&["department", "floor"]);
//! let plan = opt.find_best_plan(root, goal, None).unwrap();
//! assert!(plan.cost > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeSet;

use volcano_core::expr::SubstExpr;
use volcano_core::ids::GroupId;
use volcano_core::model::{Algorithm, Model, Operator};
use volcano_core::pattern::{Binding, Pattern};
use volcano_core::props::PhysicalProps;
use volcano_core::rules::{
    AlgApplication, Enforcer, EnforcerApplication, ImplementationRule, RuleCtx, TransformationRule,
};
use volcano_core::ExprTree;

/// Identifier of a path (inter-object reference attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

/// A class with an extent.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Class name.
    pub name: String,
    /// Number of objects in the extent.
    pub extent_size: f64,
    /// Average object size in bytes.
    pub object_size: f64,
}

/// A single-step path: a reference attribute from one class to another.
#[derive(Debug, Clone)]
pub struct PathInfo {
    /// Path id.
    pub id: PathId,
    /// Attribute name (e.g. `department`).
    pub name: String,
    /// Source class index.
    pub source: usize,
    /// Target class index.
    pub target: usize,
    /// Average referenced objects per source object (1.0 = single-valued).
    pub fanout: f64,
}

/// The object schema: classes and paths.
#[derive(Debug, Clone, Default)]
pub struct OodbSchema {
    /// Classes, indexed by position.
    pub classes: Vec<ClassInfo>,
    /// Paths between classes.
    pub paths: Vec<PathInfo>,
}

impl OodbSchema {
    /// An empty schema.
    pub fn new() -> Self {
        OodbSchema::default()
    }

    /// Register a class; returns its index.
    pub fn add_class(&mut self, name: &str, extent_size: f64, object_size: f64) -> usize {
        self.classes.push(ClassInfo {
            name: name.to_string(),
            extent_size,
            object_size,
        });
        self.classes.len() - 1
    }

    /// Register a path; returns its id.
    pub fn add_path(&mut self, name: &str, source: usize, target: usize, fanout: f64) -> PathId {
        let id = PathId(self.paths.len() as u32);
        self.paths.push(PathInfo {
            id,
            name: name.to_string(),
            source,
            target,
            fanout,
        });
        id
    }

    /// Class index by name.
    pub fn class_by_name(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Path id by source class and attribute name.
    pub fn path_by_name(&self, source: usize, name: &str) -> Option<&PathInfo> {
        self.paths
            .iter()
            .find(|p| p.source == source && p.name == name)
    }

    /// The demo schema used in the documentation and tests: employees →
    /// departments → floors.
    pub fn demo() -> Self {
        let mut s = OodbSchema::new();
        let emp = s.add_class("Employee", 10_000.0, 200.0);
        let dept = s.add_class("Department", 100.0, 400.0);
        let floor = s.add_class("Floor", 10.0, 4_000.0);
        s.add_path("department", emp, dept, 1.0);
        s.add_path("floor", dept, floor, 1.0);
        s
    }
}

/// Logical operators of the object algebra.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OodbOp {
    /// Scan the extent of a class.
    GetExtent(usize),
    /// The Open OODB *materialize* (scope) operator: require the path to
    /// be traversable in memory for subsequent operators.
    Materialize(Vec<PathId>),
    /// Select objects by an abstract predicate with a fixed selectivity
    /// (payload is a permille value so the operator stays `Eq + Hash`).
    SelectObj(u32),
}

impl Operator for OodbOp {
    fn arity(&self) -> usize {
        match self {
            OodbOp::GetExtent(_) => 0,
            OodbOp::Materialize(_) | OodbOp::SelectObj(_) => 1,
        }
    }

    fn name(&self) -> &str {
        match self {
            OodbOp::GetExtent(_) => "get_extent",
            OodbOp::Materialize(_) => "materialize",
            OodbOp::SelectObj(_) => "select_obj",
        }
    }
}

/// Physical operators of the object algebra.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OodbAlg {
    /// Extent scan.
    ExtentScan(usize),
    /// Scope: a no-op pass-through implementing `Materialize` once its
    /// input is suitably assembled (the property system does the work).
    Scope,
    /// Predicate filter.
    FilterObj(u32),
    /// The assembly operator \[5\]: batched, breadth-first fetching of
    /// referenced objects (an enforcer for *assembledness*).
    Assembly(PathId),
    /// Naive per-object pointer chasing (competing enforcer).
    PointerChase(PathId),
    /// Sort-based duplicate elimination (enforcer for *uniqueness*).
    UniqueSort,
    /// Hash-based duplicate elimination (enforcer for *uniqueness*).
    UniqueHash,
}

impl Algorithm for OodbAlg {
    fn name(&self) -> &str {
        match self {
            OodbAlg::ExtentScan(_) => "extent_scan",
            OodbAlg::Scope => "scope",
            OodbAlg::FilterObj(_) => "filter_obj",
            OodbAlg::Assembly(_) => "assembly",
            OodbAlg::PointerChase(_) => "pointer_chase",
            OodbAlg::UniqueSort => "unique_sort",
            OodbAlg::UniqueHash => "unique_hash",
        }
    }
}

/// The object-model physical property vector: which paths are assembled
/// in memory, and whether the stream is duplicate-free.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct OodbProps {
    /// Paths assembled in memory.
    pub assembled: BTreeSet<PathId>,
    /// Duplicate-free?
    pub unique: bool,
}

impl PhysicalProps for OodbProps {
    fn any() -> Self {
        OodbProps::default()
    }

    fn satisfies(&self, required: &Self) -> bool {
        required.assembled.is_subset(&self.assembled) && (self.unique || !required.unique)
    }
}

/// Logical properties: estimated object count and the class of the
/// stream's root objects.
#[derive(Debug, Clone, Copy)]
pub struct OodbLogical {
    /// Estimated number of objects.
    pub card: f64,
    /// Root class index.
    pub class: usize,
}

// ---------------------------------------------------------------------
// Transformations: path splitting and merging (inverse rules — also a
// live test of the engine's cycle handling).
// ---------------------------------------------------------------------

struct MaterializeSplit {
    pattern: Pattern<OodbModel>,
}

impl TransformationRule<OodbModel> for MaterializeSplit {
    fn name(&self) -> &'static str {
        "materialize_split"
    }

    fn pattern(&self) -> &Pattern<OodbModel> {
        &self.pattern
    }

    fn apply(
        &self,
        b: &Binding<OodbModel>,
        _ctx: &RuleCtx<'_, OodbModel>,
    ) -> Vec<SubstExpr<OodbModel>> {
        let OodbOp::Materialize(path) = &b.op else {
            unreachable!()
        };
        if path.len() < 2 {
            return vec![];
        }
        // materialize(p1.p2...pn) => materialize(pn)(materialize(p1...p(n-1)))
        let (last, prefix) = path.split_last().expect("len >= 2");
        vec![SubstExpr::node(
            OodbOp::Materialize(vec![*last]),
            vec![SubstExpr::node(
                OodbOp::Materialize(prefix.to_vec()),
                vec![SubstExpr::group(b.input_group(0))],
            )],
        )]
    }
}

struct MaterializeMerge {
    pattern: Pattern<OodbModel>,
}

impl TransformationRule<OodbModel> for MaterializeMerge {
    fn name(&self) -> &'static str {
        "materialize_merge"
    }

    fn pattern(&self) -> &Pattern<OodbModel> {
        &self.pattern
    }

    fn apply(
        &self,
        b: &Binding<OodbModel>,
        _ctx: &RuleCtx<'_, OodbModel>,
    ) -> Vec<SubstExpr<OodbModel>> {
        let OodbOp::Materialize(outer) = &b.op else {
            unreachable!()
        };
        let inner = b.nested(0);
        let OodbOp::Materialize(inner_path) = &inner.op else {
            unreachable!()
        };
        let mut merged = inner_path.clone();
        merged.extend(outer.iter().copied());
        vec![SubstExpr::node(
            OodbOp::Materialize(merged),
            vec![SubstExpr::group(inner.input_group(0))],
        )]
    }
}

// ---------------------------------------------------------------------
// Implementation rules.
// ---------------------------------------------------------------------

struct ExtentScanRule {
    pattern: Pattern<OodbModel>,
}

impl ImplementationRule<OodbModel> for ExtentScanRule {
    fn name(&self) -> &'static str {
        "extent_to_scan"
    }

    fn pattern(&self) -> &Pattern<OodbModel> {
        &self.pattern
    }

    fn applies(
        &self,
        b: &Binding<OodbModel>,
        required: &OodbProps,
        _ctx: &RuleCtx<'_, OodbModel>,
    ) -> Vec<AlgApplication<OodbModel>> {
        let OodbOp::GetExtent(class) = &b.op else {
            unreachable!()
        };
        // An extent scan produces each object exactly once: uniqueness
        // comes for free, assembledness does not.
        let delivers = OodbProps {
            assembled: BTreeSet::new(),
            unique: true,
        };
        if !delivers.satisfies(required) {
            return vec![];
        }
        vec![AlgApplication {
            alg: OodbAlg::ExtentScan(*class),
            input_props: vec![],
            delivers,
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<OodbModel>,
        b: &Binding<OodbModel>,
        ctx: &RuleCtx<'_, OodbModel>,
    ) -> f64 {
        let l = ctx.memo().logical_props(ctx.memo().group_of(b.expr));
        l.card * 0.05
    }
}

/// `Materialize(paths)` implemented by the no-op `Scope` operator: it
/// simply *requires* its input assembled on those paths (plus whatever
/// the goal requires) and lets the enforcers do the work — the logical
/// operator is satisfied entirely through the physical property system.
struct ScopeRule {
    pattern: Pattern<OodbModel>,
}

impl ImplementationRule<OodbModel> for ScopeRule {
    fn name(&self) -> &'static str {
        "materialize_to_scope"
    }

    fn pattern(&self) -> &Pattern<OodbModel> {
        &self.pattern
    }

    fn applies(
        &self,
        b: &Binding<OodbModel>,
        required: &OodbProps,
        _ctx: &RuleCtx<'_, OodbModel>,
    ) -> Vec<AlgApplication<OodbModel>> {
        let OodbOp::Materialize(paths) = &b.op else {
            unreachable!()
        };
        let mut input = required.clone();
        for p in paths {
            input.assembled.insert(*p);
        }
        vec![AlgApplication {
            alg: OodbAlg::Scope,
            input_props: vec![input.clone()],
            delivers: input,
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<OodbModel>,
        _b: &Binding<OodbModel>,
        _ctx: &RuleCtx<'_, OodbModel>,
    ) -> f64 {
        // Pure pass-through.
        0.0
    }
}

struct FilterObjRule {
    pattern: Pattern<OodbModel>,
}

impl ImplementationRule<OodbModel> for FilterObjRule {
    fn name(&self) -> &'static str {
        "select_to_filter_obj"
    }

    fn pattern(&self) -> &Pattern<OodbModel> {
        &self.pattern
    }

    fn applies(
        &self,
        b: &Binding<OodbModel>,
        required: &OodbProps,
        _ctx: &RuleCtx<'_, OodbModel>,
    ) -> Vec<AlgApplication<OodbModel>> {
        let OodbOp::SelectObj(permille) = &b.op else {
            unreachable!()
        };
        // Filtering preserves assembledness and uniqueness.
        vec![AlgApplication {
            alg: OodbAlg::FilterObj(*permille),
            input_props: vec![required.clone()],
            delivers: required.clone(),
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<OodbModel>,
        b: &Binding<OodbModel>,
        ctx: &RuleCtx<'_, OodbModel>,
    ) -> f64 {
        ctx.logical_props(b.input_group(0)).card * 0.01
    }
}

// ---------------------------------------------------------------------
// Enforcers.
// ---------------------------------------------------------------------

/// Assembledness enforcers: the assembly operator (batched) and naive
/// pointer chasing compete on cost for the *same* property.
struct AssembleEnforcer {
    /// Batched assembly (\[5\]) or per-object pointer chasing?
    batched: bool,
    schema: std::sync::Arc<OodbSchema>,
}

impl Enforcer<OodbModel> for AssembleEnforcer {
    fn name(&self) -> &'static str {
        if self.batched {
            "assembly"
        } else {
            "pointer_chase"
        }
    }

    fn applies(
        &self,
        required: &OodbProps,
        group: GroupId,
        ctx: &RuleCtx<'_, OodbModel>,
    ) -> Vec<EnforcerApplication<OodbModel>> {
        let class = ctx.logical_props(group).class;
        let model_paths = &self.schema.paths;
        // Enforce one required path at a time, rooted at the stream's
        // class (multi-level paths are handled by enforcing level by
        // level on the relaxed goals).
        required
            .assembled
            .iter()
            .filter(|p| {
                let info = &model_paths[p.0 as usize];
                // A path can be assembled at this stream if its source is
                // the root class or a class reachable through an
                // already-required path (approximation: root or any
                // required path's target).
                info.source == class
                    || required
                        .assembled
                        .iter()
                        .any(|q| model_paths[q.0 as usize].target == info.source && *q != **p)
            })
            .map(|p| {
                let mut relaxed = required.clone();
                relaxed.assembled.remove(p);
                let mut excluded = OodbProps::any();
                excluded.assembled.insert(*p);
                let alg = if self.batched {
                    OodbAlg::Assembly(*p)
                } else {
                    OodbAlg::PointerChase(*p)
                };
                EnforcerApplication {
                    alg,
                    relaxed,
                    excluded,
                    delivers: required.clone(),
                }
            })
            .collect()
    }

    fn cost(
        &self,
        app: &EnforcerApplication<OodbModel>,
        group: GroupId,
        ctx: &RuleCtx<'_, OodbModel>,
    ) -> f64 {
        let card = ctx.logical_props(group).card.max(1.0);
        let path = match &app.alg {
            OodbAlg::Assembly(p) | OodbAlg::PointerChase(p) => *p,
            _ => unreachable!(),
        };
        let info = &self.schema.paths[path.0 as usize];
        let target = &self.schema.classes[info.target];
        let refs = card * info.fanout;
        if self.batched {
            // Assembly [5]: sort the references, then fetch the touched
            // target *pages* in elevator order — page-granular, amortized
            // across all references, but with a fixed batching overhead
            // that loses on tiny inputs.
            let target_pages = (target.extent_size * target.object_size / 4096.0).max(1.0);
            let touched = refs.min(target_pages);
            touched * 4.0 + 100.0 + refs * 0.01
        } else {
            // Pointer chasing: one random fetch per reference.
            refs * 8.0
        }
    }
}

/// Uniqueness enforcers: "uniqueness might be a physical property with
/// two enforcers, sort- and hash-based" (§4.1).
struct UniqueEnforcer {
    sort_based: bool,
}

impl Enforcer<OodbModel> for UniqueEnforcer {
    fn name(&self) -> &'static str {
        if self.sort_based {
            "unique_sort"
        } else {
            "unique_hash"
        }
    }

    fn applies(
        &self,
        required: &OodbProps,
        _group: GroupId,
        _ctx: &RuleCtx<'_, OodbModel>,
    ) -> Vec<EnforcerApplication<OodbModel>> {
        if !required.unique {
            return vec![];
        }
        let mut relaxed = required.clone();
        relaxed.unique = false;
        let excluded = OodbProps {
            assembled: BTreeSet::new(),
            unique: true,
        };
        vec![EnforcerApplication {
            alg: if self.sort_based {
                OodbAlg::UniqueSort
            } else {
                OodbAlg::UniqueHash
            },
            relaxed,
            excluded,
            delivers: required.clone(),
        }]
    }

    fn cost(
        &self,
        _app: &EnforcerApplication<OodbModel>,
        group: GroupId,
        ctx: &RuleCtx<'_, OodbModel>,
    ) -> f64 {
        let n = ctx.logical_props(group).card.max(2.0);
        if self.sort_based {
            n * n.log2() * 0.02
        } else {
            n * 0.06
        }
    }
}

/// The object model specification.
pub struct OodbModel {
    schema: std::sync::Arc<OodbSchema>,
    transforms: Vec<Box<dyn TransformationRule<OodbModel>>>,
    impls: Vec<Box<dyn ImplementationRule<OodbModel>>>,
    enforcers: Vec<Box<dyn Enforcer<OodbModel>>>,
}

impl OodbModel {
    /// Assemble the model for a schema.
    pub fn new(schema: OodbSchema) -> Self {
        let schema = std::sync::Arc::new(schema);
        let is_mat = |op: &OodbOp| matches!(op, OodbOp::Materialize(_));
        let transforms: Vec<Box<dyn TransformationRule<OodbModel>>> = vec![
            Box::new(MaterializeSplit {
                pattern: Pattern::op("materialize", is_mat, vec![Pattern::Any]),
            }),
            Box::new(MaterializeMerge {
                pattern: Pattern::op(
                    "materialize",
                    is_mat,
                    vec![Pattern::op("materialize", is_mat, vec![Pattern::Any])],
                ),
            }),
        ];
        let impls: Vec<Box<dyn ImplementationRule<OodbModel>>> = vec![
            Box::new(ExtentScanRule {
                pattern: Pattern::op(
                    "get_extent",
                    |op: &OodbOp| matches!(op, OodbOp::GetExtent(_)),
                    vec![],
                ),
            }),
            Box::new(ScopeRule {
                pattern: Pattern::op("materialize", is_mat, vec![Pattern::Any]),
            }),
            Box::new(FilterObjRule {
                pattern: Pattern::op(
                    "select_obj",
                    |op: &OodbOp| matches!(op, OodbOp::SelectObj(_)),
                    vec![Pattern::Any],
                ),
            }),
        ];
        let enforcers: Vec<Box<dyn Enforcer<OodbModel>>> = vec![
            Box::new(AssembleEnforcer {
                batched: true,
                schema: schema.clone(),
            }),
            Box::new(AssembleEnforcer {
                batched: false,
                schema: schema.clone(),
            }),
            Box::new(UniqueEnforcer { sort_based: true }),
            Box::new(UniqueEnforcer { sort_based: false }),
        ];
        OodbModel {
            schema,
            transforms,
            impls,
            enforcers,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &OodbSchema {
        &self.schema
    }

    /// Build `materialize(path...)(get_extent(class))` for a class and a
    /// chain of attribute names.
    pub fn materialize_query(&self, class: &str, path_names: &[&str]) -> ExprTree<OodbModel> {
        let class_idx = self
            .schema
            .class_by_name(class)
            .unwrap_or_else(|| panic!("unknown class {class:?}"));
        let paths = self.resolve_path(class_idx, path_names);
        ExprTree::new(
            OodbOp::Materialize(paths),
            vec![ExprTree::leaf(OodbOp::GetExtent(class_idx))],
        )
    }

    /// Resolve a chain of attribute names starting at a class.
    pub fn resolve_path(&self, class_idx: usize, names: &[&str]) -> Vec<PathId> {
        let mut cur = class_idx;
        names
            .iter()
            .map(|n| {
                let p = self
                    .schema
                    .path_by_name(cur, n)
                    .unwrap_or_else(|| panic!("unknown path {n:?} from class {cur}"));
                cur = p.target;
                p.id
            })
            .collect()
    }

    /// The physical-property goal "assembled along this path chain from
    /// Employee's class" used in examples and tests.
    pub fn assembled_goal(&self, _names: &[&str]) -> OodbProps {
        // Resolve relative to the first class that has the first path.
        let mut props = OodbProps::any();
        let mut cur = None;
        for n in _names {
            let p = self
                .schema
                .paths
                .iter()
                .find(|p| p.name == *n && cur.is_none_or(|c| p.source == c))
                .unwrap_or_else(|| panic!("unknown path {n:?}"));
            props.assembled.insert(p.id);
            cur = Some(p.target);
        }
        props
    }
}

impl Model for OodbModel {
    type Op = OodbOp;
    type Alg = OodbAlg;
    type LogicalProps = OodbLogical;
    type PhysProps = OodbProps;
    type Cost = f64;

    fn derive_logical_props(&self, op: &OodbOp, inputs: &[&OodbLogical]) -> OodbLogical {
        match op {
            OodbOp::GetExtent(class) => OodbLogical {
                card: self.schema.classes[*class].extent_size,
                class: *class,
            },
            // Materialize changes assembly status, not the object stream.
            OodbOp::Materialize(_) => *inputs[0],
            OodbOp::SelectObj(permille) => OodbLogical {
                card: inputs[0].card * (*permille as f64 / 1000.0),
                class: inputs[0].class,
            },
        }
    }

    fn transformations(&self) -> &[Box<dyn TransformationRule<Self>>] {
        &self.transforms
    }

    fn implementations(&self) -> &[Box<dyn ImplementationRule<Self>>] {
        &self.impls
    }

    fn enforcers(&self) -> &[Box<dyn Enforcer<Self>>] {
        &self.enforcers
    }
}
