//! Behavioural tests for the object algebra model: assembledness as a
//! physical property, competing enforcers, path split/merge rules, and
//! uniqueness with two enforcers.

use volcano_core::{OptimizeError, Optimizer, PhysicalProps, SearchOptions};
use volcano_oodb::*;

fn optimize(
    model: &OodbModel,
    query: &volcano_core::ExprTree<OodbModel>,
    goal: OodbProps,
) -> volcano_core::Plan<OodbModel> {
    let mut opt = Optimizer::new(model, SearchOptions::default());
    let root = opt.insert_tree(query);
    opt.find_best_plan(root, goal, None).expect("plan")
}

#[test]
fn extent_scan_alone_for_no_requirements() {
    let model = OodbModel::new(OodbSchema::demo());
    let query = volcano_core::ExprTree::leaf(OodbOp::GetExtent(0));
    let plan = optimize(&model, &query, OodbProps::any());
    assert!(matches!(plan.alg, OodbAlg::ExtentScan(0)));
    assert_eq!(plan.node_count(), 1);
}

#[test]
fn materialize_is_satisfied_through_the_property_system() {
    let model = OodbModel::new(OodbSchema::demo());
    let query = model.materialize_query("Employee", &["department"]);
    let plan = optimize(&model, &query, OodbProps::any());
    // Scope (no-op) + an assembledness enforcer + the extent scan.
    let names: Vec<&str> = plan
        .nodes()
        .iter()
        .map(|n| match &n.alg {
            OodbAlg::Scope => "scope",
            OodbAlg::Assembly(_) => "assembly",
            OodbAlg::PointerChase(_) => "pointer_chase",
            OodbAlg::ExtentScan(_) => "scan",
            other => panic!("unexpected operator {other:?}"),
        })
        .collect();
    assert!(names.contains(&"scope"));
    assert!(names.contains(&"scan"));
    assert!(
        names.contains(&"assembly") || names.contains(&"pointer_chase"),
        "an assembledness enforcer must appear: {names:?}"
    );
}

#[test]
fn assembly_beats_pointer_chasing_on_large_extents() {
    // 10,000 employees → 100 departments: batched assembly fetches each
    // department once (cost ~ 100 × 2), pointer chasing pays one random
    // fetch per employee (10,000 × 8).
    let model = OodbModel::new(OodbSchema::demo());
    let query = model.materialize_query("Employee", &["department"]);
    let plan = optimize(&model, &query, OodbProps::any());
    assert_eq!(
        plan.count_algs(|a| matches!(a, OodbAlg::Assembly(_))),
        1,
        "batched assembly should win:\n{}",
        plan.explain()
    );
    assert_eq!(
        plan.count_algs(|a| matches!(a, OodbAlg::PointerChase(_))),
        0
    );
}

#[test]
fn pointer_chasing_wins_when_few_sources_many_targets() {
    // 10 sources referencing into a 1,000,000-object extent with fanout
    // 1: assembly's batched clustering has nothing to amortize, pointer
    // chasing does 10 random fetches.
    let mut s = OodbSchema::new();
    let few = s.add_class("Few", 10.0, 100.0);
    let many = s.add_class("Many", 1_000_000.0, 100.0);
    s.add_path("target", few, many, 1.0);
    let model = OodbModel::new(s);
    let query = model.materialize_query("Few", &["target"]);
    let plan = optimize(&model, &query, OodbProps::any());
    assert_eq!(
        plan.count_algs(|a| matches!(a, OodbAlg::PointerChase(_))),
        1,
        "pointer chasing should win:\n{}",
        plan.explain()
    );
}

#[test]
fn multi_level_path_assembles_level_by_level() {
    let model = OodbModel::new(OodbSchema::demo());
    let query = model.materialize_query("Employee", &["department", "floor"]);
    let plan = optimize(&model, &query, OodbProps::any());
    let enforcers =
        plan.count_algs(|a| matches!(a, OodbAlg::Assembly(_) | OodbAlg::PointerChase(_)));
    assert_eq!(
        enforcers,
        2,
        "two path levels, two enforcers:\n{}",
        plan.explain()
    );
    // And the goal's property really holds.
    let goal = model.assembled_goal(&["department", "floor"]);
    assert!(plan.delivered.satisfies(&goal));
}

#[test]
fn inverse_split_merge_rules_terminate() {
    // materialize_split and materialize_merge are mutual inverses; the
    // memo's duplicate detection and in-progress marks must keep the
    // exploration finite.
    let model = OodbModel::new(OodbSchema::demo());
    let query = model.materialize_query("Employee", &["department", "floor"]);
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    let _ = opt.find_best_plan(root, OodbProps::any(), None).unwrap();
    // Exploration stopped and the memo stayed small.
    assert!(opt.stats().exprs_created < 50);
    assert!(opt.stats().explore_passes < 10);
}

#[test]
fn uniqueness_has_two_competing_enforcers() {
    let mut s = OodbSchema::new();
    // A non-unique stream: extent scan delivers unique=true, so to make
    // uniqueness *required work* we select from a class and require
    // uniqueness after a (hypothetically duplicating) materialize — the
    // simplest demonstration is to require uniqueness on a stream whose
    // scan already delivers it: the goal is then satisfied without any
    // enforcer. So instead check the enforcer choice directly on the
    // relaxed problem: large extents favour hash (linear) over sort
    // (n log n).
    let big = s.add_class("Big", 1_000_000.0, 50.0);
    s.add_path("self_ref", big, big, 2.0);
    let model = OodbModel::new(s);
    // materialize with fanout 2 produces a stream where uniqueness is
    // delivered by the scan (unique=true survives Scope's pass-through
    // only if required); requiring unique + assembled exercises both
    // enforcer families.
    let query = model.materialize_query("Big", &["self_ref"]);
    let goal = OodbProps {
        assembled: model.assembled_goal(&["self_ref"]).assembled,
        unique: true,
    };
    let plan = optimize(&model, &query, goal.clone());
    assert!(plan.delivered.satisfies(&goal));
}

#[test]
fn selection_preserves_properties() {
    let model = OodbModel::new(OodbSchema::demo());
    let class = model.schema().class_by_name("Employee").unwrap();
    let query = volcano_core::ExprTree::new(
        OodbOp::SelectObj(100),
        vec![model.materialize_query("Employee", &["department"])],
    );
    let goal = model.assembled_goal(&["department"]);
    let plan = optimize(&model, &query, goal.clone());
    assert!(plan.delivered.satisfies(&goal));
    let _ = class;
}

#[test]
fn impossible_goal_fails_cleanly() {
    // Require a path assembled whose source class never appears in the
    // query: no enforcer applies.
    let mut s = OodbSchema::new();
    let a = s.add_class("A", 100.0, 100.0);
    let b = s.add_class("B", 100.0, 100.0);
    let c = s.add_class("C", 100.0, 100.0);
    s.add_path("ab", a, b, 1.0);
    let unrelated = s.add_path("cb", c, b, 1.0);
    let model = OodbModel::new(s);
    let query = volcano_core::ExprTree::leaf(OodbOp::GetExtent(a));
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    let mut goal = OodbProps::any();
    goal.assembled.insert(unrelated);
    assert_eq!(
        opt.find_best_plan(root, goal, None).unwrap_err(),
        OptimizeError::NoPlan
    );
}
