//! # volcano-sql — a small SQL-like front end
//!
//! "The translation from a user interface into a logical algebra
//! expression must be performed by the parser" (§2.2). This crate is that
//! parser: a hand-written lexer ([`lexer`]) and recursive-descent parser
//! ([`parser`]) for a compact SQL subset, and a lowering pass ([`lower()`])
//! from the AST to the `volcano-rel` logical algebra.
//!
//! Supported:
//!
//! ```sql
//! SELECT * | col, tab.col, COUNT(*), SUM(tab.col), ...
//! FROM t1, t2 [, ...]
//! [WHERE a.x = b.y AND t.c < 5 AND ...]     -- conjunctions only
//! [GROUP BY cols] [ORDER BY cols]
//! ```
//! plus `UNION` / `INTERSECT` / `EXCEPT` between two such blocks.
//!
//! # Example
//!
//! ```
//! use volcano_sql::plan_query;
//! use volcano_rel::{Catalog, ColumnDef};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_table("emp", 1000.0, vec![
//!     ColumnDef::int("id", 1000.0),
//!     ColumnDef::int("dept", 20.0),
//! ]);
//! catalog.add_table("dept", 20.0, vec![ColumnDef::int("id", 20.0)]);
//!
//! let q = plan_query(
//!     "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id ORDER BY emp.id",
//!     &mut catalog,
//! ).unwrap();
//! assert_eq!(q.expr.display(), "project(join(get, get))");
//! assert_eq!(q.order_by.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod param;
pub mod parser;
pub mod stmt;

pub use ast::{Query as AstQuery, SelectStmt};
pub use lower::{lower, lower_with_params, LowerError, Query};
pub use param::{parameterize, shape_key, BindError, ParamQuery};
pub use parser::{parse, ParseError};
pub use stmt::{
    parse_script, parse_statement, BudgetSetting, ColumnSpec, ExecutorSetting, PlanCacheSetting,
    Statement,
};

/// Parse and lower in one step.
pub fn plan_query(sql: &str, catalog: &mut volcano_rel::Catalog) -> Result<Query, QueryError> {
    let ast = parse(sql).map_err(QueryError::Parse)?;
    lower(&ast, catalog).map_err(QueryError::Lower)
}

/// Error from [`plan_query`].
#[derive(Debug)]
pub enum QueryError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error (unknown table/column, ...).
    Lower(LowerError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Lower(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}
