//! Top-level statements for the CLI: DDL, data generation, EXPLAIN, and
//! queries.
//!
//! ```text
//! CREATE TABLE emp (id INT, dept INT DISTINCT 20, name STRING WIDTH 24) CARD 1000;
//! GENERATE SEED 42;
//! EXPLAIN SELECT * FROM emp WHERE id < 10;
//! SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept;
//! ```

use volcano_rel::Value;

use crate::ast::Query;
use crate::lexer::{tokenize, Token};
use crate::parser::{parse, ParseError};

/// A column in a CREATE TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Type name: `INT`, `FLOAT`, `STRING`, or `BOOL`.
    pub ty: String,
    /// Byte width (defaults per type).
    pub width: Option<u32>,
    /// Distinct-value estimate (defaults to the table cardinality).
    pub distinct: Option<f64>,
    /// Maintain a B+tree index on this column.
    pub indexed: bool,
}

/// One knob of the search budget, as set from the CLI.
///
/// ```text
/// SET BUDGET TIMEOUT 50;   -- wall-clock deadline in milliseconds
/// SET BUDGET GOALS 200;    -- cap on optimization goals started
/// SET BUDGET EXPRS 5000;   -- cap on memo expressions
/// SET BUDGET GROUPS 1000;  -- cap on memo groups
/// SET BUDGET OFF;          -- back to unlimited, exhaustive search
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSetting {
    /// Wall-clock deadline in milliseconds.
    TimeoutMs(u64),
    /// Maximum optimization goals started.
    Goals(u64),
    /// Maximum memo expressions.
    Exprs(usize),
    /// Maximum memo groups.
    Groups(usize),
    /// Clear every budget knob: unlimited, exhaustive search.
    Off,
}

/// The execution engine choice, as set from the CLI.
///
/// ```text
/// SET EXECUTOR TUPLE;                -- classic tuple-at-a-time iterators
/// SET EXECUTOR BATCH;                -- vectorized engine, default batch size
/// SET EXECUTOR BATCH 4096;           -- vectorized engine, explicit batch size
/// SET EXECUTOR BATCH PARALLEL 8;     -- morsel-driven parallel, 8 workers
/// SET EXECUTOR BATCH 4096 PARALLEL 8; -- both knobs at once
/// SET EXECUTOR BATCH PARALLEL 1;     -- back to serial batch execution
/// SET EXECUTOR FUSED;                -- pipeline-fused engine
/// SET EXECUTOR FUSED 4096 PARALLEL 8; -- fused, with the same knobs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorSetting {
    /// The tuple-at-a-time iterator engine.
    Tuple,
    /// The vectorized batch engine, with an optional batch size
    /// (`None` = the engine default).
    Batch {
        /// Rows per batch, if given explicitly.
        batch_size: Option<usize>,
        /// Morsel-driven parallel degree, if given explicitly
        /// (`None` = leave the current degree unchanged; `Some(1)`
        /// explicitly reverts to serial execution).
        parallel: Option<u32>,
    },
    /// The pipeline-fused engine, with the same knobs as `Batch`.
    Fused {
        /// Rows per batch, if given explicitly.
        batch_size: Option<usize>,
        /// Morsel-driven parallel degree, if given explicitly.
        parallel: Option<u32>,
    },
}

/// The plan-cache switch, as set from the CLI.
///
/// ```text
/// SET PLAN_CACHE ON;     -- enable (default capacity)
/// SET PLAN_CACHE OFF;    -- disable and clear
/// SET PLAN_CACHE 256;    -- enable with an entry capacity
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanCacheSetting {
    /// Enable with the default capacity.
    On,
    /// Disable and clear.
    Off,
    /// Enable with an explicit entry capacity.
    Capacity(usize),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (cols...) [CARD n]`.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<ColumnSpec>,
        /// Estimated row count (default 1000).
        card: f64,
    },
    /// `GENERATE [SEED n]`: populate all tables synthetically.
    Generate {
        /// RNG seed.
        seed: u64,
    },
    /// `SET COST LIMIT n | SET COST LIMIT OFF`: the §3 user-interface
    /// facility to "catch" unreasonable queries — subsequent queries fail
    /// when no plan fits the limit (cost-model milliseconds).
    SetCostLimit(Option<f64>),
    /// `SET BUDGET <knob> <n> | SET BUDGET OFF`: bound the optimizer's
    /// search effort; tripped budgets degrade to greedy completion and
    /// still return a valid (if possibly suboptimal) plan.
    SetBudget(BudgetSetting),
    /// `SET EXECUTOR TUPLE | BATCH [n]`: choose the execution engine
    /// for subsequent queries (results are engine-invariant; only the
    /// unit of transfer between operators changes).
    SetExecutor(ExecutorSetting),
    /// `EXPLAIN [ANALYZE] <query>`: show the logical expression and the
    /// chosen plan; with ANALYZE, also execute and report per-operator
    /// actual row counts.
    Explain {
        /// The query.
        query: Query,
        /// Execute and report actual row counts?
        analyze: bool,
    },
    /// `DROP TABLE name`: remove a table; bumps the stats epoch so
    /// cached plans over it can never be served again.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `SET PLAN_CACHE ON | OFF | <capacity>`.
    SetPlanCache(PlanCacheSetting),
    /// `SET FEEDBACK ON | OFF`: harvest actual cardinalities from
    /// executions into the optimizer's selectivity memory, so cached
    /// plans that estimates got wrong are re-optimized under observed
    /// statistics.
    SetFeedback(bool),
    /// `PREPARE name AS <query>`: parameterize and remember a statement
    /// under a name for later `EXECUTE`.
    Prepare {
        /// Statement name.
        name: String,
        /// The (possibly `$n`-parameterized) query.
        query: Query,
    },
    /// `EXECUTE name [(v, ...)]`: run a prepared statement with the
    /// given parameter values.
    Execute {
        /// Statement name.
        name: String,
        /// Values for the statement's explicit `$n` slots.
        params: Vec<Value>,
    },
    /// A query to optimize and execute.
    Query(Query),
}

/// Parse a `;`-separated script into statements. The split respects
/// string literals, so `'a;b'` stays inside one statement.
pub fn parse_script(input: &str) -> Result<Vec<Statement>, ParseError> {
    let mut stmts = Vec::new();
    for piece in split_statements(input) {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        stmts.push(parse_statement(piece)?);
    }
    Ok(stmts)
}

/// Split on `;` outside single-quoted strings.
fn split_statements(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in input.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ';' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Parse one statement (no trailing semicolon).
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let trimmed = input.trim_start();
    let head = trimmed
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_uppercase();
    match head.as_str() {
        "CREATE" => parse_create(trimmed),
        "DROP" => parse_drop(trimmed),
        "GENERATE" => parse_generate(trimmed),
        "PREPARE" => parse_prepare(trimmed),
        "EXECUTE" => parse_execute(trimmed),
        "SET" => parse_set(trimmed),
        "EXPLAIN" => {
            let rest = trimmed[7..].trim_start();
            let (rest, analyze) = match rest.get(..7) {
                Some(head) if head.eq_ignore_ascii_case("analyze") => (&rest[7..], true),
                _ => (rest, false),
            };
            Ok(Statement::Explain {
                query: parse(rest)?,
                analyze,
            })
        }
        _ => Ok(Statement::Query(parse(trimmed)?)),
    }
}

fn unexpected(expected: &str, found: Option<Token>) -> ParseError {
    ParseError::Unexpected {
        found,
        expected: expected.to_string(),
    }
}

fn parse_create(input: &str) -> Result<Statement, ParseError> {
    let toks = tokenize(input).map_err(ParseError::Lex)?;
    let mut i = 0;
    let kw = |toks: &[Token], i: &mut usize, kw: &str| -> Result<(), ParseError> {
        match toks.get(*i) {
            Some(t) if t.is_kw(kw) => {
                *i += 1;
                Ok(())
            }
            other => Err(unexpected(&format!("keyword {kw}"), other.cloned())),
        }
    };
    kw(&toks, &mut i, "create")?;
    kw(&toks, &mut i, "table")?;
    let name = match toks.get(i) {
        Some(Token::Ident(s)) => {
            i += 1;
            s.clone()
        }
        other => return Err(unexpected("table name", other.cloned())),
    };
    match toks.get(i) {
        Some(Token::LParen) => i += 1,
        other => return Err(unexpected("'('", other.cloned())),
    }
    let mut columns = Vec::new();
    loop {
        let col_name = match toks.get(i) {
            Some(Token::Ident(s)) => {
                i += 1;
                s.clone()
            }
            other => return Err(unexpected("column name", other.cloned())),
        };
        let ty = match toks.get(i) {
            Some(Token::Ident(s)) => {
                i += 1;
                s.to_ascii_uppercase()
            }
            other => return Err(unexpected("column type", other.cloned())),
        };
        let mut width = None;
        let mut distinct = None;
        let mut indexed = false;
        loop {
            match toks.get(i) {
                Some(t) if t.is_kw("indexed") => {
                    i += 1;
                    indexed = true;
                }
                Some(t) if t.is_kw("width") => {
                    i += 1;
                    match toks.get(i) {
                        Some(Token::Int(n)) => {
                            width = Some(*n as u32);
                            i += 1;
                        }
                        other => return Err(unexpected("width value", other.cloned())),
                    }
                }
                Some(t) if t.is_kw("distinct") => {
                    i += 1;
                    match toks.get(i) {
                        Some(Token::Int(n)) => {
                            distinct = Some(*n as f64);
                            i += 1;
                        }
                        other => return Err(unexpected("distinct value", other.cloned())),
                    }
                }
                _ => break,
            }
        }
        columns.push(ColumnSpec {
            name: col_name,
            ty,
            width,
            distinct,
            indexed,
        });
        match toks.get(i) {
            Some(Token::Comma) => i += 1,
            Some(Token::RParen) => {
                i += 1;
                break;
            }
            other => return Err(unexpected("',' or ')'", other.cloned())),
        }
    }
    let mut card = 1000.0;
    if matches!(toks.get(i), Some(t) if t.is_kw("card")) {
        i += 1;
        match toks.get(i) {
            Some(Token::Int(n)) => {
                card = *n as f64;
                i += 1;
            }
            other => return Err(unexpected("cardinality", other.cloned())),
        }
    }
    if let Some(t) = toks.get(i) {
        return Err(unexpected("end of statement", Some(t.clone())));
    }
    Ok(Statement::CreateTable {
        name,
        columns,
        card,
    })
}

fn parse_drop(input: &str) -> Result<Statement, ParseError> {
    let toks = tokenize(input).map_err(ParseError::Lex)?;
    match toks.as_slice() {
        [d, t, Token::Ident(name)] if d.is_kw("drop") && t.is_kw("table") => {
            Ok(Statement::DropTable { name: name.clone() })
        }
        _ => Err(unexpected("DROP TABLE <name>", toks.get(1).cloned())),
    }
}

fn parse_prepare(input: &str) -> Result<Statement, ParseError> {
    // PREPARE <name> AS <query> — the tail is handed to the query parser
    // verbatim, so it may contain $n placeholders.
    let rest = input["PREPARE".len()..].trim_start();
    let name_len = rest
        .find(char::is_whitespace)
        .ok_or_else(|| unexpected("PREPARE <name> AS <query>", None))?;
    let (name, rest) = rest.split_at(name_len);
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(unexpected(
            "prepared statement name",
            Some(Token::Ident(name.to_string())),
        ));
    }
    let rest = rest.trim_start();
    let Some(query_text) = rest
        .get(..2)
        .filter(|h| h.eq_ignore_ascii_case("as"))
        .map(|_| &rest[2..])
        .filter(|t| t.starts_with(char::is_whitespace))
    else {
        return Err(unexpected(
            "keyword AS",
            Some(Token::Ident(
                rest.split_whitespace().next().unwrap_or("").to_string(),
            )),
        ));
    };
    Ok(Statement::Prepare {
        name: name.to_string(),
        query: parse(query_text)?,
    })
}

fn parse_execute(input: &str) -> Result<Statement, ParseError> {
    let toks = tokenize(input).map_err(ParseError::Lex)?;
    let name = match (toks.first(), toks.get(1)) {
        (Some(e), Some(Token::Ident(name))) if e.is_kw("execute") => name.clone(),
        _ => {
            return Err(unexpected(
                "EXECUTE <name> [(v, ...)]",
                toks.get(1).cloned(),
            ))
        }
    };
    let mut params = Vec::new();
    let mut i = 2;
    if i < toks.len() {
        match toks.get(i) {
            Some(Token::LParen) => i += 1,
            other => return Err(unexpected("'('", other.cloned())),
        }
        loop {
            match toks.get(i) {
                Some(Token::Int(n)) => params.push(Value::Int(*n)),
                Some(Token::Float(x)) => params.push(Value::float(*x)),
                Some(Token::Str(s)) => params.push(Value::Str(s.clone())),
                other => return Err(unexpected("parameter literal", other.cloned())),
            }
            i += 1;
            match toks.get(i) {
                Some(Token::Comma) => i += 1,
                Some(Token::RParen) => {
                    i += 1;
                    break;
                }
                other => return Err(unexpected("',' or ')'", other.cloned())),
            }
        }
        if let Some(t) = toks.get(i) {
            return Err(unexpected("end of statement", Some(t.clone())));
        }
    }
    Ok(Statement::Execute { name, params })
}

fn parse_set(input: &str) -> Result<Statement, ParseError> {
    let toks = tokenize(input).map_err(ParseError::Lex)?;
    if matches!(toks.get(1), Some(t) if t.is_kw("budget")) {
        return parse_set_budget(&toks);
    }
    if matches!(toks.get(1), Some(t) if t.is_kw("executor")) {
        return parse_set_executor(&toks);
    }
    if matches!(toks.get(1), Some(t) if t.is_kw("plan_cache")) {
        let setting = match toks.as_slice() {
            [_, _, t] if t.is_kw("on") => PlanCacheSetting::On,
            [_, _, t] if t.is_kw("off") => PlanCacheSetting::Off,
            [_, _, Token::Int(n)] if *n >= 1 => PlanCacheSetting::Capacity(*n as usize),
            _ => {
                return Err(unexpected(
                    "SET PLAN_CACHE <ON|OFF|capacity>",
                    toks.get(2).cloned(),
                ))
            }
        };
        return Ok(Statement::SetPlanCache(setting));
    }
    if matches!(toks.get(1), Some(t) if t.is_kw("feedback")) {
        let on = match toks.as_slice() {
            [_, _, t] if t.is_kw("on") => true,
            [_, _, t] if t.is_kw("off") => false,
            _ => return Err(unexpected("SET FEEDBACK <ON|OFF>", toks.get(2).cloned())),
        };
        return Ok(Statement::SetFeedback(on));
    }
    match toks.as_slice() {
        [s, c, l, Token::Int(n)]
            if s.is_kw("set") && c.is_kw("cost") && l.is_kw("limit") && *n >= 0 =>
        {
            Ok(Statement::SetCostLimit(Some(*n as f64)))
        }
        [s, c, l, Token::Float(x)]
            if s.is_kw("set") && c.is_kw("cost") && l.is_kw("limit") && *x >= 0.0 =>
        {
            Ok(Statement::SetCostLimit(Some(*x)))
        }
        [s, c, l, off]
            if s.is_kw("set") && c.is_kw("cost") && l.is_kw("limit") && off.is_kw("off") =>
        {
            Ok(Statement::SetCostLimit(None))
        }
        _ => Err(unexpected("SET COST LIMIT <n|OFF>", toks.get(1).cloned())),
    }
}

fn parse_set_budget(toks: &[Token]) -> Result<Statement, ParseError> {
    let setting = match toks {
        [_, _, off] if off.is_kw("off") => BudgetSetting::Off,
        [_, _, knob, Token::Int(n)] if *n >= 0 => {
            if knob.is_kw("timeout") {
                BudgetSetting::TimeoutMs(*n as u64)
            } else if knob.is_kw("goals") {
                BudgetSetting::Goals(*n as u64)
            } else if knob.is_kw("exprs") {
                BudgetSetting::Exprs(*n as usize)
            } else if knob.is_kw("groups") {
                BudgetSetting::Groups(*n as usize)
            } else {
                return Err(unexpected(
                    "SET BUDGET <TIMEOUT|GOALS|EXPRS|GROUPS> <n> | OFF",
                    toks.get(2).cloned(),
                ));
            }
        }
        _ => {
            return Err(unexpected(
                "SET BUDGET <TIMEOUT|GOALS|EXPRS|GROUPS> <n> | OFF",
                toks.get(2).cloned(),
            ))
        }
    };
    Ok(Statement::SetBudget(setting))
}

const EXECUTOR_USAGE: &str = "SET EXECUTOR <TUPLE|BATCH|FUSED [n] [PARALLEL k]>";

/// Parse the shared `[n] [PARALLEL k]` tail of a batch/fused executor.
fn parse_executor_knobs(rest: &[Token]) -> Result<(Option<usize>, Option<u32>), ParseError> {
    match rest {
        [] => Ok((None, None)),
        [Token::Int(n)] if *n >= 1 => Ok((Some(*n as usize), None)),
        [p, Token::Int(d)] if p.is_kw("parallel") && *d >= 1 => Ok((None, Some(*d as u32))),
        [Token::Int(n), p, Token::Int(d)] if p.is_kw("parallel") && *n >= 1 && *d >= 1 => {
            Ok((Some(*n as usize), Some(*d as u32)))
        }
        _ => Err(unexpected(EXECUTOR_USAGE, rest.first().cloned())),
    }
}

fn parse_set_executor(toks: &[Token]) -> Result<Statement, ParseError> {
    let setting = match toks {
        [_, _, t] if t.is_kw("tuple") => ExecutorSetting::Tuple,
        [_, _, t, rest @ ..] if t.is_kw("batch") => {
            let (batch_size, parallel) = parse_executor_knobs(rest)?;
            ExecutorSetting::Batch {
                batch_size,
                parallel,
            }
        }
        [_, _, t, rest @ ..] if t.is_kw("fused") => {
            let (batch_size, parallel) = parse_executor_knobs(rest)?;
            ExecutorSetting::Fused {
                batch_size,
                parallel,
            }
        }
        _ => return Err(unexpected(EXECUTOR_USAGE, toks.get(2).cloned())),
    };
    Ok(Statement::SetExecutor(setting))
}

fn parse_generate(input: &str) -> Result<Statement, ParseError> {
    let toks = tokenize(input).map_err(ParseError::Lex)?;
    let mut seed = 0u64;
    match toks.as_slice() {
        [t] if t.is_kw("generate") => {}
        [t, s, Token::Int(n)] if t.is_kw("generate") && s.is_kw("seed") && *n >= 0 => {
            seed = *n as u64;
        }
        _ => return Err(unexpected("GENERATE [SEED n]", toks.get(1).cloned())),
    }
    Ok(Statement::Generate { seed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Condition;

    #[test]
    fn create_table_full() {
        let s = parse_statement(
            "CREATE TABLE emp (id INT, dept INT DISTINCT 20, name STRING WIDTH 24 DISTINCT 900) CARD 1000",
        )
        .unwrap();
        let Statement::CreateTable {
            name,
            columns,
            card,
        } = s
        else {
            panic!()
        };
        assert_eq!(name, "emp");
        assert_eq!(card, 1000.0);
        assert_eq!(columns.len(), 3);
        assert_eq!(columns[1].distinct, Some(20.0));
        assert_eq!(columns[2].width, Some(24));
        assert_eq!(columns[2].ty, "STRING");
    }

    #[test]
    fn generate_with_and_without_seed() {
        assert_eq!(
            parse_statement("GENERATE").unwrap(),
            Statement::Generate { seed: 0 }
        );
        assert_eq!(
            parse_statement("GENERATE SEED 7").unwrap(),
            Statement::Generate { seed: 7 }
        );
    }

    #[test]
    fn set_cost_limit() {
        assert_eq!(
            parse_statement("SET COST LIMIT 5000").unwrap(),
            Statement::SetCostLimit(Some(5000.0))
        );
        assert_eq!(
            parse_statement("SET COST LIMIT OFF").unwrap(),
            Statement::SetCostLimit(None)
        );
        assert!(parse_statement("SET COST").is_err());
    }

    #[test]
    fn set_budget() {
        assert_eq!(
            parse_statement("SET BUDGET TIMEOUT 50").unwrap(),
            Statement::SetBudget(BudgetSetting::TimeoutMs(50))
        );
        assert_eq!(
            parse_statement("SET BUDGET GOALS 200").unwrap(),
            Statement::SetBudget(BudgetSetting::Goals(200))
        );
        assert_eq!(
            parse_statement("set budget exprs 5000").unwrap(),
            Statement::SetBudget(BudgetSetting::Exprs(5000))
        );
        assert_eq!(
            parse_statement("SET BUDGET GROUPS 1000").unwrap(),
            Statement::SetBudget(BudgetSetting::Groups(1000))
        );
        assert_eq!(
            parse_statement("SET BUDGET OFF").unwrap(),
            Statement::SetBudget(BudgetSetting::Off)
        );
        assert!(parse_statement("SET BUDGET").is_err());
        assert!(parse_statement("SET BUDGET MOVES 5").is_err());
        assert!(parse_statement("SET BUDGET TIMEOUT x").is_err());
    }

    #[test]
    fn set_executor() {
        assert_eq!(
            parse_statement("SET EXECUTOR TUPLE").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Tuple)
        );
        assert_eq!(
            parse_statement("set executor batch").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Batch {
                batch_size: None,
                parallel: None
            })
        );
        assert_eq!(
            parse_statement("SET EXECUTOR BATCH 4096").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Batch {
                batch_size: Some(4096),
                parallel: None
            })
        );
        assert_eq!(
            parse_statement("SET EXECUTOR BATCH PARALLEL 8").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Batch {
                batch_size: None,
                parallel: Some(8)
            })
        );
        assert_eq!(
            parse_statement("set executor batch 4096 parallel 4").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Batch {
                batch_size: Some(4096),
                parallel: Some(4)
            })
        );
        assert_eq!(
            parse_statement("SET EXECUTOR FUSED").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Fused {
                batch_size: None,
                parallel: None
            })
        );
        assert_eq!(
            parse_statement("set executor fused 512").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Fused {
                batch_size: Some(512),
                parallel: None
            })
        );
        assert_eq!(
            parse_statement("SET EXECUTOR FUSED PARALLEL 8").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Fused {
                batch_size: None,
                parallel: Some(8)
            })
        );
        assert_eq!(
            parse_statement("SET EXECUTOR FUSED 1024 PARALLEL 4").unwrap(),
            Statement::SetExecutor(ExecutorSetting::Fused {
                batch_size: Some(1024),
                parallel: Some(4)
            })
        );
        assert!(parse_statement("SET EXECUTOR").is_err());
        assert!(parse_statement("SET EXECUTOR ROW").is_err());
        assert!(parse_statement("SET EXECUTOR BATCH 0").is_err());
        assert!(parse_statement("SET EXECUTOR BATCH PARALLEL 0").is_err());
        assert!(parse_statement("SET EXECUTOR BATCH PARALLEL").is_err());
        assert!(parse_statement("SET EXECUTOR FUSED 0").is_err());
        assert!(parse_statement("SET EXECUTOR FUSED PARALLEL 0").is_err());
    }

    #[test]
    fn set_plan_cache() {
        assert_eq!(
            parse_statement("SET PLAN_CACHE ON").unwrap(),
            Statement::SetPlanCache(PlanCacheSetting::On)
        );
        assert_eq!(
            parse_statement("set plan_cache off").unwrap(),
            Statement::SetPlanCache(PlanCacheSetting::Off)
        );
        assert_eq!(
            parse_statement("SET PLAN_CACHE 256").unwrap(),
            Statement::SetPlanCache(PlanCacheSetting::Capacity(256))
        );
        assert!(parse_statement("SET PLAN_CACHE 0").is_err());
        assert!(parse_statement("SET PLAN_CACHE maybe").is_err());
    }

    #[test]
    fn set_feedback() {
        assert_eq!(
            parse_statement("SET FEEDBACK ON").unwrap(),
            Statement::SetFeedback(true)
        );
        assert_eq!(
            parse_statement("set feedback off").unwrap(),
            Statement::SetFeedback(false)
        );
        assert!(parse_statement("SET FEEDBACK").is_err());
        assert!(parse_statement("SET FEEDBACK maybe").is_err());
        assert!(parse_statement("SET FEEDBACK 1").is_err());
    }

    #[test]
    fn drop_table() {
        assert_eq!(
            parse_statement("DROP TABLE emp").unwrap(),
            Statement::DropTable { name: "emp".into() }
        );
        assert!(parse_statement("DROP emp").is_err());
        assert!(parse_statement("DROP TABLE").is_err());
    }

    #[test]
    fn prepare_and_execute() {
        let s = parse_statement("PREPARE q1 AS SELECT * FROM emp WHERE salary > $0").unwrap();
        let Statement::Prepare { name, query } = s else {
            panic!()
        };
        assert_eq!(name, "q1");
        let Query::Select(sel) = query else { panic!() };
        assert!(matches!(sel.conditions[0], Condition::ColParam(_, _, 0)));

        assert_eq!(
            parse_statement("EXECUTE q1 (5, 1.5, 'x')").unwrap(),
            Statement::Execute {
                name: "q1".into(),
                params: vec![Value::Int(5), Value::float(1.5), Value::Str("x".into())],
            }
        );
        assert_eq!(
            parse_statement("execute q1").unwrap(),
            Statement::Execute {
                name: "q1".into(),
                params: vec![],
            }
        );
        assert!(parse_statement("PREPARE q1 SELECT * FROM emp").is_err());
        assert!(parse_statement("PREPARE q1").is_err());
        assert!(parse_statement("EXECUTE q1 (").is_err());
        assert!(parse_statement("EXECUTE q1 (1,)").is_err());
        assert!(parse_statement("EXECUTE q1 (1) extra").is_err());
    }

    #[test]
    fn explain_and_query() {
        assert!(matches!(
            parse_statement("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT * FROM t").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
        assert!(matches!(
            parse_statement("SELECT * FROM t").unwrap(),
            Statement::Query(_)
        ));
    }

    #[test]
    fn script_splits_on_semicolons_outside_strings() {
        let stmts = parse_script(
            "CREATE TABLE t (x INT) CARD 10; SELECT * FROM t WHERE s = 'a;b'; GENERATE;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[1], Statement::Query(_)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("CREATE TABLE").is_err());
        assert!(parse_statement("CREATE TABLE t x INT").is_err());
        assert!(parse_statement("GENERATE SEED x").is_err());
    }
}
