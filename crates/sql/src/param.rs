//! Auto-parameterization and canonical query shapes for the plan cache.
//!
//! Two queries that differ only in the literal constants of their WHERE
//! clause optimize to the same plan *template*; the plan cache exploits
//! this by keying entries on the query's **shape** — the operator tree
//! with every parameterized constant replaced by its slot number — so a
//! single optimization serves the whole family.
//!
//! [`parameterize`] rewrites an AST, hoisting each `col op literal`
//! conjunct into a fresh `$n` placeholder and collecting the extracted
//! values. Placeholders the user wrote explicitly (`PREPARE ... WHERE x
//! < $0`) keep their slots; auto slots are allocated after them.
//! [`shape_key`] then hashes the *lowered* algebra, skipping the bound
//! value of every parameter-tagged comparison, so rebinding a template
//! never changes its key.

use std::fmt;
use std::hash::{Hash, Hasher};

use volcano_core::fxhash::FxHasher;
use volcano_rel::{AttrId, RelExpr, RelOp, Value};

use crate::ast::{Condition, Query as AstQuery, SelectStmt};

/// A query rewritten into shape + extracted constants.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamQuery {
    /// The rewritten AST: every `col op literal` is now `col op $n`.
    pub shape: AstQuery,
    /// Number of leading slots the caller must supply at execute time
    /// (one past the highest explicit `$n` in the source; 0 if none).
    pub auto_base: u32,
    /// Values extracted by the rewrite, for slots `auto_base..`.
    pub auto_values: Vec<Value>,
}

/// Parameter-vector construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError {
    /// Slots the statement requires from the caller.
    pub expected: usize,
    /// Values actually supplied.
    pub got: usize,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "statement takes {} parameter(s), {} supplied",
            self.expected, self.got
        )
    }
}

impl std::error::Error for BindError {}

impl ParamQuery {
    /// Build the full parameter vector: the caller's values for slots
    /// `0..auto_base`, then the extracted constants.
    pub fn bind(&self, user: &[Value]) -> Result<Vec<Value>, BindError> {
        if user.len() != self.auto_base as usize {
            return Err(BindError {
                expected: self.auto_base as usize,
                got: user.len(),
            });
        }
        let mut v = Vec::with_capacity(user.len() + self.auto_values.len());
        v.extend_from_slice(user);
        v.extend_from_slice(&self.auto_values);
        Ok(v)
    }
}

/// Rewrite a query so every WHERE-clause literal becomes a `$n`
/// placeholder, returning the shape and the extracted values.
pub fn parameterize(q: &AstQuery) -> ParamQuery {
    let auto_base = max_explicit_slot(q).map_or(0, |s| s + 1);
    let mut next = auto_base;
    let mut values = Vec::new();
    let shape = rewrite_query(q, &mut next, &mut values);
    ParamQuery {
        shape,
        auto_base,
        auto_values: values,
    }
}

fn max_explicit_slot(q: &AstQuery) -> Option<u32> {
    match q {
        AstQuery::Select(s) => s
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::ColParam(_, _, slot) => Some(*slot),
                _ => None,
            })
            .max(),
        AstQuery::Union(l, r) | AstQuery::Intersect(l, r) | AstQuery::Except(l, r) => {
            max_explicit_slot(l).max(max_explicit_slot(r))
        }
    }
}

fn rewrite_query(q: &AstQuery, next: &mut u32, values: &mut Vec<Value>) -> AstQuery {
    match q {
        AstQuery::Select(s) => AstQuery::Select(rewrite_select(s, next, values)),
        AstQuery::Union(l, r) => AstQuery::Union(
            Box::new(rewrite_query(l, next, values)),
            Box::new(rewrite_query(r, next, values)),
        ),
        AstQuery::Intersect(l, r) => AstQuery::Intersect(
            Box::new(rewrite_query(l, next, values)),
            Box::new(rewrite_query(r, next, values)),
        ),
        AstQuery::Except(l, r) => AstQuery::Except(
            Box::new(rewrite_query(l, next, values)),
            Box::new(rewrite_query(r, next, values)),
        ),
    }
}

fn rewrite_select(s: &SelectStmt, next: &mut u32, values: &mut Vec<Value>) -> SelectStmt {
    let mut out = s.clone();
    for cond in &mut out.conditions {
        if let Condition::ColLit(c, op, v) = cond {
            let slot = *next;
            *next += 1;
            values.push(v.clone());
            *cond = Condition::ColParam(c.clone(), *op, slot);
        }
    }
    out
}

/// Hash the canonical shape of a lowered query: the operator tree plus
/// the delivery requirement, with parameter-tagged comparison *values*
/// omitted (their slot number is hashed instead). Deterministic across
/// runs and platforms ([`FxHasher`] is unseeded).
pub fn shape_key(expr: &RelExpr, order_by: &[AttrId]) -> u64 {
    let mut h = FxHasher::default();
    hash_expr(expr, &mut h);
    0x0ddeu64.hash(&mut h); // separator: expression | delivery requirement
    order_by.hash(&mut h);
    h.finish()
}

fn hash_expr(e: &RelExpr, h: &mut FxHasher) {
    h.write_usize(e.op.discriminant());
    match &e.op {
        RelOp::Get(t) => t.hash(h),
        RelOp::Select(p) => {
            h.write_usize(p.len());
            for term in p.terms() {
                term.attr.hash(h);
                h.write_u8(term.op as u8);
                match term.param {
                    Some(slot) => {
                        h.write_u8(1);
                        h.write_u32(slot);
                    }
                    None => {
                        h.write_u8(0);
                        term.value.hash(h);
                    }
                }
            }
        }
        RelOp::Project(attrs) => attrs.hash(h),
        RelOp::Join(p) => p.hash(h),
        RelOp::Union | RelOp::Intersect | RelOp::Difference => {}
        RelOp::Aggregate(spec) | RelOp::PartialAggregate(spec) | RelOp::FinalAggregate(spec) => {
            // The variants hash distinctly via the discriminant above.
            spec.hash(h)
        }
    }
    h.write_usize(e.inputs.len());
    for input in &e.inputs {
        hash_expr(input, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_with_params;
    use crate::parser::parse;
    use volcano_rel::{Catalog, ColumnDef};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            1000.0,
            vec![
                ColumnDef::int("id", 1000.0),
                ColumnDef::int("dept", 20.0),
                ColumnDef::int("salary", 100.0),
            ],
        );
        c.add_table("dept", 20.0, vec![ColumnDef::int("id", 20.0)]);
        c
    }

    fn key_of(sql: &str) -> u64 {
        let pq = parameterize(&parse(sql).unwrap());
        let params = pq.bind(&[]).unwrap();
        let mut c = catalog();
        let q = lower_with_params(&pq.shape, &mut c, &params).unwrap();
        shape_key(&q.expr, &q.order_by)
    }

    #[test]
    fn literals_are_extracted_in_order() {
        let pq = parameterize(&parse("SELECT * FROM emp WHERE salary > 10 AND dept = 3").unwrap());
        assert_eq!(pq.auto_base, 0);
        assert_eq!(pq.auto_values, vec![Value::Int(10), Value::Int(3)]);
        let AstQuery::Select(s) = &pq.shape else {
            panic!()
        };
        assert!(s
            .conditions
            .iter()
            .all(|c| matches!(c, Condition::ColParam(_, _, _))));
    }

    #[test]
    fn explicit_slots_are_preserved() {
        let pq = parameterize(&parse("SELECT * FROM emp WHERE salary > $0 AND dept = 3").unwrap());
        assert_eq!(pq.auto_base, 1);
        assert_eq!(pq.auto_values, vec![Value::Int(3)]);
        // The caller supplies slot 0; the extracted literal fills slot 1.
        assert_eq!(
            pq.bind(&[Value::Int(50)]).unwrap(),
            vec![Value::Int(50), Value::Int(3)]
        );
        let e = pq.bind(&[]).unwrap_err();
        assert_eq!((e.expected, e.got), (1, 0));
    }

    #[test]
    fn shape_key_ignores_literal_values() {
        let a = key_of("SELECT * FROM emp WHERE salary > 10");
        let b = key_of("SELECT * FROM emp WHERE salary > 9999");
        assert_eq!(a, b);
    }

    #[test]
    fn shape_key_sees_structure() {
        let base = key_of("SELECT * FROM emp WHERE salary > 10");
        assert_ne!(base, key_of("SELECT * FROM emp WHERE salary < 10"));
        assert_ne!(base, key_of("SELECT * FROM emp WHERE dept > 10"));
        assert_ne!(base, key_of("SELECT * FROM emp"));
        assert_ne!(
            base,
            key_of("SELECT * FROM emp WHERE salary > 10 ORDER BY id")
        );
        assert_ne!(
            key_of("SELECT id FROM emp UNION SELECT id FROM dept"),
            key_of("SELECT id FROM emp EXCEPT SELECT id FROM dept")
        );
    }

    #[test]
    fn join_queries_share_shapes() {
        let a = key_of(
            "SELECT emp.id FROM emp, dept \
             WHERE emp.dept = dept.id AND emp.salary >= 100",
        );
        let b = key_of(
            "SELECT emp.id FROM emp, dept \
             WHERE emp.dept = dept.id AND emp.salary >= 7",
        );
        assert_eq!(a, b);
    }
}
