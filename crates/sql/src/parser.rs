//! Recursive-descent parser for the SQL subset.

use std::fmt;

use volcano_rel::{CmpOp, Value};

use crate::ast::{AggCall, ColRef, Condition, Query, SelectItem, SelectStmt};
use crate::lexer::{tokenize, LexError, Token};

/// Syntax error.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Lexical error.
    Lex(LexError),
    /// Unexpected token (or end of input) with a description of what was
    /// expected.
    Unexpected {
        /// What the parser found (`None` = end of input).
        found: Option<Token>,
        /// What it expected.
        expected: String,
    },
    /// Input continued after a complete query.
    TrailingTokens(Token),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected } => match found {
                Some(t) => write!(f, "expected {expected}, found {t}"),
                None => write!(f, "expected {expected}, found end of input"),
            },
            ParseError::TrailingTokens(t) => write!(f, "unexpected trailing token {t}"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse a query (one SELECT block, or blocks combined with
/// UNION/INTERSECT/EXCEPT).
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input).map_err(ParseError::Lex)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if let Some(t) = p.peek() {
        return Err(ParseError::TrailingTokens(t.clone()));
    }
    Ok(q)
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw}")))
        }
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().cloned(),
            expected: expected.to_string(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.bump() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.unexpected(what)),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        let left = Query::Select(self.select_stmt()?);
        if self.eat_kw("union") {
            // Accept an optional ALL (semantics are bag union either way).
            let _ = self.eat_kw("all");
            let right = self.query()?;
            return Ok(Query::Union(Box::new(left), Box::new(right)));
        }
        if self.eat_kw("intersect") {
            let right = self.query()?;
            return Ok(Query::Intersect(Box::new(left), Box::new(right)));
        }
        if self.eat_kw("except") {
            let right = self.query()?;
            return Ok(Query::Except(Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projection = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            projection.push(self.select_item()?);
        }

        self.expect_kw("from")?;
        let mut from = vec![self.ident("table name")?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            from.push(self.ident("table name")?);
        }

        let mut conditions = Vec::new();
        if self.eat_kw("where") {
            conditions.push(self.condition()?);
            while self.eat_kw("and") {
                conditions.push(self.condition()?);
            }
        }

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.col_ref()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.col_ref()?);
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            order_by.push(self.col_ref()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                order_by.push(self.col_ref()?);
            }
        }

        Ok(SelectStmt {
            distinct,
            projection,
            from,
            conditions,
            group_by,
            order_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(SelectItem::Star);
        }
        // Aggregate calls: IDENT '(' ... ')'.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            let lower = name.to_ascii_lowercase();
            if matches!(lower.as_str(), "count" | "sum" | "min" | "max" | "avg")
                && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
            {
                self.pos += 2; // name + '('
                let agg = if lower == "count" {
                    self.expect(&Token::Star, "* in COUNT(*)")?;
                    AggCall::CountStar
                } else {
                    let col = self.col_ref()?;
                    match lower.as_str() {
                        "sum" => AggCall::Sum(col),
                        "min" => AggCall::Min(col),
                        "max" => AggCall::Max(col),
                        "avg" => AggCall::Avg(col),
                        _ => unreachable!(),
                    }
                };
                self.expect(&Token::RParen, "closing parenthesis")?;
                return Ok(SelectItem::Agg(agg));
            }
        }
        Ok(SelectItem::Col(self.col_ref()?))
    }

    fn col_ref(&mut self) -> Result<ColRef, ParseError> {
        let first = self.ident("column reference")?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let column = self.ident("column name")?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let left = self.col_ref()?;
        let op = match self.bump() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(ParseError::Unexpected {
                    found: other,
                    expected: "comparison operator".to_string(),
                })
            }
        };
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Condition::ColLit(left, op, Value::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Condition::ColLit(left, op, Value::float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Condition::ColLit(left, op, Value::Str(s)))
            }
            Some(Token::Param(slot)) => {
                self.pos += 1;
                Ok(Condition::ColParam(left, op, slot))
            }
            Some(Token::Ident(_)) => {
                if op != CmpOp::Eq {
                    return Err(self.unexpected("literal (only = is supported between columns)"));
                }
                let right = self.col_ref()?;
                Ok(Condition::ColEqCol(left, right))
            }
            _ => Err(self.unexpected("literal or column reference")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT * FROM emp").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.projection, vec![SelectItem::Star]);
        assert_eq!(s.from, vec!["emp"]);
        assert!(s.conditions.is_empty());
    }

    #[test]
    fn join_with_conditions_and_order() {
        let q = parse(
            "SELECT emp.id, dept.id FROM emp, dept \
             WHERE emp.dept = dept.id AND emp.salary >= 100 ORDER BY emp.id",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.conditions.len(), 2);
        assert!(matches!(s.conditions[0], Condition::ColEqCol(_, _)));
        assert!(matches!(
            s.conditions[1],
            Condition::ColLit(_, CmpOp::Ge, _)
        ));
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse("SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.projection.len(), 3);
        assert!(matches!(
            s.projection[1],
            SelectItem::Agg(AggCall::CountStar)
        ));
        assert!(matches!(s.projection[2], SelectItem::Agg(AggCall::Avg(_))));
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn set_operations_parse() {
        assert!(matches!(
            parse("SELECT x FROM a UNION SELECT x FROM b").unwrap(),
            Query::Union(_, _)
        ));
        assert!(matches!(
            parse("SELECT x FROM a INTERSECT SELECT x FROM b").unwrap(),
            Query::Intersect(_, _)
        ));
        assert!(matches!(
            parse("SELECT x FROM a EXCEPT SELECT x FROM b").unwrap(),
            Query::Except(_, _)
        ));
    }

    #[test]
    fn errors_are_descriptive() {
        // `FROM` lexes as an identifier, so it is taken as the projected
        // column and the parser trips on the missing FROM keyword.
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(matches!(e, ParseError::Unexpected { .. }), "{e}");
        let e = parse("SELECT * FROM t WHERE").unwrap_err();
        assert!(e.to_string().contains("column reference"), "{e}");
        let e = parse("SELECT * FROM t extra junk").unwrap_err();
        assert!(matches!(e, ParseError::TrailingTokens(_)), "{e}");
    }

    #[test]
    fn parameter_placeholders_parse() {
        let q = parse("SELECT * FROM t WHERE x < $0 AND y = $1").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(
            s.conditions,
            vec![
                Condition::ColParam(
                    ColRef {
                        table: None,
                        column: "x".into()
                    },
                    CmpOp::Lt,
                    0
                ),
                Condition::ColParam(
                    ColRef {
                        table: None,
                        column: "y".into()
                    },
                    CmpOp::Eq,
                    1
                ),
            ]
        );
    }

    #[test]
    fn string_literals() {
        let q = parse("SELECT * FROM t WHERE name = 'bob'").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(
            &s.conditions[0],
            Condition::ColLit(_, CmpOp::Eq, Value::Str(v)) if v == "bob"
        ));
    }
}
