//! Tokenizer for the SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (identifiers keep their original case;
    /// keyword comparison is case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Prepared-statement parameter placeholder `$n`.
    Param(u32),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Param(i) => write!(f, "${i}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Lexer error: an unexpected character with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} at byte {}",
            self.ch, self.offset
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize an input string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some('=') => {
                        out.push(Token::Le);
                        i += 2;
                    }
                    Some('>') => {
                        out.push(Token::Ne);
                        i += 2;
                    }
                    _ => {
                        out.push(Token::Lt);
                        i += 1;
                    }
                };
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '$' => {
                let start = i;
                i += 1;
                let digits_start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i == digits_start {
                    return Err(LexError {
                        ch: '$',
                        offset: start,
                    });
                }
                let text: String = bytes[digits_start..i].iter().collect();
                match text.parse() {
                    Ok(n) => out.push(Token::Param(n)),
                    Err(_) => {
                        return Err(LexError {
                            ch: '$',
                            offset: start,
                        })
                    }
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != '\'' {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        ch: '\'',
                        offset: input.len(),
                    });
                }
                i += 1; // closing quote
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().expect("valid float")));
                } else {
                    out.push(Token::Int(text.parse().expect("valid int")));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(LexError {
                    ch: other,
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a.b, * FROM t WHERE x <= -5 AND s = 'hi'").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Int(-5)));
        assert!(toks.contains(&Token::Str("hi".into())));
    }

    #[test]
    fn floats_and_comparisons() {
        let toks = tokenize("1.5 <> 2 >= 3").unwrap();
        assert_eq!(toks[0], Token::Float(1.5));
        assert_eq!(toks[1], Token::Ne);
        assert_eq!(toks[3], Token::Ge);
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn parameter_placeholders() {
        let toks = tokenize("x < $0 AND y = $12").unwrap();
        assert!(toks.contains(&Token::Param(0)));
        assert!(toks.contains(&Token::Param(12)));
        assert!(tokenize("x < $").is_err());
        assert!(tokenize("x < $x").is_err());
    }

    #[test]
    fn bad_char_fails_with_offset() {
        let err = tokenize("a ; b").unwrap_err();
        assert_eq!(err.ch, ';');
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select SeLeCt SELECT").unwrap();
        assert!(toks.iter().all(|t| t.is_kw("select")));
    }
}
