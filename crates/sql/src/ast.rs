//! Abstract syntax tree for the SQL subset.

use volcano_rel::{CmpOp, Value};

/// A column reference, optionally table-qualified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Table name (resolution searches all FROM tables when absent).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// An aggregate function call in the select list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggCall {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(col)`.
    Sum(ColRef),
    /// `MIN(col)`.
    Min(ColRef),
    /// `MAX(col)`.
    Max(ColRef),
    /// `AVG(col)`.
    Avg(ColRef),
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A plain column.
    Col(ColRef),
    /// An aggregate call.
    Agg(AggCall),
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `col = col` (an equi-join or self-equality predicate).
    ColEqCol(ColRef, ColRef),
    /// `col op literal`.
    ColLit(ColRef, CmpOp, Value),
    /// `col op $n`: a prepared-statement parameter placeholder, written
    /// explicitly (`PREPARE ... WHERE x < $0`) or produced by the
    /// auto-parameterization pass ([`crate::param::parameterize`]).
    ColParam(ColRef, CmpOp, u32),
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`: eliminate duplicate result rows.
    pub distinct: bool,
    /// Select list.
    pub projection: Vec<SelectItem>,
    /// FROM tables, in order.
    pub from: Vec<String>,
    /// WHERE conjuncts.
    pub conditions: Vec<Condition>,
    /// GROUP BY columns.
    pub group_by: Vec<ColRef>,
    /// ORDER BY columns (ascending).
    pub order_by: Vec<ColRef>,
}

/// A full query: one block, or a set operation between two.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A single SELECT block.
    Select(SelectStmt),
    /// `left UNION right` (bag semantics / UNION ALL).
    Union(Box<Query>, Box<Query>),
    /// `left INTERSECT right`.
    Intersect(Box<Query>, Box<Query>),
    /// `left EXCEPT right`.
    Except(Box<Query>, Box<Query>),
}
