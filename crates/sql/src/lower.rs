//! Lowering: AST → `volcano-rel` logical algebra.
//!
//! Single-table predicates become selections directly above the scans;
//! column equalities become equi-join edges; the join tree is built
//! greedily along connected edges (falling back to Cartesian products
//! only when the query is disconnected). The optimizer then has full
//! freedom to reorder — lowering fixes only the *logical* content.

use std::fmt;

use volcano_rel::builder;
use volcano_rel::{AggFunc, AggSpec, AttrId, Catalog, Cmp, JoinPred, Pred, RelExpr, RelOp, Value};

use crate::ast::{AggCall, ColRef, Condition, Query as AstQuery, SelectItem, SelectStmt};

/// A lowered query: the logical expression plus the requested output
/// order (the physical property the optimizer goal carries — "physical
/// properties as requested by the user, for example, sort order as in the
/// ORDER BY clause of SQL", §3).
#[derive(Debug, Clone)]
pub struct Query {
    /// The logical algebra expression.
    pub expr: RelExpr,
    /// ORDER BY attributes (empty = no requirement).
    pub order_by: Vec<AttrId>,
}

/// Semantic errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// FROM references an unknown table.
    UnknownTable(String),
    /// A column could not be resolved.
    UnknownColumn(String),
    /// An unqualified column name matched several FROM tables.
    AmbiguousColumn(String),
    /// `a.x = a.y` within one table is not expressible as a selection.
    SameTableEquality(String, String),
    /// A projected column is neither grouped nor aggregated.
    NotGrouped(String),
    /// Set operation between queries with different column counts.
    ColumnCountMismatch(usize, usize),
    /// A `$n` placeholder with no value in the supplied parameter vector.
    UnboundParameter(u32),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            LowerError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            LowerError::AmbiguousColumn(c) => write!(f, "ambiguous column {c:?}"),
            LowerError::SameTableEquality(a, b) => {
                write!(
                    f,
                    "column equality within one table ({a} = {b}) is unsupported"
                )
            }
            LowerError::NotGrouped(c) => {
                write!(f, "column {c:?} must appear in GROUP BY or an aggregate")
            }
            LowerError::ColumnCountMismatch(l, r) => {
                write!(f, "set operation column counts differ: {l} vs {r}")
            }
            LowerError::UnboundParameter(slot) => {
                write!(f, "parameter ${slot} is not bound")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower a parsed query against a catalog. The catalog is mutable because
/// aggregate outputs allocate fresh attribute ids.
///
/// Queries containing `$n` placeholders fail with
/// [`LowerError::UnboundParameter`]; supply values via
/// [`lower_with_params`].
pub fn lower(query: &AstQuery, catalog: &mut Catalog) -> Result<Query, LowerError> {
    lower_with_params(query, catalog, &[])
}

/// Lower a parameterized query, binding each `$n` placeholder to
/// `params[n]`. The resulting predicates carry their parameter slot
/// ([`Cmp::with_param`]), so a plan optimized from this query is a
/// *template*: rebinding the slots to fresh values reproduces exactly the
/// predicate structure this lowering would produce under those values.
pub fn lower_with_params(
    query: &AstQuery,
    catalog: &mut Catalog,
    params: &[Value],
) -> Result<Query, LowerError> {
    match query {
        AstQuery::Select(s) => lower_select(s, catalog, params),
        AstQuery::Union(l, r) => lower_set(l, r, RelOp::Union, catalog, params),
        AstQuery::Intersect(l, r) => lower_set(l, r, RelOp::Intersect, catalog, params),
        AstQuery::Except(l, r) => lower_set(l, r, RelOp::Difference, catalog, params),
    }
}

fn lower_set(
    l: &AstQuery,
    r: &AstQuery,
    op: RelOp,
    catalog: &mut Catalog,
    params: &[Value],
) -> Result<Query, LowerError> {
    let lq = lower_with_params(l, catalog, params)?;
    let rq = lower_with_params(r, catalog, params)?;
    let lcols = output_width(&lq.expr, catalog);
    let rcols = output_width(&rq.expr, catalog);
    if lcols != rcols {
        return Err(LowerError::ColumnCountMismatch(lcols, rcols));
    }
    Ok(Query {
        expr: RelExpr::new(op, vec![lq.expr, rq.expr]),
        order_by: vec![],
    })
}

/// Number of output columns of a lowered expression (for set-op checks).
fn output_width(e: &RelExpr, catalog: &Catalog) -> usize {
    match &e.op {
        RelOp::Get(t) => catalog.table(*t).columns.len(),
        RelOp::Select(_) => output_width(&e.inputs[0], catalog),
        RelOp::Project(attrs) => attrs.len(),
        RelOp::Join(_) => output_width(&e.inputs[0], catalog) + output_width(&e.inputs[1], catalog),
        RelOp::Union | RelOp::Intersect | RelOp::Difference => output_width(&e.inputs[0], catalog),
        RelOp::Aggregate(s) | RelOp::FinalAggregate(s) => s.group_by.len() + s.aggs.len(),
        RelOp::PartialAggregate(s) => s.partial_attrs().len(),
    }
}

struct Scope {
    /// (table name, table index in FROM, column name, attr).
    columns: Vec<(String, usize, String, AttrId)>,
}

impl Scope {
    fn build(from: &[String], catalog: &Catalog) -> Result<Self, LowerError> {
        let mut columns = Vec::new();
        for (idx, name) in from.iter().enumerate() {
            let table = catalog
                .table_by_name(name)
                .ok_or_else(|| LowerError::UnknownTable(name.clone()))?;
            for c in &table.columns {
                columns.push((name.clone(), idx, c.name.clone(), c.attr));
            }
        }
        Ok(Scope { columns })
    }

    fn resolve(&self, c: &ColRef) -> Result<(usize, AttrId), LowerError> {
        let matches: Vec<&(String, usize, String, AttrId)> = self
            .columns
            .iter()
            .filter(|(t, _, col, _)| {
                col == &c.column && c.table.as_ref().is_none_or(|want| want == t)
            })
            .collect();
        match matches.len() {
            0 => Err(LowerError::UnknownColumn(display_col(c))),
            1 => Ok((matches[0].1, matches[0].3)),
            _ => Err(LowerError::AmbiguousColumn(display_col(c))),
        }
    }
}

fn display_col(c: &ColRef) -> String {
    match &c.table {
        Some(t) => format!("{t}.{}", c.column),
        None => c.column.clone(),
    }
}

fn lower_select(
    s: &SelectStmt,
    catalog: &mut Catalog,
    params: &[Value],
) -> Result<Query, LowerError> {
    let scope = Scope::build(&s.from, catalog)?;
    let n = s.from.len();

    // Partition conditions into per-table selections and join edges.
    let mut table_preds: Vec<Vec<Cmp>> = vec![Vec::new(); n];
    let mut edges: Vec<(usize, AttrId, usize, AttrId)> = Vec::new();
    for cond in &s.conditions {
        match cond {
            Condition::ColLit(c, op, v) => {
                let (t, attr) = scope.resolve(c)?;
                table_preds[t].push(Cmp::new(attr, *op, v.clone()));
            }
            Condition::ColParam(c, op, slot) => {
                let (t, attr) = scope.resolve(c)?;
                let v = params
                    .get(*slot as usize)
                    .ok_or(LowerError::UnboundParameter(*slot))?;
                table_preds[t].push(Cmp::with_param(attr, *op, v.clone(), *slot));
            }
            Condition::ColEqCol(a, b) => {
                let (ta, aa) = scope.resolve(a)?;
                let (tb, ab) = scope.resolve(b)?;
                if ta == tb {
                    return Err(LowerError::SameTableEquality(
                        display_col(a),
                        display_col(b),
                    ));
                }
                edges.push((ta, aa, tb, ab));
            }
        }
    }

    // Leaves: scan + selection.
    let mut leaves: Vec<Option<RelExpr>> = s
        .from
        .iter()
        .zip(table_preds)
        .map(|(name, preds)| {
            let t = catalog.table_by_name(name).expect("validated above").id;
            let scan = RelExpr::leaf(RelOp::Get(t));
            Some(if preds.is_empty() {
                scan
            } else {
                builder::select(scan, Pred::conj(preds))
            })
        })
        .collect();

    // Greedy connected join-tree construction.
    let mut in_tree = vec![false; n];
    let mut expr = leaves[0].take().expect("first leaf");
    in_tree[0] = true;
    let mut remaining: usize = n - 1;
    while remaining > 0 {
        // Find a not-yet-joined table connected to the tree.
        let next = (0..n).find(|&i| {
            !in_tree[i]
                && edges
                    .iter()
                    .any(|&(ta, _, tb, _)| (in_tree[ta] && tb == i) || (in_tree[tb] && ta == i))
        });
        let (i, pred) = match next {
            Some(i) => {
                // Collect ALL edges between the tree and table i.
                let pairs: Vec<(AttrId, AttrId)> = edges
                    .iter()
                    .filter_map(|&(ta, aa, tb, ab)| {
                        if in_tree[ta] && tb == i {
                            Some((aa, ab))
                        } else if in_tree[tb] && ta == i {
                            Some((ab, aa))
                        } else {
                            None
                        }
                    })
                    .collect();
                (i, JoinPred::on(pairs))
            }
            None => {
                // Disconnected query: Cartesian product with the next
                // remaining table.
                let i = (0..n).find(|&i| !in_tree[i]).expect("remaining > 0");
                (i, JoinPred::cross())
            }
        };
        expr = builder::join(expr, leaves[i].take().expect("unjoined leaf"), pred);
        in_tree[i] = true;
        remaining -= 1;
    }

    // Aggregation.
    let has_aggs = s.projection.iter().any(|i| matches!(i, SelectItem::Agg(_)));
    let mut projection_attrs: Vec<AttrId> = Vec::new();
    let mut star = false;

    if has_aggs || !s.group_by.is_empty() {
        let group_by: Vec<AttrId> = s
            .group_by
            .iter()
            .map(|c| scope.resolve(c).map(|(_, a)| a))
            .collect::<Result<_, _>>()?;
        let mut aggs: Vec<(AggFunc, AttrId)> = Vec::new();
        for item in &s.projection {
            match item {
                SelectItem::Star => {
                    return Err(LowerError::NotGrouped("*".to_string()));
                }
                SelectItem::Col(c) => {
                    let (_, attr) = scope.resolve(c)?;
                    if !group_by.contains(&attr) {
                        return Err(LowerError::NotGrouped(display_col(c)));
                    }
                    projection_attrs.push(attr);
                }
                SelectItem::Agg(call) => {
                    let func = match call {
                        AggCall::CountStar => AggFunc::CountStar,
                        AggCall::Sum(c) => AggFunc::Sum(scope.resolve(c)?.1),
                        AggCall::Min(c) => AggFunc::Min(scope.resolve(c)?.1),
                        AggCall::Max(c) => AggFunc::Max(scope.resolve(c)?.1),
                        AggCall::Avg(c) => AggFunc::Avg(scope.resolve(c)?.1),
                    };
                    let out = catalog.fresh_attr();
                    aggs.push((func, out));
                    projection_attrs.push(out);
                }
            }
        }
        expr = builder::aggregate(expr, AggSpec { group_by, aggs });
    } else {
        for item in &s.projection {
            match item {
                SelectItem::Star => star = true,
                SelectItem::Col(c) => projection_attrs.push(scope.resolve(c)?.1),
                SelectItem::Agg(_) => unreachable!("handled above"),
            }
        }
    }

    if !star {
        expr = builder::project(expr, projection_attrs.clone());
    }

    // SELECT DISTINCT: duplicate elimination is a grouping on the full
    // output schema with no aggregates; the optimizer then picks a
    // hash- or sort-based implementation by cost.
    if s.distinct {
        let dedup_on: Vec<AttrId> = if star {
            scope.columns.iter().map(|(_, _, _, a)| *a).collect()
        } else {
            projection_attrs.clone()
        };
        expr = builder::aggregate(
            expr,
            AggSpec {
                group_by: dedup_on,
                aggs: vec![],
            },
        );
    }

    let order_by: Vec<AttrId> = s
        .order_by
        .iter()
        .map(|c| scope.resolve(c).map(|(_, a)| a))
        .collect::<Result<_, _>>()?;

    Ok(Query { expr, order_by })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use volcano_rel::ColumnDef;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            1000.0,
            vec![
                ColumnDef::int("id", 1000.0),
                ColumnDef::int("dept", 20.0),
                ColumnDef::int("salary", 100.0),
            ],
        );
        c.add_table("dept", 20.0, vec![ColumnDef::int("id", 20.0)]);
        c
    }

    fn lower_sql(sql: &str) -> Result<Query, LowerError> {
        let mut c = catalog();
        lower(&parse(sql).unwrap(), &mut c)
    }

    #[test]
    fn select_star_has_no_project() {
        let q = lower_sql("SELECT * FROM emp").unwrap();
        assert_eq!(q.expr.display(), "get");
    }

    #[test]
    fn parameters_bind_and_tag_slots() {
        let mut c = catalog();
        let ast = parse("SELECT * FROM emp WHERE salary > $0 AND dept = $1").unwrap();
        let q = lower_with_params(&ast, &mut c, &[Value::Int(10), Value::Int(3)]).unwrap();
        let RelOp::Select(p) = &q.expr.op else {
            panic!()
        };
        assert_eq!(p.len(), 2);
        let slots: Vec<_> = p.terms().iter().map(|t| t.param).collect();
        assert!(
            slots.contains(&Some(0)) && slots.contains(&Some(1)),
            "{slots:?}"
        );
        // Unbound slot is an error, and plain `lower` binds nothing.
        let e = lower_with_params(&ast, &mut c, &[Value::Int(10)]).unwrap_err();
        assert!(matches!(e, LowerError::UnboundParameter(1)), "{e}");
        assert!(matches!(
            lower(&ast, &mut c),
            Err(LowerError::UnboundParameter(0))
        ));
    }

    #[test]
    fn selections_are_pushed_onto_scans() {
        let q = lower_sql("SELECT * FROM emp WHERE salary > 10 AND dept = 3").unwrap();
        assert_eq!(q.expr.display(), "select(get)");
        let RelOp::Select(p) = &q.expr.op else {
            panic!()
        };
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn join_edges_become_join_predicates() {
        let q = lower_sql("SELECT * FROM emp, dept WHERE emp.dept = dept.id").unwrap();
        assert_eq!(q.expr.display(), "join(get, get)");
        let RelOp::Join(p) = &q.expr.op else { panic!() };
        assert_eq!(p.pairs().len(), 1);
    }

    #[test]
    fn disconnected_tables_cross_join() {
        let q = lower_sql("SELECT * FROM emp, dept").unwrap();
        let RelOp::Join(p) = &q.expr.op else { panic!() };
        assert!(p.is_cross());
    }

    #[test]
    fn group_by_with_aggregates() {
        let q = lower_sql("SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept").unwrap();
        assert_eq!(q.expr.display(), "project(aggregate(get))");
    }

    #[test]
    fn order_by_becomes_physical_property() {
        let q = lower_sql("SELECT * FROM emp ORDER BY salary, id").unwrap();
        assert_eq!(q.order_by.len(), 2);
    }

    #[test]
    fn unknown_names_error() {
        assert!(matches!(
            lower_sql("SELECT * FROM nope"),
            Err(LowerError::UnknownTable(_))
        ));
        assert!(matches!(
            lower_sql("SELECT wat FROM emp"),
            Err(LowerError::UnknownColumn(_))
        ));
        assert!(matches!(
            lower_sql("SELECT id FROM emp, dept"),
            Err(LowerError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            lower_sql("SELECT salary FROM emp GROUP BY dept"),
            Err(LowerError::NotGrouped(_))
        ));
    }

    #[test]
    fn set_ops_check_column_counts() {
        assert!(matches!(
            lower_sql("SELECT id FROM emp UNION SELECT * FROM emp"),
            Err(LowerError::ColumnCountMismatch(1, 3))
        ));
        let ok = lower_sql("SELECT id FROM emp UNION SELECT id FROM dept").unwrap();
        assert_eq!(ok.expr.display(), "union(project(get), project(get))");
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use crate::parser::parse;
    use volcano_rel::ColumnDef;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            100.0,
            vec![ColumnDef::int("id", 100.0), ColumnDef::int("dept", 5.0)],
        );
        c
    }

    #[test]
    fn distinct_wraps_in_dedup_aggregate() {
        let mut c = catalog();
        let q = lower(&parse("SELECT DISTINCT dept FROM emp").unwrap(), &mut c).unwrap();
        assert_eq!(q.expr.display(), "aggregate(project(get))");
        let RelOp::Aggregate(spec) = &q.expr.op else {
            panic!()
        };
        assert_eq!(spec.group_by.len(), 1);
        assert!(spec.aggs.is_empty());
    }

    #[test]
    fn distinct_star_groups_on_all_columns() {
        let mut c = catalog();
        let q = lower(&parse("SELECT DISTINCT * FROM emp").unwrap(), &mut c).unwrap();
        let RelOp::Aggregate(spec) = &q.expr.op else {
            panic!()
        };
        assert_eq!(spec.group_by.len(), 2);
    }

    #[test]
    fn plain_select_has_no_aggregate() {
        let mut c = catalog();
        let q = lower(&parse("SELECT dept FROM emp").unwrap(), &mut c).unwrap();
        assert_eq!(q.expr.display(), "project(get)");
    }
}
