//! Golden-plan regression tests: snapshot the `EXPLAIN` rendering of
//! representative queries against a fixed catalog. Any change to the
//! cost model, the rule set, promise ordering, or the plan renderer
//! shows up here as a diff — deliberate changes update the goldens,
//! accidental ones fail the build.

use volcano_core::SearchOptions;
use volcano_rel::{explain_plan, Catalog, ColumnDef, RelModel, RelOptimizer, RelProps};
use volcano_sql::plan_query;

/// The fixed catalog all goldens plan against: the emp/dept/region
/// schema used throughout the README examples.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        2000.0,
        vec![
            ColumnDef::int("id", 2000.0),
            ColumnDef::int("dept", 20.0),
            ColumnDef::int("salary", 100.0),
        ],
    );
    c.add_table(
        "dept",
        20.0,
        vec![ColumnDef::int("id", 20.0), ColumnDef::int("region", 4.0)],
    );
    c.add_table("region", 4.0, vec![ColumnDef::int("id", 4.0)]);
    c
}

/// Parse, lower, optimize, and render `sql`'s chosen physical plan.
fn plan_text(sql: &str) -> String {
    let mut catalog = catalog();
    let q = plan_query(sql, &mut catalog).expect("golden query must parse");
    let model = RelModel::with_defaults(catalog.clone());
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.expr);
    let plan = opt
        .find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
        .expect("golden query must be satisfiable");
    explain_plan(&catalog, &plan)
}

#[track_caller]
fn check(sql: &str, golden: &str) {
    let actual = plan_text(sql);
    assert_eq!(
        actual.trim_end(),
        golden.trim(),
        "\nplan drifted for {sql:?}\n-- actual --\n{actual}\n-- golden --\n{golden}\n"
    );
}

#[test]
fn golden_filtered_scan_with_sort() {
    check(
        "SELECT emp.id FROM emp WHERE emp.salary < 50 ORDER BY emp.id",
        r#"
sort[emp.id]  (cost 93.48ms (io 42.97 + cpu 50.51))  [sorted: emp.id]
  project[emp.id]  (cost 66.49ms (io 35.16 + cpu 31.33))
    filter_scan(emp, emp.salary < 50)  (cost 63.16ms (io 35.16 + cpu 28.00))
"#,
    );
}

#[test]
fn golden_two_way_join() {
    check(
        "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id",
        r#"
project[emp.id]  (cost 120.88ms (io 38.16 + cpu 82.72))
  hybrid_hash_join[dept.id = emp.dept]  (cost 110.88ms (io 38.16 + cpu 72.72))
    file_scan(dept)  (cost 3.20ms (io 3.00 + cpu 0.20))
    file_scan(emp)  (cost 55.16ms (io 35.16 + cpu 20.00))
"#,
    );
}

#[test]
fn golden_three_way_join_with_selection() {
    check(
        "SELECT emp.id FROM emp, dept, region \
         WHERE emp.dept = dept.id AND dept.region = region.id AND emp.salary < 50 \
         ORDER BY emp.id",
        r#"
sort[emp.id]  (cost 118.09ms (io 48.97 + cpu 69.12))  [sorted: emp.id]
  project[emp.id]  (cost 91.10ms (io 41.16 + cpu 49.95))
    hybrid_hash_join[dept.id = emp.dept]  (cost 87.77ms (io 41.16 + cpu 46.61))
      nested_loops[dept.region = region.id]  (cost 6.76ms (io 6.00 + cpu 0.76))
        file_scan(dept)  (cost 3.20ms (io 3.00 + cpu 0.20))
        file_scan(region)  (cost 3.04ms (io 3.00 + cpu 0.04))
      filter_scan(emp, emp.salary < 50)  (cost 63.16ms (io 35.16 + cpu 28.00))
"#,
    );
}

#[test]
fn golden_group_by_aggregate() {
    check(
        "SELECT emp.dept, COUNT(*) FROM emp GROUP BY emp.dept ORDER BY emp.dept",
        r#"
project[emp.dept, a6]  (cost 113.83ms (io 41.16 + cpu 72.67))  [sorted: emp.dept]
  sort[emp.dept]  (cost 113.73ms (io 41.16 + cpu 72.57))  [sorted: emp.dept]
    hash_aggregate[group by emp.dept]  (cost 107.36ms (io 35.16 + cpu 72.20))
      file_scan(emp)  (cost 55.16ms (io 35.16 + cpu 20.00))
"#,
    );
}

#[test]
fn golden_union() {
    check(
        "SELECT emp.dept FROM emp WHERE emp.salary < 50 \
         UNION SELECT dept.id FROM dept",
        r#"
hash_union  (cost 94.31ms (io 38.16 + cpu 56.15))
  project[emp.dept]  (cost 66.49ms (io 35.16 + cpu 31.33))
    filter_scan(emp, emp.salary < 50)  (cost 63.16ms (io 35.16 + cpu 28.00))
  project[dept.id]  (cost 3.30ms (io 3.00 + cpu 0.30))
    file_scan(dept)  (cost 3.20ms (io 3.00 + cpu 0.20))
"#,
    );
}
