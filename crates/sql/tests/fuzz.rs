//! Robustness: the lexer, parser and lowering must never panic on
//! arbitrary input — they either produce a result or a typed error.

use proptest::prelude::*;
use volcano_rel::{Catalog, ColumnDef};
use volcano_sql::{parse, parse_script, plan_query};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        100.0,
        vec![ColumnDef::int("a", 100.0), ColumnDef::int("b", 10.0)],
    );
    c.add_table("u", 50.0, vec![ColumnDef::int("a", 50.0)]);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
        let _ = parse_script(&input);
    }

    /// SQL-shaped garbage never panics the whole pipeline.
    #[test]
    fn sql_shaped_garbage_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("GROUP".to_string()),
                Just("BY".to_string()),
                Just("ORDER".to_string()),
                Just("AND".to_string()),
                Just("DISTINCT".to_string()),
                Just("UNION".to_string()),
                Just("*".to_string()),
                Just(",".to_string()),
                Just("=".to_string()),
                Just("<".to_string()),
                Just("t".to_string()),
                Just("u".to_string()),
                Just("a".to_string()),
                Just("b".to_string()),
                Just("t.a".to_string()),
                Just("u.a".to_string()),
                Just("5".to_string()),
                Just("'x'".to_string()),
                Just("COUNT".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
            ],
            0..25,
        )
    ) {
        let input = words.join(" ");
        let mut c = catalog();
        // Must not panic; errors are fine.
        let _ = plan_query(&input, &mut c);
    }

    /// Every *valid* single-table query round-trips through lowering.
    #[test]
    fn valid_queries_always_lower(
        cols in proptest::collection::vec(prop_oneof![Just("a"), Just("b")], 1..3),
        lit in 0i64..100,
        order in any::<bool>(),
        distinct in any::<bool>(),
    ) {
        let mut sql = String::from("SELECT ");
        if distinct {
            sql.push_str("DISTINCT ");
        }
        sql.push_str(&cols.join(", "));
        sql.push_str(" FROM t WHERE a < ");
        sql.push_str(&lit.to_string());
        if order {
            sql.push_str(" ORDER BY ");
            sql.push_str(cols[0]);
        }
        let mut c = catalog();
        let q = plan_query(&sql, &mut c);
        prop_assert!(q.is_ok(), "query {sql:?} failed: {:?}", q.err().map(|e| e.to_string()));
    }
}
