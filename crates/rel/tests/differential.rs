//! Serial vs parallel exploration on the real relational model: both
//! paths must produce identical memos, identical plans, and identical
//! search statistics on the paper's fig4 join-chain workload.

use volcano_core::{PhysicalProps, SearchOptions};
use volcano_rel::builder::join;
use volcano_rel::{
    Catalog, ColumnDef, JoinPred, QueryBuilder, RelModel, RelModelOptions, RelOptimizer, RelProps,
};

fn chain_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 0..n {
        c.add_table(
            &format!("t{i}"),
            1_000.0 + 700.0 * i as f64,
            vec![ColumnDef::int("a", 80.0), ColumnDef::int("b", 80.0)],
        );
    }
    c
}

fn chain_query(model: &RelModel, n: usize) -> volcano_rel::RelExpr {
    let q = QueryBuilder::new(model.catalog());
    let mut e = q.scan("t0");
    for i in 1..n {
        e = join(
            e,
            q.scan(&format!("t{i}")),
            JoinPred::eq(
                q.attr(&format!("t{}", i - 1), "b"),
                q.attr(&format!("t{i}"), "a"),
            ),
        );
    }
    e
}

#[test]
fn parallel_exploration_matches_serial_on_rel_model() {
    for n in [3usize, 4, 5] {
        let model = RelModel::new(chain_catalog(n), RelModelOptions::paper_fig4());
        let expr = chain_query(&model, n);

        let mut seq = RelOptimizer::new(&model, SearchOptions::default());
        let sroot = seq.insert_tree(&expr);
        seq.explore();
        let splan = seq.find_best_plan(sroot, RelProps::any(), None).unwrap();

        for threads in [2usize, 4] {
            let mut par = RelOptimizer::new(&model, SearchOptions::default());
            let proot = par.insert_tree(&expr);
            par.explore_parallel(threads).unwrap();
            let pplan = par.find_best_plan(proot, RelProps::any(), None).unwrap();

            assert_eq!(
                splan.compact(),
                pplan.compact(),
                "n={n} threads={threads}: plans diverged"
            );
            assert_eq!(seq.memo().num_exprs(), par.memo().num_exprs());
            assert_eq!(seq.memo().num_groups(), par.memo().num_groups());
            assert_eq!(seq.memo().dead_expr_count(), par.memo().dead_expr_count());
            assert!(
                seq.stats().counters_eq(par.stats()),
                "n={n} threads={threads}: stats diverged\nserial:   {:?}\nparallel: {:?}",
                seq.stats(),
                par.stats()
            );
        }
    }
}
