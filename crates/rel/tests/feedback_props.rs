//! Property tests for the selectivity-memory algebra (ISSUE 10).
//!
//! The memory sits underneath every cardinality estimate the optimizer
//! makes, so its invariants are load-bearing: merging must be
//! order-insensitive (within the warm-up, exactly; beyond it, bounded by
//! the observation range), lookups must stay inside `[MIN_SELECTIVITY, 1]`
//! for any observation stream including exact-zero and exact-total
//! selectivities, and with an *empty* memory the `_with` estimators must
//! be bit-identical to the static System R formulas — that is the
//! feedback-off ablation guarantee.

use std::sync::Arc;

use proptest::prelude::*;

use volcano_rel::catalog::ColType;
use volcano_rel::feedback::{geometric_share, term_key, SelectivityMemory, SMOOTHING_WARMUP};
use volcano_rel::props::ColInfo;
use volcano_rel::selectivity::{
    cmp_selectivity, cmp_selectivity_with, join_selectivity, join_selectivity_with,
    pred_selectivity, pred_selectivity_with, MIN_SELECTIVITY,
};
use volcano_rel::{AttrId, Cmp, CmpOp, JoinPred, Pred, RelLogical};

fn key(i: u64) -> volcano_rel::ObservationKey {
    volcano_rel::ObservationKey::Term(i)
}

fn logical(cols: Vec<(u32, f64)>, card: f64) -> RelLogical {
    RelLogical {
        card,
        cols: Arc::new(
            cols.into_iter()
                .map(|(i, d)| ColInfo {
                    attr: AttrId(i),
                    ty: ColType::Int,
                    width: 8,
                    distinct: d,
                })
                .collect(),
        ),
    }
}

fn cmp_op(i: u8) -> CmpOp {
    match i % 6 {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Within the warm-up window the merge is an exact running mean, so
    /// any permutation of the observations lands on the same value.
    #[test]
    fn warmup_merge_is_order_insensitive(
        mut obs in proptest::collection::vec(0.0f64..=1.0, 1..=SMOOTHING_WARMUP as usize),
        seed in 0u64..1000,
    ) {
        let mut fwd = SelectivityMemory::new();
        for &o in &obs {
            fwd.observe(key(1), o);
        }
        // Deterministic shuffle driven by the seed.
        let n = obs.len();
        for i in 0..n {
            let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) % n as u64) as usize;
            obs.swap(i, j);
        }
        let mut shuf = SelectivityMemory::new();
        for &o in &obs {
            shuf.observe(key(1), o);
        }
        let (a, b) = (fwd.lookup(&key(1)).unwrap(), shuf.lookup(&key(1)).unwrap());
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Beyond the warm-up the smoothed value is always bracketed by the
    /// extremes of what was observed (clamped at the floor).
    #[test]
    fn smoothed_value_is_bracketed_by_observations(
        obs in proptest::collection::vec(0.0f64..=1.0, 1..64),
    ) {
        let mut m = SelectivityMemory::new();
        for &o in &obs {
            m.observe(key(2), o);
        }
        let s = m.lookup(&key(2)).unwrap();
        let lo = obs.iter().cloned().fold(f64::INFINITY, f64::min).max(MIN_SELECTIVITY);
        let hi = obs.iter().cloned().fold(0.0, f64::max).max(MIN_SELECTIVITY);
        prop_assert!(s >= lo - 1e-12 && s <= hi + 1e-12, "{s} outside [{lo}, {hi}]");
        prop_assert!((MIN_SELECTIVITY..=1.0).contains(&s));
        prop_assert_eq!(m.entry(&key(2)).unwrap().n, obs.len() as u64);
    }

    /// Exact-zero and exact-total observations — and garbage like NaN —
    /// never produce a non-finite or out-of-range lookup.
    #[test]
    fn extreme_observations_never_divide_by_zero(
        picks in proptest::collection::vec(0usize..4, 1..32),
    ) {
        let menu = [0.0, 1.0, f64::NAN, f64::INFINITY];
        let mut m = SelectivityMemory::new();
        for &p in &picks {
            m.observe(key(3), menu[p]);
        }
        if let Some(s) = m.lookup(&key(3)) {
            prop_assert!(s.is_finite());
            prop_assert!((MIN_SELECTIVITY..=1.0).contains(&s));
        }
    }

    /// `share(s, k)^k` reproduces `s` and each share stays in `[0, 1]`.
    #[test]
    fn geometric_share_roundtrips(s in 0.0f64..=1.0, k in 1usize..6) {
        let share = geometric_share(s, k);
        prop_assert!((0.0..=1.0).contains(&share));
        prop_assert!((share.powi(k as i32) - s).abs() < 1e-9);
    }

    /// Feedback-off ablation: with an empty memory the `_with` estimators
    /// are bit-identical (exact f64 equality) to the static formulas, for
    /// arbitrary predicates and statistics.
    #[test]
    fn empty_memory_is_bit_identical_to_static(
        distincts in proptest::collection::vec(1.0f64..1e6, 2..5),
        ops in proptest::collection::vec(0u8..6, 1..4),
        values in proptest::collection::vec(-1000i64..1000, 1..4),
        card in 1.0f64..1e7,
    ) {
        let cols: Vec<(u32, f64)> = distincts.iter().enumerate()
            .map(|(i, &d)| (i as u32, d)).collect();
        let input = logical(cols.clone(), card);
        let empty = SelectivityMemory::new();
        let terms: Vec<Cmp> = ops.iter().zip(&values).enumerate()
            .map(|(i, (&op, &v))| Cmp::new(AttrId((i % distincts.len()) as u32), cmp_op(op), v))
            .collect();
        for t in &terms {
            prop_assert_eq!(
                cmp_selectivity(t, &input).to_bits(),
                cmp_selectivity_with(t, &input, &empty).to_bits()
            );
        }
        let pred = Pred::conj(terms);
        prop_assert_eq!(
            pred_selectivity(&pred, &input).to_bits(),
            pred_selectivity_with(&pred, &input, &empty).to_bits()
        );
        let right = logical(vec![(100, distincts[0])], card);
        let jp = JoinPred::eq(AttrId(0), AttrId(100));
        prop_assert_eq!(
            join_selectivity(&jp, &input, &right).to_bits(),
            join_selectivity_with(&jp, &input, &right, &empty).to_bits()
        );
    }

    /// A primed memory steers the estimate: the `_with` estimator reports
    /// the observed selectivity (clamped), not the System R formula.
    #[test]
    fn primed_memory_overrides_the_formula(
        observed in 0.0f64..=1.0,
        distinct in 2.0f64..1e4,
    ) {
        let input = logical(vec![(1, distinct)], 1e5);
        let cmp = Cmp::eq(AttrId(1), 7i64);
        let mut m = SelectivityMemory::new();
        m.observe(term_key(&cmp), observed);
        let got = cmp_selectivity_with(&cmp, &input, &m);
        prop_assert!((got - observed.max(MIN_SELECTIVITY)).abs() < 1e-12);
    }
}

/// A parameterized term's memory cell is shared across bindings: observing
/// under one binding steers the estimate under another (value-blind slot
/// keying, mirroring the plan cache's shape key).
#[test]
fn param_terms_share_one_cell_across_bindings() {
    let input = logical(vec![(1, 100.0)], 1000.0);
    let bound_5 = Cmp::with_param(AttrId(1), CmpOp::Eq, 5i64, 0);
    let bound_9 = Cmp::with_param(AttrId(1), CmpOp::Eq, 9i64, 0);
    let mut m = SelectivityMemory::new();
    m.observe(term_key(&bound_5), 0.8);
    assert!((cmp_selectivity_with(&bound_9, &input, &m) - 0.8).abs() < 1e-12);
    // A literal term with the same attr/op does NOT share the cell.
    let lit = Cmp::eq(AttrId(1), 5i64);
    assert!((cmp_selectivity_with(&lit, &input, &m) - 0.01).abs() < 1e-12);
}
