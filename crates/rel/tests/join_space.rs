//! Left-deep vs. bushy search spaces: the Starburst parameter (§5)
//! expressed Volcano-style as a rule-set choice.

use volcano_core::{PhysicalProps, SearchOptions};
use volcano_rel::builder::join;
use volcano_rel::{
    Catalog, ColumnDef, JoinPred, JoinSpace, QueryBuilder, RelAlg, RelModel, RelModelOptions,
    RelOptimizer, RelPlan, RelProps,
};

fn chain_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 0..n {
        c.add_table(
            &format!("t{i}"),
            1_000.0 + 700.0 * i as f64,
            vec![ColumnDef::int("a", 80.0), ColumnDef::int("b", 80.0)],
        );
    }
    c
}

fn chain_query(model: &RelModel, n: usize) -> volcano_rel::RelExpr {
    let q = QueryBuilder::new(model.catalog());
    let mut e = q.scan("t0");
    for i in 1..n {
        e = join(
            e,
            q.scan(&format!("t{i}")),
            JoinPred::eq(
                q.attr(&format!("t{}", i - 1), "b"),
                q.attr(&format!("t{i}"), "a"),
            ),
        );
    }
    e
}

fn optimize(n: usize, space: JoinSpace) -> (RelPlan, usize, usize) {
    let opts = RelModelOptions {
        join_space: space,
        ..RelModelOptions::paper_fig4()
    };
    let model = RelModel::new(chain_catalog(n), opts);
    let expr = chain_query(&model, n);
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    let stats = opt.stats();
    (plan, stats.exprs_created, stats.groups_created)
}

/// Is every join node's right input join-free (a base-relation access
/// path)?
fn is_left_deep(plan: &RelPlan) -> bool {
    plan.nodes().iter().all(|n| {
        if n.alg.is_join() {
            let right = n.inputs.last().expect("joins have inputs");
            right.nodes().iter().all(|m| !m.alg.is_join())
        } else {
            true
        }
    })
}

#[test]
fn left_deep_plans_really_are_left_deep() {
    for n in 3..=6 {
        let (plan, _, _) = optimize(n, JoinSpace::LeftDeep);
        assert!(
            is_left_deep(&plan),
            "n={n}: composite inner in a left-deep-only space:\n{}",
            plan.explain()
        );
        assert_eq!(plan.count_algs(RelAlg::is_join), n - 1, "all joins present");
    }
}

#[test]
fn left_deep_space_is_smaller() {
    for n in [4usize, 5, 6] {
        let (_, bushy_exprs, _) = optimize(n, JoinSpace::Bushy);
        let (_, ld_exprs, _) = optimize(n, JoinSpace::LeftDeep);
        assert!(
            ld_exprs < bushy_exprs,
            "n={n}: left-deep {ld_exprs} must explore fewer expressions than bushy {bushy_exprs}"
        );
    }
}

#[test]
fn bushy_never_worse_than_left_deep() {
    for n in 3..=6 {
        let (bushy, _, _) = optimize(n, JoinSpace::Bushy);
        let (ld, _, _) = optimize(n, JoinSpace::LeftDeep);
        assert!(
            bushy.cost.total() <= ld.cost.total() + 1e-6,
            "n={n}: the bushy space contains every left-deep plan \
             (bushy {} vs left-deep {})",
            bushy.cost,
            ld.cost
        );
    }
}

#[test]
fn left_deep_enumerates_all_orders() {
    // For a 3-relation chain the left-deep space has 3! = 6 orders but
    // only connected ones survive without cross products; the root class
    // must contain several alternatives (exchange + bottom commute).
    let opts = RelModelOptions {
        join_space: JoinSpace::LeftDeep,
        ..RelModelOptions::paper_fig4()
    };
    let model = RelModel::new(chain_catalog(3), opts);
    let expr = chain_query(&model, 3);
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    let _ = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    let root_exprs = opt.memo().group_exprs(opt.memo().repr(root)).count();
    assert!(
        root_exprs >= 2,
        "exchange must generate alternative left-deep orders, got {root_exprs}"
    );
}
