//! End-to-end optimization tests for the relational model: logical
//! algebra in, physical plan out, checked for shape, properties, and cost.

use volcano_core::{OptimizeError, PhysicalProps, SearchOptions};
use volcano_rel::builder::{aggregate, difference, intersect, join_on, project, select_one, union};
use volcano_rel::{
    AggFunc, AggSpec, Catalog, Cmp, ColumnDef, QueryBuilder, RelAlg, RelModel, RelModelOptions,
    RelOptimizer, RelPlan, RelProps,
};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        10_000.0,
        vec![
            ColumnDef::int("id", 10_000.0),
            ColumnDef::int("dept", 100.0),
            ColumnDef::int("salary", 1_000.0),
        ],
    );
    c.add_table(
        "dept",
        100.0,
        vec![ColumnDef::int("id", 100.0), ColumnDef::int("region", 10.0)],
    );
    c.add_table(
        "region",
        10.0,
        vec![ColumnDef::int("id", 10.0), ColumnDef::str("name", 16, 10.0)],
    );
    c
}

fn optimize(model: &RelModel, expr: &volcano_rel::RelExpr, props: RelProps) -> RelPlan {
    let mut opt = RelOptimizer::new(model, SearchOptions::default());
    let root = opt.insert_tree(expr);
    opt.find_best_plan(root, props, None).expect("plan")
}

#[test]
fn single_table_scan() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let plan = optimize(&model, &q.scan("emp"), RelProps::any());
    assert!(matches!(plan.alg, RelAlg::FileScan(_)));
    assert!(plan.cost.io > 0.0);
}

#[test]
fn filter_scan_fuses_select_over_get() {
    // The multi-operator implementation rule must beat filter-over-scan.
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let expr = select_one(q.scan("emp"), Cmp::eq(q.attr("emp", "dept"), 7i64));
    let plan = optimize(&model, &expr, RelProps::any());
    assert!(
        matches!(plan.alg, RelAlg::FilterScan(_, _)),
        "expected fused filter_scan, got {}",
        plan.compact()
    );
    assert_eq!(plan.inputs.len(), 0);
}

#[test]
fn without_filter_scan_rule_a_filter_tree_wins() {
    let opts = RelModelOptions {
        enable_filter_scan: false,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(catalog(), opts);
    let q = QueryBuilder::new(model.catalog());
    let expr = select_one(q.scan("emp"), Cmp::eq(q.attr("emp", "dept"), 7i64));
    let plan = optimize(&model, &expr, RelProps::any());
    assert!(matches!(plan.alg, RelAlg::Filter(_)));
    assert!(matches!(plan.inputs[0].alg, RelAlg::FileScan(_)));
}

#[test]
fn join_order_follows_cost() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    // emp ⋈ dept: hash join should build on the small side (dept).
    let expr = join_on(
        q.scan("emp"),
        q.scan("dept"),
        q.attr("emp", "dept"),
        q.attr("dept", "id"),
    );
    let plan = optimize(&model, &expr, RelProps::any());
    let join_node = plan
        .nodes()
        .into_iter()
        .find(|n| n.alg.is_join())
        .expect("a join in the plan");
    if let RelAlg::HybridHashJoin(_) = &join_node.alg {
        // Left (build) input must be the small relation.
        let left_card_cost = join_node.inputs[0].cost.total();
        let right_card_cost = join_node.inputs[1].cost.total();
        assert!(
            left_card_cost <= right_card_cost,
            "build side should be the cheap/small one"
        );
    }
}

#[test]
fn sorted_output_requirement_is_enforced_and_verified() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let emp_dept = q.attr("emp", "dept");
    let expr = join_on(
        q.scan("emp"),
        q.scan("dept"),
        emp_dept,
        q.attr("dept", "id"),
    );
    let plan = optimize(&model, &expr, RelProps::sorted(vec![emp_dept]));
    assert!(plan.delivered.satisfies(&RelProps::sorted(vec![emp_dept])));
}

#[test]
fn merge_join_is_not_placed_directly_under_sort() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let emp_dept = q.attr("emp", "dept");
    let expr = join_on(
        q.scan("emp"),
        q.scan("dept"),
        emp_dept,
        q.attr("dept", "id"),
    );
    let plan = optimize(&model, &expr, RelProps::sorted(vec![emp_dept]));
    for node in plan.nodes() {
        if matches!(node.alg, RelAlg::Sort(_)) {
            assert!(
                !matches!(node.inputs[0].alg, RelAlg::MergeJoin(_)),
                "excluding property vector violated: sort directly over merge join"
            );
        }
    }
}

#[test]
fn three_way_join_beats_naive_order() {
    // region (10) ⋈ dept (100) ⋈ emp (10000), written worst-first: the
    // optimizer must reorder via commutativity/associativity.
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let naive = join_on(
        join_on(
            q.scan("emp"),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        ),
        q.scan("region"),
        q.attr("dept", "region"),
        q.attr("region", "id"),
    );
    let plan = optimize(&model, &naive, RelProps::any());
    // The plan must be valid and carry all three scans.
    let scans = plan.count_algs(|a| matches!(a, RelAlg::FileScan(_)));
    assert_eq!(scans, 3);

    // Disabling transformations (empty exploration) would cost more; here
    // simply sanity-check the cost is positive and plan depth reasonable.
    assert!(plan.cost.total() > 0.0);
    assert!(plan.depth() >= 3);
}

#[test]
fn select_pushdown_reduces_cost() {
    let base = catalog();
    let q_catalog = base.clone();
    let q = QueryBuilder::new(&q_catalog);
    // Selection written ABOVE the join; push-down should move it below.
    let expr = select_one(
        join_on(
            q.scan("emp"),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        ),
        Cmp::eq(q.attr("emp", "salary"), 42i64),
    );

    let with = RelModel::new(base.clone(), RelModelOptions::default());
    let p_with = optimize(&with, &expr, RelProps::any());

    let opts = RelModelOptions {
        enable_select_pushdown: false,
        enable_filter_scan: false,
        ..RelModelOptions::default()
    };
    let without = RelModel::new(base, opts);
    let p_without = optimize(&without, &expr, RelProps::any());

    assert!(
        p_with.cost.total() < p_without.cost.total(),
        "pushdown {} should beat no-pushdown {}",
        p_with.cost,
        p_without.cost
    );
}

#[test]
fn projection_preserves_usable_orders() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let id = q.attr("emp", "id");
    let dept = q.attr("emp", "dept");
    let expr = project(q.scan("emp"), vec![id, dept]);
    let plan = optimize(&model, &expr, RelProps::sorted(vec![id]));
    assert!(plan.delivered.satisfies(&RelProps::sorted(vec![id])));
    // A projection dropping `id` cannot deliver an order on it: the sort
    // must happen above the projection.
    let expr2 = project(q.scan("emp"), vec![dept]);
    let plan2 = optimize(&model, &expr2, RelProps::sorted(vec![dept]));
    assert!(plan2.delivered.satisfies(&RelProps::sorted(vec![dept])));
}

#[test]
fn union_intersect_difference_all_plan() {
    let mut c = Catalog::new();
    c.add_table("r", 1000.0, vec![ColumnDef::int("x", 500.0)]);
    c.add_table("s", 800.0, vec![ColumnDef::int("x", 400.0)]);
    let model = RelModel::with_defaults(c);
    let q = QueryBuilder::new(model.catalog());

    for (expr, kinds) in [
        (
            union(q.scan("r"), q.scan("s")),
            vec![RelAlg::HashUnion, RelAlg::MergeUnion],
        ),
        (
            intersect(q.scan("r"), q.scan("s")),
            vec![RelAlg::HashIntersect, RelAlg::MergeIntersect],
        ),
        (
            difference(q.scan("r"), q.scan("s")),
            vec![RelAlg::HashDifference, RelAlg::MergeDifference],
        ),
    ] {
        let plan = optimize(&model, &expr, RelProps::any());
        assert!(
            kinds.contains(&plan.alg),
            "unexpected set-op algorithm {:?}",
            plan.alg
        );
    }
}

#[test]
fn sorted_set_op_uses_merge_variant() {
    let mut c = Catalog::new();
    c.add_table("r", 1000.0, vec![ColumnDef::int("x", 500.0)]);
    c.add_table("s", 800.0, vec![ColumnDef::int("x", 400.0)]);
    let x = c.attr("r", "x");
    let model = RelModel::with_defaults(c);
    let q = QueryBuilder::new(model.catalog());
    let plan = optimize(
        &model,
        &intersect(q.scan("r"), q.scan("s")),
        RelProps::sorted(vec![x]),
    );
    assert!(plan.delivered.satisfies(&RelProps::sorted(vec![x])));
}

#[test]
fn aggregation_chooses_between_hash_and_stream() {
    let mut c = Catalog::new();
    c.add_table(
        "sales",
        50_000.0,
        vec![
            ColumnDef::int("cust", 200.0),
            ColumnDef::int("amount", 10_000.0),
        ],
    );
    let cust = c.attr("sales", "cust");
    let amount = c.attr("sales", "amount");
    let out = c.fresh_attr();
    let model = RelModel::with_defaults(c);
    let q = QueryBuilder::new(model.catalog());
    let expr = aggregate(
        q.scan("sales"),
        AggSpec {
            group_by: vec![cust],
            aggs: vec![(AggFunc::Sum(amount), out)],
        },
    );
    // Unordered goal: hash aggregation should win (no sort needed).
    let plan = optimize(&model, &expr, RelProps::any());
    assert!(matches!(plan.alg, RelAlg::HashAggregate(_)));
    // Ordered goal: stream aggregate over sorted input, or sort on top of
    // hash — either way the property must hold.
    let plan2 = optimize(&model, &expr, RelProps::sorted(vec![cust]));
    assert!(plan2.delivered.satisfies(&RelProps::sorted(vec![cust])));
}

#[test]
fn parallel_model_splits_aggregate_into_two_phases() {
    // A large aggregation under a parallel model must split: per-worker
    // partial aggregation below the gather, a final merge above it —
    // only group summaries cross the exchange.
    let mut c = Catalog::new();
    c.add_table(
        "sales",
        1_000_000.0,
        vec![
            ColumnDef::int("cust", 100.0),
            ColumnDef::int("amount", 10_000.0),
        ],
    );
    let cust = c.attr("sales", "cust");
    let amount = c.attr("sales", "amount");
    let out = c.fresh_attr();
    let expr = |c: &RelModel| {
        let q = QueryBuilder::new(c.catalog());
        aggregate(
            q.scan("sales"),
            AggSpec {
                group_by: vec![cust],
                aggs: vec![(AggFunc::Sum(amount), out)],
            },
        )
    };
    let parallel = RelModel::new(
        c.clone(),
        RelModelOptions::default().with_parallel_degree(8),
    );
    let plan = optimize(&parallel, &expr(&parallel), RelProps::any());
    let shape = plan.compact();
    assert!(
        matches!(plan.alg, RelAlg::FinalHashAggregate(_)),
        "expected final_hash_aggregate at the root, got {shape}"
    );
    assert!(
        matches!(plan.inputs[0].alg, RelAlg::Gather(8)),
        "expected gather(8) below the final merge, got {shape}"
    );
    assert!(
        matches!(
            plan.inputs[0].inputs[0].alg,
            RelAlg::PartialHashAggregate(_, 8)
        ),
        "expected partial_hash_aggregate below the gather, got {shape}"
    );
    // The serial model must keep the one-shot plan.
    let serial = RelModel::new(c, RelModelOptions::default());
    let plan = optimize(&serial, &expr(&serial), RelProps::any());
    assert!(
        matches!(plan.alg, RelAlg::HashAggregate(_)),
        "serial model must not split, got {}",
        plan.compact()
    );
}

#[test]
fn impossible_requirement_fails_cleanly() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    // Require an order on an attribute that is projected away: no plan
    // can deliver it (sort enforcer also lives above the projection whose
    // schema lacks the attribute — the sort *can* still sort by a column
    // not in the schema? No: the requirement refers to an attribute that
    // exists nowhere in the output).
    let dept = q.attr("emp", "dept");
    let id = q.attr("emp", "id");
    let expr = project(q.scan("emp"), vec![id]);
    // Note: the sort enforcer will happily claim to sort by `dept`; the
    // model does not forbid it (sorting by an absent column is a model
    // refinement, not an engine concern). What must hold is that a plan is
    // produced only if its delivered properties satisfy the goal.
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    match opt.find_best_plan(root, RelProps::sorted(vec![dept]), None) {
        Ok(plan) => assert!(plan.delivered.satisfies(&RelProps::sorted(vec![dept]))),
        Err(OptimizeError::NoPlan) => {}
        Err(e) => panic!("unexpected error {e:?}"),
    }
}

#[test]
fn cost_limit_failure_then_success() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let expr = join_on(
        q.scan("emp"),
        q.scan("dept"),
        q.attr("emp", "dept"),
        q.attr("dept", "id"),
    );
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    let tiny = volcano_rel::RelCost::new(0.0, 0.001);
    assert!(matches!(
        opt.find_best_plan(root, RelProps::any(), Some(tiny)),
        Err(OptimizeError::LimitExceeded)
    ));
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    assert!(plan.cost.total() > 0.001);
}

#[test]
fn alternative_sort_orders_for_multi_key_merge_join() {
    // Few distinct values make the join output much larger than the
    // inputs, so sorting the inputs (merge join path) is far cheaper than
    // sorting the output (sort-over-hash-join path).
    let mut c = Catalog::new();
    c.add_table(
        "l",
        5_000.0,
        vec![ColumnDef::int("a", 5.0), ColumnDef::int("b", 2.0)],
    );
    c.add_table(
        "r",
        5_000.0,
        vec![ColumnDef::int("a", 5.0), ColumnDef::int("b", 2.0)],
    );
    let la = c.attr("l", "a");
    let lb = c.attr("l", "b");
    let ra = c.attr("r", "a");
    let rb = c.attr("r", "b");

    let opts = RelModelOptions {
        sort_order_variants: 2,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(c, opts);
    let q = QueryBuilder::new(model.catalog());
    let expr = volcano_rel::builder::join(
        q.scan("l"),
        q.scan("r"),
        volcano_rel::JoinPred::on(vec![(la, ra), (lb, rb)]),
    );
    // Ask for the *swapped* key order (b, a): only the alternative
    // application can satisfy it without a final sort.
    let plan = optimize(&model, &expr, RelProps::sorted(vec![lb, la]));
    assert!(plan.delivered.satisfies(&RelProps::sorted(vec![lb, la])));
    // With variants enabled, a merge join delivering (b, a) directly
    // avoids the top-level sort.
    assert!(
        matches!(plan.alg, RelAlg::MergeJoin(_)),
        "expected merge join delivering the alternative order, got {}",
        plan.compact()
    );
}
