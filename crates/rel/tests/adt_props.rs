//! Property-based tests of the relational ADTs: the laws the search
//! engine depends on (cost monoid, property-vector cover order,
//! predicate canonicalization, selectivity bounds).

use proptest::prelude::*;
use volcano_core::cost::Cost;
use volcano_core::props::PhysicalProps;
use volcano_rel::{AttrId, Cmp, CmpOp, JoinPred, Pred, RelCost, RelProps, Value};

fn arb_cost() -> impl Strategy<Value = RelCost> {
    (0.0f64..1e9, 0.0f64..1e9).prop_map(|(io, cpu)| RelCost::new(io, cpu))
}

fn arb_sort() -> impl Strategy<Value = RelProps> {
    proptest::collection::vec(0u32..8, 0..5).prop_map(|v| {
        let mut seen = Vec::new();
        for a in v {
            if !seen.contains(&AttrId(a)) {
                seen.push(AttrId(a));
            }
        }
        RelProps::sorted(seen)
    })
}

fn arb_cmp() -> impl Strategy<Value = Cmp> {
    (
        0u32..6,
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        any::<i32>(),
    )
        .prop_map(|(a, op, v)| Cmp::new(AttrId(a), op, Value::Int(v as i64)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// RelCost is a commutative monoid under add, with a total preorder.
    #[test]
    fn cost_monoid_laws(a in arb_cost(), b in arb_cost(), c in arb_cost()) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert!((ab.total() - ba.total()).abs() < 1e-6);
        let abc1 = a.add(&b).add(&c);
        let abc2 = a.add(&b.add(&c));
        prop_assert!((abc1.total() - abc2.total()).abs() < 1e-6);
        prop_assert_eq!(a.add(&RelCost::zero()).total(), a.total());
        // Monotone: adding never makes things cheaper.
        prop_assert!(a.cheaper_or_equal(&ab));
        // Totality of comparison.
        prop_assert!(a.cheaper_or_equal(&b) || b.cheaper_or_equal(&a));
    }

    /// sub_saturating is the budget inverse of add on the comparison key.
    #[test]
    fn cost_sub_laws(a in arb_cost(), b in arb_cost()) {
        let r = a.add(&b).sub_saturating(&b);
        prop_assert!((r.total() - a.total()).abs() <= 1e-6 * a.total().max(1.0));
        let z = a.sub_saturating(&a.add(&b));
        prop_assert!(z.total() <= 1e-9);
    }

    /// Prefix cover is a partial order with the empty vector as bottom.
    #[test]
    fn props_cover_laws(a in arb_sort(), b in arb_sort(), c in arb_sort()) {
        prop_assert!(a.satisfies(&a));
        prop_assert!(a.satisfies(&RelProps::any()));
        if a.satisfies(&b) && b.satisfies(&c) {
            prop_assert!(a.satisfies(&c));
        }
        if a.satisfies(&b) && b.satisfies(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        // Cover respects extension: a longer vector satisfies each of its
        // own prefixes.
        for k in 0..=a.sort.len() {
            prop_assert!(a.satisfies(&RelProps::sorted(a.sort[..k].to_vec())));
        }
    }

    /// Predicate canonicalization: `conj` is order-insensitive and
    /// idempotent, `and` is associative and commutative as a set.
    #[test]
    fn pred_canonicalization(mut terms in proptest::collection::vec(arb_cmp(), 0..6)) {
        let p1 = Pred::conj(terms.clone());
        terms.reverse();
        let p2 = Pred::conj(terms.clone());
        prop_assert_eq!(&p1, &p2);
        prop_assert_eq!(Pred::conj(p1.terms().to_vec()), p1.clone());
        let (x, y) = p1.partition(|a| a.0 % 2 == 0);
        prop_assert_eq!(x.and(&y), p1);
    }

    /// JoinPred flip is an involution and partition is a partition.
    #[test]
    fn join_pred_laws(pairs in proptest::collection::vec((0u32..6, 6u32..12), 0..5)) {
        let p = JoinPred::on(pairs.iter().map(|&(l, r)| (AttrId(l), AttrId(r))).collect());
        prop_assert_eq!(p.flipped().flipped(), p.clone());
        let (a, b) = p.partition(|l, _| l.0 % 2 == 0);
        prop_assert_eq!(a.and(&b), p.clone());
        prop_assert_eq!(p.left_attrs().len(), p.pairs().len());
    }
}

mod selectivity_bounds {
    use super::*;
    use std::sync::Arc;
    use volcano_rel::catalog::ColType;
    use volcano_rel::props::{ColInfo, RelLogical};
    use volcano_rel::selectivity::{join_selectivity, pred_selectivity};

    fn logical(distinct: Vec<f64>, card: f64) -> RelLogical {
        RelLogical {
            card,
            cols: Arc::new(
                distinct
                    .into_iter()
                    .enumerate()
                    .map(|(i, d)| ColInfo {
                        attr: AttrId(i as u32),
                        ty: ColType::Int,
                        width: 8,
                        distinct: d,
                    })
                    .collect(),
            ),
        }
    }

    proptest! {
        /// Selectivities are always in (0, 1].
        #[test]
        fn selectivities_bounded(
            distincts in proptest::collection::vec(1.0f64..1e6, 3..6),
            terms in proptest::collection::vec(super::arb_cmp(), 0..6),
        ) {
            let n = distincts.len();
            let l = logical(distincts.clone(), 1e5);
            let terms: Vec<Cmp> = terms
                .into_iter()
                .map(|mut c| { c.attr = AttrId(c.attr.0 % n as u32); c })
                .collect();
            let s = pred_selectivity(&Pred::conj(terms), &l);
            prop_assert!(s > 0.0 && s <= 1.0);

            let r = logical(distincts, 1e5);
            let jp = JoinPred::eq(AttrId(0), AttrId(1));
            let js = join_selectivity(&jp, &l, &r);
            prop_assert!(js > 0.0 && js <= 1.0);
        }
    }
}
