//! Memory-dependent cost: the paper's cost-as-a-function-of-memory
//! facility (§4.1). Regenerating the optimizer with different memory
//! parameters flips plans between hash- and sort-based strategies —
//! the basis for "dynamic plans for incompletely specified queries" (§1).

use volcano_core::{PhysicalProps, SearchOptions};
use volcano_rel::builder::join;
use volcano_rel::{
    Catalog, ColumnDef, JoinPred, QueryBuilder, RelAlg, RelModel, RelModelOptions, RelOptimizer,
    RelPlan, RelProps,
};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    // ~1.5 MB build side (15,000 rows × 100 bytes).
    c.add_table(
        "build",
        15_000.0,
        vec![
            ColumnDef::int("k", 1_500.0),
            ColumnDef::str("pad", 92, 15_000.0),
        ],
    );
    c.add_table(
        "probe",
        15_000.0,
        vec![
            ColumnDef::int("k", 1_500.0),
            ColumnDef::str("pad", 92, 15_000.0),
        ],
    );
    c
}

fn optimize(memory_bytes: f64) -> RelPlan {
    let opts = RelModelOptions {
        hash_join_memory_bytes: memory_bytes,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(catalog(), opts);
    let q = QueryBuilder::new(model.catalog());
    let expr = join(
        q.scan("build"),
        q.scan("probe"),
        JoinPred::eq(q.attr("build", "k"), q.attr("probe", "k")),
    );
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    opt.find_best_plan(root, RelProps::any(), None).unwrap()
}

#[test]
fn infinite_memory_prefers_hash_join() {
    let plan = optimize(f64::INFINITY);
    assert_eq!(
        plan.count_algs(|a| matches!(a, RelAlg::HybridHashJoin(_))),
        1,
        "{}",
        plan.explain()
    );
}

#[test]
fn plenty_of_memory_behaves_like_infinite() {
    let infinite = optimize(f64::INFINITY);
    let plenty = optimize(64.0 * 1024.0 * 1024.0);
    assert!((infinite.cost.total() - plenty.cost.total()).abs() < 1e-9);
}

#[test]
fn tight_memory_flips_to_sort_based_plan() {
    // 64 KiB: almost the whole build side spills; merge join with sorts
    // becomes the better plan.
    let plan = optimize(64.0 * 1024.0);
    assert_eq!(
        plan.count_algs(|a| matches!(a, RelAlg::MergeJoin(_))),
        1,
        "expected a sort-based plan under memory pressure:\n{}",
        plan.explain()
    );
}

#[test]
fn cost_is_monotone_in_memory_pressure() {
    let mut last = optimize(f64::INFINITY).cost.total();
    for mem in [8.0e6, 2.0e6, 1.0e6, 256.0e3, 64.0e3] {
        let cost = optimize(mem).cost.total();
        assert!(
            cost + 1e-9 >= last,
            "less memory can never make the optimum cheaper ({mem} bytes: {cost} < {last})"
        );
        last = cost;
    }
}
