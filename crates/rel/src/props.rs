//! Logical and physical properties of relational intermediate results.
//!
//! Logical properties (schema, estimated cardinality, widths, distinct
//! counts) "can be derived from the logical algebra expression" and attach
//! to equivalence classes; physical properties (sort order) "depend on
//! algorithms" and attach to plans (§2.2).
//!
//! **Derivation invariance.** Logical properties must be a function of the
//! equivalence class, not of the particular member expression they were
//! derived from. The estimation scheme here is chosen to guarantee that:
//! per-column distinct counts stay at their base-table values, and
//! cardinality is `(product of base cardinalities) × (product of all
//! selection selectivities) × (product of all join selectivities)` — every
//! factor commutes, and the transformation rules preserve the *multiset*
//! of predicates, so any derivation order yields the same estimate (this
//! is debug-asserted on every duplicate derivation).

use std::sync::Arc;

use volcano_core::props::PhysicalProps;

use crate::catalog::ColType;
use crate::ids::AttrId;

/// Statistics for one output column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColInfo {
    /// The attribute's global id.
    pub attr: AttrId,
    /// Data type.
    pub ty: ColType,
    /// Average width in bytes.
    pub width: u32,
    /// Distinct values (base-table estimate; see module docs).
    pub distinct: f64,
}

/// Logical properties of an equivalence class.
#[derive(Debug, Clone)]
pub struct RelLogical {
    /// Estimated output cardinality (rows).
    pub card: f64,
    /// Output schema with per-column statistics, in output order.
    pub cols: Arc<Vec<ColInfo>>,
}

impl RelLogical {
    /// Average output row width in bytes.
    pub fn row_width(&self) -> f64 {
        self.cols.iter().map(|c| c.width as f64).sum()
    }

    /// Estimated size in pages of the given size.
    pub fn pages(&self, page_size: f64) -> f64 {
        (self.card * self.row_width() / page_size).max(1.0)
    }

    /// Does the schema contain this attribute?
    pub fn has_attr(&self, a: AttrId) -> bool {
        self.cols.iter().any(|c| c.attr == a)
    }

    /// Statistics of a column, if present.
    pub fn col(&self, a: AttrId) -> Option<&ColInfo> {
        self.cols.iter().find(|c| c.attr == a)
    }

    /// Position of an attribute in the output schema (needed when a plan
    /// is lowered to executable operators).
    pub fn position(&self, a: AttrId) -> Option<usize> {
        self.cols.iter().position(|c| c.attr == a)
    }

    /// Distinct-value estimate for an attribute (1.0 if unknown).
    pub fn distinct(&self, a: AttrId) -> f64 {
        self.col(a).map(|c| c.distinct).unwrap_or(1.0)
    }
}

/// The relational physical property vector: an ordering requirement and
/// a parallel degree.
///
/// `sort` lists attributes major-to-minor. The empty order is the "no
/// requirement" vector. The cover comparison is prefix-based: a stream
/// sorted on `(A, B)` satisfies a requirement of "sorted on `(A)`" but not
/// vice versa.
///
/// `parallel` is the number of independent partitions the stream is split
/// across. `1` means a single serial stream (the default); `n > 1` means
/// the intermediate result is produced by `n` workers over disjoint
/// morsels. The cover comparison is *exact*: a serial stream does not
/// satisfy a parallel requirement (someone must split it) and a parallel
/// stream does not satisfy a serial one (someone — the Gather enforcer —
/// must merge it). Parallelism thus follows the paper's exchange-operator
/// doctrine: it is a physical property chosen by the optimizer and
/// realized by an enforcer, invisible to the logical algebra.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelProps {
    /// Required/delivered sort order, major attribute first.
    pub sort: Vec<AttrId>,
    /// Required/delivered parallel degree (1 = serial).
    pub parallel: u32,
}

impl Default for RelProps {
    fn default() -> Self {
        RelProps::any()
    }
}

impl RelProps {
    /// A sort requirement (serial, like all sorted streams here).
    pub fn sorted(attrs: Vec<AttrId>) -> Self {
        RelProps {
            sort: attrs,
            parallel: 1,
        }
    }

    /// A parallel-partitioning requirement: `n` workers over disjoint
    /// morsels, no ordering.
    pub fn parallel(n: u32) -> Self {
        RelProps {
            sort: Vec::new(),
            parallel: n.max(1),
        }
    }

    /// Is a sort requirement present?
    pub fn is_sorted(&self) -> bool {
        !self.sort.is_empty()
    }

    /// Is this a parallel (degree > 1) property vector?
    pub fn is_parallel(&self) -> bool {
        self.parallel > 1
    }
}

impl PhysicalProps for RelProps {
    fn any() -> Self {
        RelProps {
            sort: Vec::new(),
            parallel: 1,
        }
    }

    fn satisfies(&self, required: &Self) -> bool {
        self.parallel == required.parallel
            && required.sort.len() <= self.sort.len()
            && self.sort[..required.sort.len()] == required.sort[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn logical(cols: Vec<(u32, f64)>, card: f64) -> RelLogical {
        RelLogical {
            card,
            cols: Arc::new(
                cols.into_iter()
                    .map(|(i, d)| ColInfo {
                        attr: a(i),
                        ty: ColType::Int,
                        width: 8,
                        distinct: d,
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn prefix_cover() {
        let ab = RelProps::sorted(vec![a(1), a(2)]);
        let just_a = RelProps::sorted(vec![a(1)]);
        let ba = RelProps::sorted(vec![a(2), a(1)]);
        assert!(ab.satisfies(&just_a));
        assert!(!just_a.satisfies(&ab));
        assert!(!ab.satisfies(&ba));
        assert!(ab.satisfies(&RelProps::any()));
        assert!(ab.satisfies(&ab));
    }

    #[test]
    fn any_is_no_requirement() {
        assert!(RelProps::any().is_any());
        assert!(!RelProps::sorted(vec![a(1)]).is_any());
        assert!(!RelProps::parallel(4).is_any());
    }

    #[test]
    fn parallel_cover_is_exact() {
        let serial = RelProps::any();
        let par4 = RelProps::parallel(4);
        let par8 = RelProps::parallel(8);
        assert!(par4.satisfies(&par4));
        assert!(!par4.satisfies(&serial), "a split stream must be gathered");
        assert!(!serial.satisfies(&par4), "a serial stream must be split");
        assert!(!par4.satisfies(&par8));
        assert_eq!(RelProps::parallel(1), serial);
    }

    #[test]
    fn logical_accessors() {
        let l = logical(vec![(1, 10.0), (2, 5.0)], 100.0);
        assert_eq!(l.row_width(), 16.0);
        assert!(l.has_attr(a(2)));
        assert!(!l.has_attr(a(3)));
        assert_eq!(l.position(a(2)), Some(1));
        assert_eq!(l.distinct(a(1)), 10.0);
        assert_eq!(l.distinct(a(9)), 1.0);
    }

    #[test]
    fn pages_round_up_to_one() {
        let l = logical(vec![(1, 10.0)], 10.0);
        assert_eq!(l.pages(4096.0), 1.0);
        let big = logical(vec![(1, 10.0)], 10_000.0);
        assert!((big.pages(4096.0) - 10_000.0 * 8.0 / 4096.0).abs() < 1e-9);
    }
}
