//! Selection and join predicates.
//!
//! Predicates appear *inside* logical operators, so they must be cheap to
//! clone, `Eq`, and `Hash` — the memo keys expressions by operator value.
//! Selections carry a conjunction of simple comparisons; joins carry a set
//! of equality pairs (kept sorted for canonical hashing), which is what
//! the associativity rule needs to split and recombine predicates
//! correctly.

use std::fmt;

use crate::ids::AttrId;
use crate::value::Value;

/// Comparison operators in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate against a comparison result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One comparison: `attr op literal`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cmp {
    /// The attribute compared.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The literal compared against.
    pub value: Value,
    /// Prepared-statement parameter slot this literal was bound from.
    /// Identity (`Eq`/`Hash`) includes the slot, so two conjuncts that
    /// momentarily carry equal values but come from distinct parameters
    /// (`a < $0 AND a < $1` with both bound to 5) never collapse under
    /// [`Pred::conj`]'s dedup — rebinding a cached plan by slot stays
    /// structurally exact. `None` for ordinary literals.
    pub param: Option<u32>,
}

impl Cmp {
    /// Build a comparison.
    pub fn new(attr: AttrId, op: CmpOp, value: impl Into<Value>) -> Self {
        Cmp {
            attr,
            op,
            value: value.into(),
            param: None,
        }
    }

    /// Build a comparison whose literal is bound from parameter `slot`.
    pub fn with_param(attr: AttrId, op: CmpOp, value: impl Into<Value>, slot: u32) -> Self {
        Cmp {
            attr,
            op,
            value: value.into(),
            param: Some(slot),
        }
    }

    /// `attr = value`.
    pub fn eq(attr: AttrId, value: impl Into<Value>) -> Self {
        Cmp::new(attr, CmpOp::Eq, value)
    }

    /// `attr < value`.
    pub fn lt(attr: AttrId, value: impl Into<Value>) -> Self {
        Cmp::new(attr, CmpOp::Lt, value)
    }

    /// The same comparison with the literal replaced by the value of its
    /// parameter slot in `params` (identity for unparameterized terms).
    pub fn rebound(&self, params: &[Value]) -> Cmp {
        match self.param {
            Some(slot) => Cmp {
                value: params
                    .get(slot as usize)
                    .unwrap_or_else(|| panic!("parameter ${slot} not bound"))
                    .clone(),
                ..self.clone()
            },
            None => self.clone(),
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param {
            Some(slot) => write!(
                f,
                "{} {} ${}={}",
                self.attr,
                self.op.symbol(),
                slot,
                self.value
            ),
            None => write!(f, "{} {} {}", self.attr, self.op.symbol(), self.value),
        }
    }
}

/// A conjunction of comparisons (the selection predicate).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Pred {
    /// The conjuncts; kept sorted by attribute for canonical hashing.
    terms: Vec<Cmp>,
}

impl Pred {
    /// A conjunction of the given comparisons.
    ///
    /// The parameter slot sorts *before* the literal value so that a
    /// parameterized conjunction keeps the same term order (and hence the
    /// same canonical shape) no matter which values the slots are bound
    /// to — a cached plan template rebound to fresh parameters is
    /// term-for-term identical to re-lowering under those parameters.
    pub fn conj(mut terms: Vec<Cmp>) -> Self {
        terms.sort_by(|a, b| {
            (a.attr, a.op as u8)
                .cmp(&(b.attr, b.op as u8))
                .then_with(|| a.param.cmp(&b.param))
                .then_with(|| a.value.cmp(&b.value))
        });
        terms.dedup();
        Pred { terms }
    }

    /// A single-comparison predicate.
    pub fn single(c: Cmp) -> Self {
        Pred::conj(vec![c])
    }

    /// The conjuncts.
    pub fn terms(&self) -> &[Cmp] {
        &self.terms
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Is the predicate trivially true?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// All attributes referenced.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut v: Vec<AttrId> = self.terms.iter().map(|c| c.attr).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Split into the conjuncts whose attribute satisfies `pred` and the
    /// rest — the workhorse of selection push-down.
    pub fn partition(&self, pred: impl Fn(AttrId) -> bool) -> (Pred, Pred) {
        let (yes, no): (Vec<Cmp>, Vec<Cmp>) =
            self.terms.iter().cloned().partition(|c| pred(c.attr));
        (Pred::conj(yes), Pred::conj(no))
    }

    /// Conjoin two predicates.
    pub fn and(&self, other: &Pred) -> Pred {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        Pred::conj(terms)
    }

    /// The predicate with every parameterized term rebound to the value
    /// of its slot in `params` (plan-template rebinding for prepared
    /// statements). Panics if a referenced slot is out of range.
    pub fn rebound(&self, params: &[Value]) -> Pred {
        Pred::conj(self.terms.iter().map(|c| c.rebound(params)).collect())
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self.terms.iter().map(Cmp::to_string).collect();
        write!(f, "{}", parts.join(" AND "))
    }
}

/// An equi-join predicate: a set of attribute equality pairs
/// `left.a = right.b`, kept sorted for canonical hashing. An empty set is
/// a Cartesian product.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct JoinPred {
    pairs: Vec<(AttrId, AttrId)>,
}

impl JoinPred {
    /// Build from equality pairs `(left attr, right attr)`.
    pub fn on(mut pairs: Vec<(AttrId, AttrId)>) -> Self {
        pairs.sort();
        pairs.dedup();
        JoinPred { pairs }
    }

    /// A single equality pair.
    pub fn eq(l: AttrId, r: AttrId) -> Self {
        JoinPred::on(vec![(l, r)])
    }

    /// The Cartesian product (no predicate).
    pub fn cross() -> Self {
        JoinPred::default()
    }

    /// The equality pairs.
    pub fn pairs(&self) -> &[(AttrId, AttrId)] {
        &self.pairs
    }

    /// Is this a Cartesian product?
    pub fn is_cross(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Left-side attributes, in pair order (the natural delivered sort
    /// order of a merge join).
    pub fn left_attrs(&self) -> Vec<AttrId> {
        self.pairs.iter().map(|&(l, _)| l).collect()
    }

    /// Right-side attributes, in pair order.
    pub fn right_attrs(&self) -> Vec<AttrId> {
        self.pairs.iter().map(|&(_, r)| r).collect()
    }

    /// Swap the sides (for join commutativity).
    pub fn flipped(&self) -> JoinPred {
        JoinPred::on(self.pairs.iter().map(|&(l, r)| (r, l)).collect())
    }

    /// Split the pairs by a predicate on *both* endpoints' membership:
    /// `classify(l, r)` returns `true` to keep the pair in the first
    /// result. Used by associativity to re-route predicates.
    pub fn partition(&self, classify: impl Fn(AttrId, AttrId) -> bool) -> (JoinPred, JoinPred) {
        let (yes, no): (Vec<_>, Vec<_>) = self
            .pairs
            .iter()
            .copied()
            .partition(|&(l, r)| classify(l, r));
        (JoinPred::on(yes), JoinPred::on(no))
    }

    /// Merge two predicates into one.
    pub fn and(&self, other: &JoinPred) -> JoinPred {
        let mut pairs = self.pairs.clone();
        pairs.extend(other.pairs.iter().copied());
        JoinPred::on(pairs)
    }

    /// All attributes referenced on either side.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut v: Vec<AttrId> = self.pairs.iter().flat_map(|&(l, r)| [l, r]).collect();
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for JoinPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pairs.is_empty() {
            return write!(f, "cross");
        }
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|(l, r)| format!("{l} = {r}"))
            .collect();
        write!(f, "{}", parts.join(" AND "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(!CmpOp::Gt.eval(Equal));
        assert!(CmpOp::Lt.eval(Less));
    }

    #[test]
    fn pred_canonical_order_makes_equal_hashes() {
        let p1 = Pred::conj(vec![Cmp::eq(a(2), 5i64), Cmp::lt(a(1), 9i64)]);
        let p2 = Pred::conj(vec![Cmp::lt(a(1), 9i64), Cmp::eq(a(2), 5i64)]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn pred_partition_splits_by_attr() {
        let p = Pred::conj(vec![Cmp::eq(a(1), 1i64), Cmp::eq(a(5), 2i64)]);
        let (lo, hi) = p.partition(|x| x.0 < 3);
        assert_eq!(lo.attrs(), vec![a(1)]);
        assert_eq!(hi.attrs(), vec![a(5)]);
    }

    #[test]
    fn join_pred_flip_roundtrip() {
        let p = JoinPred::on(vec![(a(1), a(10)), (a(2), a(11))]);
        assert_eq!(p.flipped().flipped(), p);
        assert_eq!(p.left_attrs(), vec![a(1), a(2)]);
        assert_eq!(p.flipped().left_attrs(), vec![a(10), a(11)]);
    }

    #[test]
    fn join_pred_cross_detection() {
        assert!(JoinPred::cross().is_cross());
        assert!(!JoinPred::eq(a(0), a(1)).is_cross());
    }

    #[test]
    fn distinct_param_slots_never_dedup() {
        // `a < $0 AND a < $1` with both slots bound to 5: value-identical
        // terms from distinct parameters must survive as two conjuncts,
        // else rebinding to unequal values would be unsound.
        let p = Pred::conj(vec![
            Cmp::with_param(a(1), CmpOp::Lt, 5i64, 0),
            Cmp::with_param(a(1), CmpOp::Lt, 5i64, 1),
        ]);
        assert_eq!(p.len(), 2);
        // Identical slot + value still dedups.
        let q = Pred::conj(vec![
            Cmp::with_param(a(1), CmpOp::Lt, 5i64, 0),
            Cmp::with_param(a(1), CmpOp::Lt, 5i64, 0),
        ]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn rebinding_is_order_stable() {
        // The term order (hence shape) must not depend on bound values.
        let mk = |v0: i64, v1: i64| {
            Pred::conj(vec![
                Cmp::with_param(a(1), CmpOp::Lt, v0, 0),
                Cmp::with_param(a(1), CmpOp::Lt, v1, 1),
            ])
        };
        let p = mk(2, 9);
        let rebound = p.rebound(&[Value::Int(9), Value::Int(2)]);
        assert_eq!(rebound, mk(9, 2));
        assert_eq!(rebound.terms()[0].param, Some(0));
        assert_eq!(rebound.terms()[1].param, Some(1));
        // Unparameterized terms pass through untouched.
        let plain = Pred::single(Cmp::eq(a(2), 7i64));
        assert_eq!(plain.rebound(&[]), plain);
    }

    #[test]
    fn display_forms() {
        let p = Pred::conj(vec![Cmp::eq(a(1), 5i64)]);
        assert_eq!(p.to_string(), "a1 = 5");
        assert_eq!(Pred::default().to_string(), "true");
        assert_eq!(JoinPred::eq(a(1), a(2)).to_string(), "a1 = a2");
        assert_eq!(JoinPred::cross().to_string(), "cross");
    }
}
