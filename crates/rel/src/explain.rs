//! Human-readable plan and expression rendering with catalog names.
//!
//! The generic `Plan::explain` prints attribute ids (`a17`); this module
//! resolves them back to `table.column` names for people.

use std::fmt::Write as _;

use volcano_core::model::Algorithm as _;

use crate::catalog::Catalog;
use crate::ids::AttrId;
use crate::ops::RelOp;
use crate::predicate::{JoinPred, Pred};
use crate::{RelAlg, RelExpr, RelPlan};

fn attr_name(catalog: &Catalog, a: AttrId) -> String {
    match catalog.attr_name(a) {
        Some((t, c)) => format!("{t}.{c}"),
        None => format!("{a}"),
    }
}

fn attrs_name(catalog: &Catalog, attrs: &[AttrId]) -> String {
    attrs
        .iter()
        .map(|&a| attr_name(catalog, a))
        .collect::<Vec<_>>()
        .join(", ")
}

fn pred_name(catalog: &Catalog, p: &Pred) -> String {
    if p.is_empty() {
        return "true".to_string();
    }
    p.terms()
        .iter()
        .map(|c| {
            format!(
                "{} {} {}",
                attr_name(catalog, c.attr),
                c.op.symbol(),
                c.value
            )
        })
        .collect::<Vec<_>>()
        .join(" AND ")
}

fn join_pred_name(catalog: &Catalog, p: &JoinPred) -> String {
    if p.is_cross() {
        return "cross".to_string();
    }
    p.pairs()
        .iter()
        .map(|&(l, r)| format!("{} = {}", attr_name(catalog, l), attr_name(catalog, r)))
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// One physical operator with names resolved.
pub fn alg_description(catalog: &Catalog, alg: &RelAlg) -> String {
    match alg {
        RelAlg::FileScan(t) => format!("file_scan({})", catalog.table(*t).name),
        RelAlg::IndexScan(t, a) => format!(
            "index_scan({}, {})",
            catalog.table(*t).name,
            attr_name(catalog, *a)
        ),
        RelAlg::FilterScan(t, p) => format!(
            "filter_scan({}, {})",
            catalog.table(*t).name,
            pred_name(catalog, p)
        ),
        RelAlg::Filter(p) => format!("filter[{}]", pred_name(catalog, p)),
        RelAlg::ProjectOp(attrs) => format!("project[{}]", attrs_name(catalog, attrs)),
        RelAlg::MergeJoin(p) => format!("merge_join[{}]", join_pred_name(catalog, p)),
        RelAlg::HybridHashJoin(p) => {
            format!("hybrid_hash_join[{}]", join_pred_name(catalog, p))
        }
        RelAlg::NestedLoops(p) => format!("nested_loops[{}]", join_pred_name(catalog, p)),
        RelAlg::MultiWayHashJoin { inner, outer } => format!(
            "multiway_hash_join[{}; {}]",
            join_pred_name(catalog, inner),
            join_pred_name(catalog, outer)
        ),
        RelAlg::Sort(attrs) => format!("sort[{}]", attrs_name(catalog, attrs)),
        RelAlg::Gather(n) => format!("gather({n})"),
        RelAlg::StreamAggregate(s) | RelAlg::HashAggregate(s) => format!(
            "{}[group by {}]",
            alg.name(),
            attrs_name(catalog, &s.group_by)
        ),
        RelAlg::PartialHashAggregate(s, n) => format!(
            "partial_hash_aggregate({n})[group by {}]",
            attrs_name(catalog, &s.group_by)
        ),
        RelAlg::FinalHashAggregate(s) => format!(
            "final_hash_aggregate[group by {}]",
            attrs_name(catalog, &s.group_by)
        ),
        other => other.name().to_string(),
    }
}

/// Render a physical plan as an indented tree with resolved names, costs,
/// and delivered orderings.
pub fn explain_plan(catalog: &Catalog, plan: &RelPlan) -> String {
    let mut out = String::new();
    render(catalog, plan, 0, &mut out);
    out
}

fn render(catalog: &Catalog, plan: &RelPlan, depth: usize, out: &mut String) {
    let order = if plan.delivered.sort.is_empty() {
        String::new()
    } else {
        format!("  [sorted: {}]", attrs_name(catalog, &plan.delivered.sort))
    };
    let _ = writeln!(
        out,
        "{:indent$}{}  (cost {}){}",
        "",
        alg_description(catalog, &plan.alg),
        plan.cost,
        order,
        indent = depth * 2
    );
    for i in &plan.inputs {
        render(catalog, i, depth + 1, out);
    }
}

/// Render a logical expression with resolved names.
pub fn explain_expr(catalog: &Catalog, expr: &RelExpr) -> String {
    fn go(catalog: &Catalog, e: &RelExpr, depth: usize, out: &mut String) {
        let label = match &e.op {
            RelOp::Get(t) => format!("get({})", catalog.table(*t).name),
            RelOp::Select(p) => format!("select[{}]", pred_name(catalog, p)),
            RelOp::Project(attrs) => format!("project[{}]", attrs_name(catalog, attrs)),
            RelOp::Join(p) => format!("join[{}]", join_pred_name(catalog, p)),
            RelOp::Union => "union".to_string(),
            RelOp::Intersect => "intersect".to_string(),
            RelOp::Difference => "difference".to_string(),
            RelOp::Aggregate(s) => {
                format!("aggregate[group by {}]", attrs_name(catalog, &s.group_by))
            }
            RelOp::PartialAggregate(s) => format!(
                "partial_aggregate[group by {}]",
                attrs_name(catalog, &s.group_by)
            ),
            RelOp::FinalAggregate(s) => format!(
                "final_aggregate[group by {}]",
                attrs_name(catalog, &s.group_by)
            ),
        };
        let _ = writeln!(out, "{:indent$}{label}", "", indent = depth * 2);
        for i in &e.inputs {
            go(catalog, i, depth + 1, out);
        }
    }
    let mut out = String::new();
    go(catalog, expr, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{join_on, select_one};
    use crate::{Catalog, Cmp, ColumnDef, QueryBuilder, RelModel, RelProps};
    use volcano_core::{PhysicalProps, SearchOptions};

    fn setup() -> (RelModel, RelPlan) {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            1_000.0,
            vec![ColumnDef::int("id", 1_000.0), ColumnDef::int("dept", 20.0)],
        );
        c.add_table("dept", 20.0, vec![ColumnDef::int("id", 20.0)]);
        let model = RelModel::with_defaults(c);
        let q = QueryBuilder::new(model.catalog());
        let expr = join_on(
            select_one(q.scan("emp"), Cmp::lt(q.attr("emp", "id"), 500i64)),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        );
        let mut opt = crate::RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
        (model, plan)
    }

    #[test]
    fn plan_explain_uses_names() {
        let (model, plan) = setup();
        let text = explain_plan(model.catalog(), &plan);
        assert!(text.contains("emp"), "{text}");
        assert!(text.contains("dept"), "{text}");
        assert!(
            !text.contains("a0 "),
            "raw attr ids should be resolved: {text}"
        );
        assert!(text.contains("cost"));
    }

    #[test]
    fn expr_explain_uses_names() {
        let mut c = Catalog::new();
        c.add_table("t", 10.0, vec![ColumnDef::int("x", 10.0)]);
        let q = QueryBuilder::new(&c);
        let e = select_one(q.scan("t"), Cmp::eq(q.attr("t", "x"), 1i64));
        let text = explain_expr(&c, &e);
        assert!(text.contains("select[t.x = 1]"), "{text}");
        assert!(text.contains("get(t)"), "{text}");
    }
}
