//! Per-node row estimates for *physical* plans.
//!
//! The memo attaches logical properties (including estimated cardinality)
//! to equivalence classes, but an extracted [`RelPlan`] carries only
//! algorithms and costs. `EXPLAIN ANALYZE` wants the optimizer's estimate
//! next to each operator's actual row count, so this module recomputes
//! the estimates bottom-up over the physical tree with the same
//! selectivity model the optimizer used — by construction the numbers
//! match what the search saw.

use std::sync::Arc;

use volcano_core::cost::Cost as _;

use crate::alg::RelAlg;
use crate::catalog::{Catalog, ColType};
use crate::cost::{formulas, RelCost};
use crate::ids::TableId;
use crate::model::RelModelOptions;
use crate::ops::{AggFunc, AggSpec};
use crate::predicate::JoinPred;
use crate::props::{ColInfo, RelLogical};
use crate::selectivity::{join_selectivity_with, pred_selectivity_with};
use crate::RelPlan;

fn table_logical(catalog: &Catalog, t: TableId) -> RelLogical {
    let table = catalog.table(t);
    RelLogical {
        card: table.card,
        cols: Arc::new(
            table
                .columns
                .iter()
                .map(|c| ColInfo {
                    attr: c.attr,
                    ty: c.ty,
                    width: c.width,
                    distinct: c.distinct,
                })
                .collect(),
        ),
    }
}

fn join(catalog: &Catalog, l: &RelLogical, r: &RelLogical, p: &JoinPred) -> RelLogical {
    let mut cols: Vec<ColInfo> = l.cols.as_ref().clone();
    cols.extend(r.cols.iter().copied());
    RelLogical {
        card: l.card * r.card * join_selectivity_with(p, l, r, catalog.feedback()),
        cols: Arc::new(cols),
    }
}

/// Estimated logical properties of a physical plan node, recomputed
/// bottom-up from the catalog with the optimizer's selectivity model.
pub fn estimated_logical(catalog: &Catalog, plan: &RelPlan) -> RelLogical {
    let inputs: Vec<RelLogical> = plan
        .inputs
        .iter()
        .map(|c| estimated_logical(catalog, c))
        .collect();
    logical_from_inputs(catalog, &plan.alg, &inputs)
}

fn logical_from_inputs(catalog: &Catalog, alg: &RelAlg, inputs: &[RelLogical]) -> RelLogical {
    match alg {
        RelAlg::FileScan(t) | RelAlg::IndexScan(t, _) => table_logical(catalog, *t),
        RelAlg::FilterScan(t, pred) => {
            let base = table_logical(catalog, *t);
            RelLogical {
                card: base.card * pred_selectivity_with(pred, &base, catalog.feedback()),
                cols: base.cols.clone(),
            }
        }
        RelAlg::Filter(pred) => {
            let input = &inputs[0];
            RelLogical {
                card: input.card * pred_selectivity_with(pred, input, catalog.feedback()),
                cols: input.cols.clone(),
            }
        }
        RelAlg::ProjectOp(attrs) => {
            let input = &inputs[0];
            RelLogical {
                card: input.card,
                cols: Arc::new(
                    attrs
                        .iter()
                        .map(|a| {
                            *input.col(*a).unwrap_or_else(|| {
                                panic!("projection references unknown attribute {a:?}")
                            })
                        })
                        .collect(),
                ),
            }
        }
        RelAlg::MergeJoin(p) | RelAlg::HybridHashJoin(p) | RelAlg::NestedLoops(p) => {
            join(catalog, &inputs[0], &inputs[1], p)
        }
        RelAlg::MultiWayHashJoin { inner, outer } => {
            let ab = join(catalog, &inputs[0], &inputs[1], inner);
            join(catalog, &ab, &inputs[2], outer)
        }
        RelAlg::MergeUnion | RelAlg::HashUnion => RelLogical {
            card: inputs[0].card + inputs[1].card,
            cols: inputs[0].cols.clone(),
        },
        RelAlg::MergeIntersect | RelAlg::HashIntersect => RelLogical {
            card: inputs[0].card.min(inputs[1].card) * 0.5,
            cols: inputs[0].cols.clone(),
        },
        RelAlg::MergeDifference | RelAlg::HashDifference => RelLogical {
            card: inputs[0].card * 0.5,
            cols: inputs[0].cols.clone(),
        },
        RelAlg::StreamAggregate(spec) | RelAlg::HashAggregate(spec) => {
            let input = &inputs[0];
            let groups = if spec.group_by.is_empty() {
                1.0
            } else {
                spec.group_by
                    .iter()
                    .map(|a| input.distinct(*a))
                    .product::<f64>()
                    .min(input.card)
                    .max(1.0)
            };
            let mut cols: Vec<ColInfo> = spec
                .group_by
                .iter()
                .map(|a| {
                    *input
                        .col(*a)
                        .unwrap_or_else(|| panic!("group-by references unknown attribute {a:?}"))
                })
                .collect();
            for (func, out) in &spec.aggs {
                let ty = match func {
                    AggFunc::CountStar => ColType::Int,
                    AggFunc::Avg(_) => ColType::Float,
                    AggFunc::Sum(a) | AggFunc::Min(a) | AggFunc::Max(a) => {
                        input.col(*a).map(|c| c.ty).unwrap_or(ColType::Int)
                    }
                };
                cols.push(ColInfo {
                    attr: *out,
                    ty,
                    width: 8,
                    distinct: groups,
                });
            }
            RelLogical {
                card: groups,
                cols: Arc::new(cols),
            }
        }
        RelAlg::PartialHashAggregate(spec, degree) => {
            // Mirrors the model's `PartialAggregate` derivation: up to
            // `degree` per-worker copies of each group, capped by the
            // input size. The degree rides on the algorithm so the
            // re-coster reproduces the search-time estimate without the
            // optimizer context.
            let input = &inputs[0];
            let d_groups = if spec.group_by.is_empty() {
                1.0
            } else {
                spec.group_by
                    .iter()
                    .map(|a| input.distinct(*a))
                    .product::<f64>()
            };
            let card = (d_groups * f64::from((*degree).max(1)))
                .min(input.card)
                .max(1.0);
            let mut cols: Vec<ColInfo> = spec
                .group_by
                .iter()
                .map(|a| {
                    *input
                        .col(*a)
                        .unwrap_or_else(|| panic!("group-by references unknown attribute {a:?}"))
                })
                .collect();
            for (func, out) in &spec.aggs {
                let ty = match func {
                    AggFunc::CountStar => ColType::Int,
                    AggFunc::Sum(a) | AggFunc::Min(a) | AggFunc::Max(a) | AggFunc::Avg(a) => {
                        input.col(*a).map(|c| c.ty).unwrap_or(ColType::Int)
                    }
                };
                cols.push(ColInfo {
                    attr: *out,
                    ty,
                    width: 8,
                    distinct: card,
                });
                if matches!(func, AggFunc::Avg(_)) {
                    cols.push(ColInfo {
                        attr: AggSpec::companion_attr(*out),
                        ty: ColType::Int,
                        width: 8,
                        distinct: card,
                    });
                }
            }
            RelLogical {
                card,
                cols: Arc::new(cols),
            }
        }
        RelAlg::FinalHashAggregate(spec) => {
            // The input carries the partial layout: aggregate
            // intermediates already sit at the output attribute ids.
            let input = &inputs[0];
            let groups = if spec.group_by.is_empty() {
                1.0
            } else {
                spec.group_by
                    .iter()
                    .map(|a| input.distinct(*a))
                    .product::<f64>()
                    .min(input.card)
                    .max(1.0)
            };
            let mut cols: Vec<ColInfo> = spec
                .group_by
                .iter()
                .map(|a| {
                    *input
                        .col(*a)
                        .unwrap_or_else(|| panic!("group-by references unknown attribute {a:?}"))
                })
                .collect();
            for (func, out) in &spec.aggs {
                let ty = match func {
                    AggFunc::CountStar => ColType::Int,
                    AggFunc::Avg(_) => ColType::Float,
                    AggFunc::Sum(_) | AggFunc::Min(_) | AggFunc::Max(_) => {
                        input.col(*out).map(|c| c.ty).unwrap_or(ColType::Int)
                    }
                };
                cols.push(ColInfo {
                    attr: *out,
                    ty,
                    width: 8,
                    distinct: groups,
                });
            }
            RelLogical {
                card: groups,
                cols: Arc::new(cols),
            }
        }
        // Enforcers manipulate no logical data: output = input.
        RelAlg::Sort(_) | RelAlg::Gather(_) => inputs[0].clone(),
    }
}

/// Estimated output rows of a physical plan node.
pub fn estimated_rows(catalog: &Catalog, plan: &RelPlan) -> f64 {
    estimated_logical(catalog, plan).card
}

/// Re-estimate the total cost of an already-extracted physical plan under
/// the *current* catalog statistics, applying the same per-algorithm
/// formulas the implementation rules used during search.
///
/// This is the plan cache's cost-drift guard: a cached template was
/// optimal under the statistics at optimization time, but after data
/// loads or stats refreshes its true cost may have drifted. Re-costing
/// the frozen tree is far cheaper than re-optimizing, and comparing the
/// result against the entry's recorded cost decides which to do.
pub fn estimated_plan_cost(
    catalog: &Catalog,
    options: &RelModelOptions,
    plan: &RelPlan,
) -> RelCost {
    plan_cost_rec(catalog, options, plan).1
}

fn plan_cost_rec(
    catalog: &Catalog,
    options: &RelModelOptions,
    plan: &RelPlan,
) -> (RelLogical, RelCost) {
    let children: Vec<(RelLogical, RelCost)> = plan
        .inputs
        .iter()
        .map(|c| plan_cost_rec(catalog, options, c))
        .collect();
    let inputs: Vec<RelLogical> = children.iter().map(|(l, _)| l.clone()).collect();
    let out = logical_from_inputs(catalog, &plan.alg, &inputs);
    let local = match &plan.alg {
        RelAlg::FileScan(_) => formulas::file_scan(&out),
        RelAlg::IndexScan(_, _) => formulas::index_scan(&out),
        RelAlg::FilterScan(t, pred) => {
            formulas::filter_scan(&table_logical(catalog, *t), pred.len())
        }
        RelAlg::Filter(pred) => formulas::filter(&inputs[0], pred.len()),
        RelAlg::ProjectOp(_) => formulas::project(&inputs[0]),
        RelAlg::MergeJoin(_) => formulas::merge_join(&inputs[0], &inputs[1], &out),
        RelAlg::HybridHashJoin(_) => formulas::hash_join_with_memory(
            &inputs[0],
            &inputs[1],
            &out,
            options.hash_join_memory_bytes,
        ),
        RelAlg::NestedLoops(p) => {
            formulas::nested_loops(&inputs[0], &inputs[1], &out, p.pairs().len())
        }
        RelAlg::MultiWayHashJoin { inner, .. } => {
            let mid = join(catalog, &inputs[0], &inputs[1], inner);
            formulas::multiway_hash_join(&inputs[0], &inputs[1], &inputs[2], &mid, &out)
        }
        RelAlg::MergeUnion | RelAlg::MergeIntersect | RelAlg::MergeDifference => {
            formulas::merge_set_op(&inputs[0], &inputs[1], &out)
        }
        RelAlg::HashUnion | RelAlg::HashIntersect | RelAlg::HashDifference => {
            formulas::hash_set_op(&inputs[0], &inputs[1], &out)
        }
        RelAlg::StreamAggregate(_) => formulas::stream_agg(&inputs[0], &out),
        RelAlg::HashAggregate(_) => formulas::hash_agg(&inputs[0], &out),
        RelAlg::PartialHashAggregate(_, _) => formulas::partial_hash_agg(&inputs[0], &out),
        RelAlg::FinalHashAggregate(_) => formulas::final_hash_agg(&inputs[0], &out),
        RelAlg::Sort(_) => formulas::sort(&inputs[0]),
        RelAlg::Gather(n) => formulas::gather(&inputs[0], *n),
    };
    // Mirror the implementation rules exactly: a node delivering parallel
    // degree n was costed at its per-worker share during search, so the
    // re-coster must apply the same scaling or the drift guard would see
    // phantom drift on every parallel plan.
    let local = formulas::parallelize(local, plan.delivered.parallel);
    let total = children.iter().fold(local, |acc, (_, c)| acc.add(c));
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{join_on, select_one};
    use crate::model::RelModel;
    use crate::predicate::Cmp;
    use crate::{ColumnDef, QueryBuilder, RelProps};
    use volcano_core::{Optimizer, PhysicalProps, SearchOptions};

    #[test]
    fn physical_estimates_match_logical_derivation() {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            1000.0,
            vec![ColumnDef::int("id", 1000.0), ColumnDef::int("dept", 20.0)],
        );
        c.add_table("dept", 20.0, vec![ColumnDef::int("id", 20.0)]);
        let model = RelModel::with_defaults(c.clone());
        let q = QueryBuilder::new(model.catalog());
        let expr = join_on(
            select_one(q.scan("emp"), Cmp::lt(q.attr("emp", "id"), 100i64)),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        );
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();

        // Root estimate: 1000 × 1/3 (range) × 20 × 1/20 (join) = 333.3…
        let est = estimated_rows(&c, &plan);
        assert!(
            (est - 1000.0 / 3.0).abs() < 1e-6,
            "unexpected root estimate {est}"
        );
        // Every node has a positive estimate.
        fn walk(catalog: &Catalog, p: &RelPlan) {
            assert!(estimated_rows(catalog, p) > 0.0);
            for c in &p.inputs {
                walk(catalog, c);
            }
        }
        walk(&c, &plan);
    }

    #[test]
    fn recosting_matches_search_under_unchanged_stats() {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            2000.0,
            vec![
                ColumnDef::int("id", 2000.0),
                ColumnDef::int("dept", 20.0),
                ColumnDef::int("salary", 100.0),
            ],
        );
        c.add_table("dept", 20.0, vec![ColumnDef::int("id", 20.0)]);
        let model = RelModel::with_defaults(c.clone());
        let q = QueryBuilder::new(model.catalog());
        let expr = join_on(
            select_one(q.scan("emp"), Cmp::lt(q.attr("emp", "salary"), 50i64)),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        );
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        for props in [RelProps::any(), RelProps::sorted(vec![q.attr("emp", "id")])] {
            let plan = opt.find_best_plan(root, props, None).unwrap();
            let re = estimated_plan_cost(&c, model.options(), &plan);
            assert!(
                (re.total() - plan.cost.total()).abs() < 1e-6,
                "re-cost {re:?} != search cost {:?} for plan\n{}",
                plan.cost,
                plan.explain()
            );
        }

        // After a stats change the re-cost must move in the same
        // direction as the data: 10x the rows, strictly costlier.
        let mut grown = c.clone();
        let emp = grown.table_by_name("emp").unwrap().id;
        grown.update_stats(emp, 20_000.0, &[None, None, None]);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
        let re = estimated_plan_cost(&grown, model.options(), &plan);
        assert!(re.total() > plan.cost.total() * 2.0, "{re:?}");
    }
}
