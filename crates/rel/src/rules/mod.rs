//! The relational rule set: transformation rules, implementation rules,
//! and enforcers.
//!
//! Rules "are translated independently from one another and are combined
//! only by the search engine when optimizing a query" (§2.1): each rule
//! here is a self-contained struct implementing one of the `volcano-core`
//! rule traits; [`crate::RelModel`] assembles the set according to its
//! options.

pub mod enforce;
pub mod implement;
pub mod transform;

pub use enforce::{GatherEnforcer, SortEnforcer};
pub use implement::*;
pub use transform::*;
