//! The sort and gather enforcers.
//!
//! "There are some operators in the physical algebra that do not
//! correspond to any operator in the logical algebra, for example
//! sorting ... The purpose of these operators is not to perform any
//! logical data manipulation but to enforce physical properties in their
//! outputs" (§2.2). The gather enforcer extends the same mechanism to the
//! parallel-degree property: it is the merge direction of the paper's
//! exchange operator, letting the optimizer — not the executor — decide
//! where a plan switches between parallel and serial execution.

use volcano_core::ids::GroupId;
use volcano_core::{Enforcer, EnforcerApplication, PhysicalProps, RuleCtx};

use crate::alg::RelAlg;
use crate::cost::{formulas, RelCost};
use crate::model::RelModel;
use crate::props::RelProps;

/// Enforces a required sort order by sorting its input.
///
/// The application relaxes the requirement to "no order" for the input
/// and passes the enforced order down as the *excluding* property vector,
/// so order-producing algorithms (merge join, nested loops delegating
/// order) are not considered redundantly below the sort (§3).
pub struct SortEnforcer;

impl Enforcer<RelModel> for SortEnforcer {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn applies(
        &self,
        required: &RelProps,
        _group: GroupId,
        _ctx: &RuleCtx<'_, RelModel>,
    ) -> Vec<EnforcerApplication<RelModel>> {
        if !required.is_sorted() {
            return vec![];
        }
        vec![EnforcerApplication {
            alg: RelAlg::Sort(required.sort.clone()),
            relaxed: RelProps::any(),
            excluded: required.clone(),
            delivers: required.clone(),
        }]
    }

    fn cost(
        &self,
        _app: &EnforcerApplication<RelModel>,
        group: GroupId,
        ctx: &RuleCtx<'_, RelModel>,
    ) -> RelCost {
        // "Sorting costs were calculated based on a single-level merge"
        // (§4.2): write sorted runs, read them back for one merge pass.
        formulas::sort(ctx.logical_props(group))
    }
}

/// Enforces a serial stream over a parallel subplan: requires its input
/// at parallel degree `n` and delivers degree 1 by merging the worker
/// streams (morsel-driven execution with a final gather).
///
/// The application *raises* the input requirement instead of relaxing it
/// — the enforcer mechanism is direction-agnostic, which is exactly why
/// parallelism fits it. The excluding vector is left at `any()` (i.e.
/// exclusion disabled below the gather): the algorithms competing under
/// the parallel goal deliver degree `n`, not degree 1, so they are not
/// redundant re-enforcements of what the gather provides.
pub struct GatherEnforcer {
    degree: u32,
}

impl GatherEnforcer {
    /// An enforcer offering parallel degree `n` (must be ≥ 2 to ever
    /// apply; degree-1 models simply omit the enforcer).
    pub fn new(degree: u32) -> Self {
        GatherEnforcer { degree }
    }
}

impl Enforcer<RelModel> for GatherEnforcer {
    fn name(&self) -> &'static str {
        "gather"
    }

    fn applies(
        &self,
        required: &RelProps,
        _group: GroupId,
        _ctx: &RuleCtx<'_, RelModel>,
    ) -> Vec<EnforcerApplication<RelModel>> {
        // Only an unsorted, serial requirement can be met by gathering:
        // the merge interleaves worker streams arbitrarily (no order),
        // and a parallel requirement needs splitting, not merging.
        if self.degree < 2 || required.is_sorted() || required.is_parallel() {
            return vec![];
        }
        vec![EnforcerApplication {
            alg: RelAlg::Gather(self.degree),
            relaxed: RelProps::parallel(self.degree),
            excluded: RelProps::any(),
            delivers: RelProps::any(),
        }]
    }

    fn cost(
        &self,
        app: &EnforcerApplication<RelModel>,
        group: GroupId,
        ctx: &RuleCtx<'_, RelModel>,
    ) -> RelCost {
        let degree = match &app.alg {
            RelAlg::Gather(n) => *n,
            _ => self.degree,
        };
        formulas::gather(ctx.logical_props(group), degree)
    }
}
