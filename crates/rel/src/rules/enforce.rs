//! The sort enforcer.
//!
//! "There are some operators in the physical algebra that do not
//! correspond to any operator in the logical algebra, for example
//! sorting ... The purpose of these operators is not to perform any
//! logical data manipulation but to enforce physical properties in their
//! outputs" (§2.2).

use volcano_core::ids::GroupId;
use volcano_core::{Enforcer, EnforcerApplication, PhysicalProps, RuleCtx};

use crate::alg::RelAlg;
use crate::cost::{formulas, RelCost};
use crate::model::RelModel;
use crate::props::RelProps;

/// Enforces a required sort order by sorting its input.
///
/// The application relaxes the requirement to "no order" for the input
/// and passes the enforced order down as the *excluding* property vector,
/// so order-producing algorithms (merge join, nested loops delegating
/// order) are not considered redundantly below the sort (§3).
pub struct SortEnforcer;

impl Enforcer<RelModel> for SortEnforcer {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn applies(
        &self,
        required: &RelProps,
        _group: GroupId,
        _ctx: &RuleCtx<'_, RelModel>,
    ) -> Vec<EnforcerApplication<RelModel>> {
        if !required.is_sorted() {
            return vec![];
        }
        vec![EnforcerApplication {
            alg: RelAlg::Sort(required.sort.clone()),
            relaxed: RelProps::any(),
            excluded: required.clone(),
            delivers: required.clone(),
        }]
    }

    fn cost(
        &self,
        _app: &EnforcerApplication<RelModel>,
        group: GroupId,
        ctx: &RuleCtx<'_, RelModel>,
    ) -> RelCost {
        // "Sorting costs were calculated based on a single-level merge"
        // (§4.2): write sorted runs, read them back for one merge pass.
        formulas::sort(ctx.logical_props(group))
    }
}
