//! Implementation rules: cost-based mapping of logical operators to
//! algorithms (§2.2).
//!
//! Each rule supplies the paper's per-algorithm *applicability function*
//! (can this algorithm deliver the required physical properties, and what
//! must its inputs satisfy?) and *cost function*. `FilterScanRule` is a
//! multi-operator rule (`Select(Get)` → one physical operator); the merge
//! join and merge set-operation rules demonstrate *alternative* input
//! property vectors (§3).

use volcano_core::{AlgApplication, Binding, ImplementationRule, Pattern, PhysicalProps, RuleCtx};

use crate::alg::RelAlg;
use crate::cost::{formulas, RelCost};
use crate::ids::AttrId;
use crate::model::RelModel;
use crate::ops::{rel_disc, RelOp};
use crate::props::{RelLogical, RelProps};

type App = AlgApplication<RelModel>;
type Ctx<'a> = RuleCtx<'a, RelModel>;
type Bind = Binding<RelModel>;

fn out_props<'a>(ctx: &Ctx<'a>, b: &Bind) -> &'a RelLogical {
    ctx.memo().logical_props(ctx.memo().group_of(b.expr))
}

fn input_props<'a>(ctx: &Ctx<'a>, b: &Bind, i: usize) -> &'a RelLogical {
    ctx.logical_props(b.input_group(i))
}

/// Generate the pair orderings a merge-based binary operator should try:
/// the declared order always, plus the order with the first two keys
/// swapped when the model asks for alternatives. This is the §3 facility
/// for binary operators where "the actual physical properties of the
/// inputs are not as important as the consistency of physical properties
/// among the inputs".
fn key_orders(nkeys: usize, variants: usize) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..nkeys).collect();
    let mut orders = vec![identity.clone()];
    if variants >= 2 && nkeys >= 2 {
        let mut swapped = identity;
        swapped.swap(0, 1);
        orders.push(swapped);
    }
    orders
}

fn permute(attrs: &[AttrId], order: &[usize]) -> Vec<AttrId> {
    order.iter().map(|&i| attrs[i]).collect()
}

// ---------------------------------------------------------------------
// Scans.
// ---------------------------------------------------------------------

/// `Get(t)` → `FileScan(t)`.
pub struct FileScanRule {
    pattern: Pattern<RelModel>,
}

impl FileScanRule {
    /// Construct the rule.
    pub fn new() -> Self {
        FileScanRule {
            pattern: Pattern::op_disc(
                "get",
                vec![rel_disc::GET],
                |op: &RelOp| matches!(op, RelOp::Get(_)),
                vec![],
            ),
        }
    }
}

impl Default for FileScanRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for FileScanRule {
    fn name(&self) -> &'static str {
        "get_to_file_scan"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        if required.is_sorted() {
            // A heap scan cannot deliver any ordering.
            return vec![];
        }
        let RelOp::Get(t) = &b.op else { unreachable!() };
        // A heap scan partitions naturally into page-range morsels, so it
        // delivers whatever parallel degree is required (`required` is
        // `any()` under a serial goal, `parallel(n)` below a gather).
        vec![App {
            alg: RelAlg::FileScan(*t),
            input_props: vec![],
            delivers: required.clone(),
        }]
    }

    fn cost(&self, app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::parallelize(
            formulas::file_scan(out_props(ctx, b)),
            app.delivers.parallel,
        )
    }
}

/// `Get(t)` → `IndexScan(t, attr)` for each indexed column: an access
/// path that delivers the sort order `[attr]` as a physical property, at
/// a modest cost premium over the heap scan. This is where *interesting
/// orders* enter the plan space without any enforcer.
pub struct IndexScanRule {
    pattern: Pattern<RelModel>,
    catalog: crate::Catalog,
}

impl IndexScanRule {
    /// Construct the rule over the model's catalog.
    pub fn new(catalog: crate::Catalog) -> Self {
        IndexScanRule {
            pattern: Pattern::op_disc(
                "get",
                vec![rel_disc::GET],
                |op: &RelOp| matches!(op, RelOp::Get(_)),
                vec![],
            ),
            catalog,
        }
    }
}

impl ImplementationRule<RelModel> for IndexScanRule {
    fn name(&self) -> &'static str {
        "get_to_index_scan"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        let RelOp::Get(t) = &b.op else { unreachable!() };
        self.catalog
            .table(*t)
            .columns
            .iter()
            .filter(|c| c.indexed)
            .filter_map(|c| {
                let delivers = RelProps::sorted(vec![c.attr]);
                if !delivers.satisfies(required) {
                    return None;
                }
                Some(App {
                    alg: RelAlg::IndexScan(*t, c.attr),
                    input_props: vec![],
                    delivers,
                })
            })
            .collect()
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::index_scan(out_props(ctx, b))
    }
}

/// `Select(Get(t))` → `FilterScan(t, pred)`: a multi-operator
/// implementation rule mapping two logical operators onto one physical
/// operator.
pub struct FilterScanRule {
    pattern: Pattern<RelModel>,
}

impl FilterScanRule {
    /// Construct the rule.
    pub fn new() -> Self {
        FilterScanRule {
            pattern: Pattern::op_disc(
                "select",
                vec![rel_disc::SELECT],
                |op: &RelOp| matches!(op, RelOp::Select(_)),
                vec![Pattern::op_disc(
                    "get",
                    vec![rel_disc::GET],
                    |op: &RelOp| matches!(op, RelOp::Get(_)),
                    vec![],
                )],
            ),
        }
    }
}

impl Default for FilterScanRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for FilterScanRule {
    fn name(&self) -> &'static str {
        "select_get_to_filter_scan"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        if required.is_sorted() {
            return vec![];
        }
        let RelOp::Select(p) = &b.op else {
            unreachable!()
        };
        let RelOp::Get(t) = &b.nested(0).op else {
            unreachable!()
        };
        // Like the plain heap scan, a fused filter-scan splits into
        // page-range morsels and can deliver any required parallel degree.
        vec![App {
            alg: RelAlg::FilterScan(*t, p.clone()),
            input_props: vec![],
            delivers: required.clone(),
        }]
    }

    fn cost(&self, app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        let RelOp::Select(p) = &b.op else {
            unreachable!()
        };
        let table = ctx
            .memo()
            .logical_props(ctx.memo().group_of(b.nested(0).expr));
        // One pass over the stored table, evaluating the predicate on the
        // fly: the whole point of fusing the two logical operators.
        formulas::parallelize(formulas::filter_scan(table, p.len()), app.delivers.parallel)
    }
}

// ---------------------------------------------------------------------
// Filters and projections.
// ---------------------------------------------------------------------

/// `Select(X)` → `Filter`; order-preserving.
pub struct FilterRule {
    pattern: Pattern<RelModel>,
}

impl FilterRule {
    /// Construct the rule.
    pub fn new() -> Self {
        FilterRule {
            pattern: Pattern::op_disc(
                "select",
                vec![rel_disc::SELECT],
                |op: &RelOp| matches!(op, RelOp::Select(_)),
                vec![Pattern::Any],
            ),
        }
    }
}

impl Default for FilterRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for FilterRule {
    fn name(&self) -> &'static str {
        "select_to_filter"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        let RelOp::Select(p) = &b.op else {
            unreachable!()
        };
        // Filter passes tuples through unchanged: it can deliver any
        // ordering (or parallel degree) by demanding the same of its
        // input.
        vec![App {
            alg: RelAlg::Filter(p.clone()),
            input_props: vec![required.clone()],
            delivers: required.clone(),
        }]
    }

    fn cost(&self, app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        let RelOp::Select(p) = &b.op else {
            unreachable!()
        };
        formulas::parallelize(
            formulas::filter(input_props(ctx, b, 0), p.len()),
            app.delivers.parallel,
        )
    }
}

/// `Project(X)` → `ProjectOp`; order-preserving for orders over the
/// retained attributes.
pub struct ProjectRule {
    pattern: Pattern<RelModel>,
}

impl ProjectRule {
    /// Construct the rule.
    pub fn new() -> Self {
        ProjectRule {
            pattern: Pattern::op_disc(
                "project",
                vec![rel_disc::PROJECT],
                |op: &RelOp| matches!(op, RelOp::Project(_)),
                vec![Pattern::Any],
            ),
        }
    }
}

impl Default for ProjectRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for ProjectRule {
    fn name(&self) -> &'static str {
        "project_to_project"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        let RelOp::Project(attrs) = &b.op else {
            unreachable!()
        };
        // An ordering can survive projection only if its attributes are
        // retained.
        if !required.sort.iter().all(|a| attrs.contains(a)) {
            return vec![];
        }
        vec![App {
            alg: RelAlg::ProjectOp(attrs.clone()),
            input_props: vec![required.clone()],
            delivers: required.clone(),
        }]
    }

    fn cost(&self, app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::parallelize(
            formulas::project(input_props(ctx, b, 0)),
            app.delivers.parallel,
        )
    }
}

// ---------------------------------------------------------------------
// Joins.
// ---------------------------------------------------------------------

/// `Join(A, B)` → `MergeJoin`; requires consistently sorted inputs,
/// delivers the left key order.
pub struct MergeJoinRule {
    pattern: Pattern<RelModel>,
    variants: usize,
}

impl MergeJoinRule {
    /// Construct the rule; `variants >= 2` also offers the key order with
    /// the first two join attributes swapped.
    pub fn new(variants: usize) -> Self {
        MergeJoinRule {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                |op: &RelOp| matches!(op, RelOp::Join(_)),
                vec![Pattern::Any, Pattern::Any],
            ),
            variants,
        }
    }
}

impl ImplementationRule<RelModel> for MergeJoinRule {
    fn name(&self) -> &'static str {
        "join_to_merge_join"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        let RelOp::Join(p) = &b.op else {
            unreachable!()
        };
        if p.is_cross() {
            return vec![];
        }
        let left = p.left_attrs();
        let right = p.right_attrs();
        let mut apps = Vec::new();
        for order in key_orders(p.pairs().len(), self.variants) {
            // The output is sorted on the left keys AND, because the keys
            // are pairwise equal, equivalently on the right keys: declare
            // both, so an order requirement phrased in terms of either
            // side's attributes is satisfied (attribute equivalence, the
            // classic interesting-orders subtlety).
            for delivers in [
                RelProps::sorted(permute(&left, &order)),
                RelProps::sorted(permute(&right, &order)),
            ] {
                if !delivers.satisfies(required) {
                    continue;
                }
                apps.push(App {
                    alg: RelAlg::MergeJoin(p.clone()),
                    input_props: vec![
                        RelProps::sorted(permute(&left, &order)),
                        RelProps::sorted(permute(&right, &order)),
                    ],
                    delivers,
                });
                // One application per key order suffices when both
                // deliveries satisfy the requirement (they share inputs
                // and cost).
                break;
            }
        }
        apps
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::merge_join(
            input_props(ctx, b, 0),
            input_props(ctx, b, 1),
            out_props(ctx, b),
        )
    }
}

/// `Join(A, B)` → `HybridHashJoin`; unordered output, builds on the left.
/// The cost is a function of the memory made available at optimizer
/// generation time (§4.1's memory-dependent cost ADT).
pub struct HashJoinRule {
    pattern: Pattern<RelModel>,
    memory_bytes: f64,
}

impl HashJoinRule {
    /// Construct the rule with the memory available per hash join.
    pub fn new(memory_bytes: f64) -> Self {
        HashJoinRule {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                |op: &RelOp| matches!(op, RelOp::Join(_)),
                vec![Pattern::Any, Pattern::Any],
            ),
            memory_bytes,
        }
    }
}

impl Default for HashJoinRule {
    fn default() -> Self {
        Self::new(f64::INFINITY)
    }
}

impl ImplementationRule<RelModel> for HashJoinRule {
    fn name(&self) -> &'static str {
        "join_to_hybrid_hash_join"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        let RelOp::Join(p) = &b.op else {
            unreachable!()
        };
        if p.is_cross() || required.is_sorted() {
            // "When optimizing a join expression whose result should be
            // sorted on the join attribute, hybrid hash join does not
            // qualify" (§2.2).
            return vec![];
        }
        // Under a parallel requirement this is the *partitioned* parallel
        // hash join: both inputs are demanded at the same degree — the
        // build side is consumed by n workers partitioning into a shared
        // read-only table, then n workers probe their own morsels.
        // `required` is `any()` under a serial goal, so the serial
        // application is unchanged.
        vec![App {
            alg: RelAlg::HybridHashJoin(p.clone()),
            input_props: vec![required.clone(), required.clone()],
            delivers: required.clone(),
        }]
    }

    fn cost(&self, app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        // With infinite memory: in-memory build + probe, no partition
        // files (§4.2). With finite memory the overflow spills.
        formulas::parallelize(
            formulas::hash_join_with_memory(
                input_props(ctx, b, 0),
                input_props(ctx, b, 1),
                out_props(ctx, b),
                self.memory_bytes,
            ),
            app.delivers.parallel,
        )
    }
}

/// `Join(Join(A, B), C)` → a single `MultiWayHashJoin`: the paper's §6
/// extensibility claim, made concrete — adding "a new, non-trivial
/// algorithm such as a multi-way join" is exactly one multi-operator
/// implementation rule; no other part of the optimizer changes.
///
/// The condition code restricts the rule to the cascade shape the
/// operator implements efficiently: the outer predicate's left attributes
/// must all come from `B`, so the probe cascades c → B-table → A-table.
pub struct MultiWayJoinRule {
    pattern: Pattern<RelModel>,
}

impl MultiWayJoinRule {
    /// Construct the rule.
    pub fn new() -> Self {
        let is_join = |op: &RelOp| matches!(op, RelOp::Join(_));
        MultiWayJoinRule {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                is_join,
                vec![
                    Pattern::op_disc(
                        "join",
                        vec![rel_disc::JOIN],
                        is_join,
                        vec![Pattern::Any, Pattern::Any],
                    ),
                    Pattern::Any,
                ],
            ),
        }
    }
}

impl Default for MultiWayJoinRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for MultiWayJoinRule {
    fn name(&self) -> &'static str {
        "join_join_to_multiway_hash_join"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn condition(&self, b: &Bind, ctx: &Ctx<'_>) -> bool {
        let RelOp::Join(outer) = &b.op else {
            return false;
        };
        let RelOp::Join(inner) = &b.nested(0).op else {
            return false;
        };
        if inner.is_cross() || outer.is_cross() {
            return false;
        }
        // Probe cascade: every outer-left attribute must live in B.
        let b_props = ctx.logical_props(b.nested(0).input_group(1));
        outer.left_attrs().iter().all(|&a| b_props.has_attr(a))
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        // The three-way probe cascade has no morsel-parallel execution
        // path, so it competes only for serial, unsorted goals.
        if required.is_sorted() || required.is_parallel() {
            return vec![];
        }
        let RelOp::Join(outer) = &b.op else {
            unreachable!()
        };
        let RelOp::Join(inner) = &b.nested(0).op else {
            unreachable!()
        };
        vec![App {
            alg: RelAlg::MultiWayHashJoin {
                inner: inner.clone(),
                outer: outer.clone(),
            },
            input_props: vec![RelProps::any(), RelProps::any(), RelProps::any()],
            delivers: RelProps::any(),
        }]
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        let inner_binding = b.nested(0);
        let a = ctx.logical_props(inner_binding.input_group(0));
        let bb = ctx.logical_props(inner_binding.input_group(1));
        let c = ctx.logical_props(b.input_group(1));
        let mid = ctx
            .memo()
            .logical_props(ctx.memo().group_of(inner_binding.expr));
        formulas::multiway_hash_join(a, bb, c, mid, out_props(ctx, b))
    }
}

/// `Join(A, B)` → `NestedLoops`; handles any predicate (including
/// Cartesian products) and preserves the outer order.
pub struct NestedLoopsRule {
    pattern: Pattern<RelModel>,
}

impl NestedLoopsRule {
    /// Construct the rule.
    pub fn new() -> Self {
        NestedLoopsRule {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                |op: &RelOp| matches!(op, RelOp::Join(_)),
                vec![Pattern::Any, Pattern::Any],
            ),
        }
    }
}

impl Default for NestedLoopsRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for NestedLoopsRule {
    fn name(&self) -> &'static str {
        "join_to_nested_loops"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, ctx: &Ctx<'_>) -> Vec<App> {
        // A tuple-at-a-time operator with no morsel-parallel execution
        // path: it cannot deliver a parallel degree.
        if required.is_parallel() {
            return vec![];
        }
        // Nested loops preserve the outer order, so a sort requirement can
        // be delegated to the left input — but only if those attributes
        // exist on the left.
        let lprops = ctx.logical_props(b.input_group(0));
        if !required.sort.iter().all(|&a| lprops.has_attr(a)) {
            return vec![];
        }
        let RelOp::Join(p) = &b.op else {
            unreachable!()
        };
        vec![App {
            alg: RelAlg::NestedLoops(p.clone()),
            input_props: vec![required.clone(), RelProps::any()],
            delivers: required.clone(),
        }]
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        let RelOp::Join(p) = &b.op else {
            unreachable!()
        };
        formulas::nested_loops(
            input_props(ctx, b, 0),
            input_props(ctx, b, 1),
            out_props(ctx, b),
            p.pairs().len(),
        )
    }
}

// ---------------------------------------------------------------------
// Set operations.
// ---------------------------------------------------------------------

/// Which logical set operation a set-operation rule implements.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// `UNION`.
    Union,
    /// `INTERSECT`.
    Intersect,
    /// `EXCEPT`.
    Difference,
}

impl SetOpKind {
    fn matches(self, op: &RelOp) -> bool {
        matches!(
            (self, op),
            (SetOpKind::Union, RelOp::Union)
                | (SetOpKind::Intersect, RelOp::Intersect)
                | (SetOpKind::Difference, RelOp::Difference)
        )
    }

    fn discriminant(self) -> usize {
        match self {
            SetOpKind::Union => rel_disc::UNION,
            SetOpKind::Intersect => rel_disc::INTERSECT,
            SetOpKind::Difference => rel_disc::DIFFERENCE,
        }
    }

    fn merge_alg(self) -> RelAlg {
        match self {
            SetOpKind::Union => RelAlg::MergeUnion,
            SetOpKind::Intersect => RelAlg::MergeIntersect,
            SetOpKind::Difference => RelAlg::MergeDifference,
        }
    }

    fn hash_alg(self) -> RelAlg {
        match self {
            SetOpKind::Union => RelAlg::HashUnion,
            SetOpKind::Intersect => RelAlg::HashIntersect,
            SetOpKind::Difference => RelAlg::HashDifference,
        }
    }
}

/// Merge-based implementation of a set operation: "for a sort-based
/// implementation of intersection ... any sort order of the two inputs
/// will suffice as long as the two inputs are sorted in the same way"
/// (§3). The applicability function offers the identity column order and,
/// when the model asks for alternatives, the order with the first two
/// columns swapped — both inputs always consistently.
pub struct MergeSetOpRule {
    pattern: Pattern<RelModel>,
    kind: SetOpKind,
    variants: usize,
    name: &'static str,
}

impl MergeSetOpRule {
    /// Construct the rule for one set operation.
    pub fn new(kind: SetOpKind, variants: usize) -> Self {
        let (name, pname): (&'static str, &'static str) = match kind {
            SetOpKind::Union => ("union_to_merge_union", "union"),
            SetOpKind::Intersect => ("intersect_to_merge_intersect", "intersect"),
            SetOpKind::Difference => ("difference_to_merge_difference", "difference"),
        };
        MergeSetOpRule {
            pattern: Pattern::op_disc(
                pname,
                vec![kind.discriminant()],
                move |op: &RelOp| kind.matches(op),
                vec![Pattern::Any, Pattern::Any],
            ),
            kind,
            variants,
            name,
        }
    }
}

impl ImplementationRule<RelModel> for MergeSetOpRule {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, ctx: &Ctx<'_>) -> Vec<App> {
        let lcols: Vec<AttrId> = ctx
            .logical_props(b.input_group(0))
            .cols
            .iter()
            .map(|c| c.attr)
            .collect();
        let rcols: Vec<AttrId> = ctx
            .logical_props(b.input_group(1))
            .cols
            .iter()
            .map(|c| c.attr)
            .collect();
        if lcols.is_empty() || lcols.len() != rcols.len() {
            return vec![];
        }
        let mut apps = Vec::new();
        for order in key_orders(lcols.len(), self.variants) {
            let delivers = RelProps::sorted(permute(&lcols, &order));
            if !delivers.satisfies(required) {
                continue;
            }
            apps.push(App {
                alg: self.kind.merge_alg(),
                input_props: vec![
                    RelProps::sorted(permute(&lcols, &order)),
                    RelProps::sorted(permute(&rcols, &order)),
                ],
                delivers,
            });
        }
        apps
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::merge_set_op(
            input_props(ctx, b, 0),
            input_props(ctx, b, 1),
            out_props(ctx, b),
        )
    }
}

/// Hash-based implementation of a set operation; unordered output.
pub struct HashSetOpRule {
    pattern: Pattern<RelModel>,
    kind: SetOpKind,
    name: &'static str,
}

impl HashSetOpRule {
    /// Construct the rule for one set operation.
    pub fn new(kind: SetOpKind) -> Self {
        let (name, pname): (&'static str, &'static str) = match kind {
            SetOpKind::Union => ("union_to_hash_union", "union"),
            SetOpKind::Intersect => ("intersect_to_hash_intersect", "intersect"),
            SetOpKind::Difference => ("difference_to_hash_difference", "difference"),
        };
        HashSetOpRule {
            pattern: Pattern::op_disc(
                pname,
                vec![kind.discriminant()],
                move |op: &RelOp| kind.matches(op),
                vec![Pattern::Any, Pattern::Any],
            ),
            kind,
            name,
        }
    }
}

impl ImplementationRule<RelModel> for HashSetOpRule {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, _b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        // Set operations execute serially (no morsel-parallel path).
        if required.is_sorted() || required.is_parallel() {
            return vec![];
        }
        vec![App {
            alg: self.kind.hash_alg(),
            input_props: vec![RelProps::any(), RelProps::any()],
            delivers: RelProps::any(),
        }]
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::hash_set_op(
            input_props(ctx, b, 0),
            input_props(ctx, b, 1),
            out_props(ctx, b),
        )
    }
}

// ---------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------

/// `Aggregate` → `StreamAggregate`; requires input sorted on the grouping
/// attributes, delivers that order.
pub struct StreamAggRule {
    pattern: Pattern<RelModel>,
}

impl StreamAggRule {
    /// Construct the rule.
    pub fn new() -> Self {
        StreamAggRule {
            pattern: Pattern::op_disc(
                "aggregate",
                vec![rel_disc::AGGREGATE],
                |op: &RelOp| matches!(op, RelOp::Aggregate(_)),
                vec![Pattern::Any],
            ),
        }
    }
}

impl Default for StreamAggRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for StreamAggRule {
    fn name(&self) -> &'static str {
        "aggregate_to_stream_aggregate"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        let RelOp::Aggregate(spec) = &b.op else {
            unreachable!()
        };
        let delivers = RelProps::sorted(spec.group_by.clone());
        if !delivers.satisfies(required) {
            return vec![];
        }
        vec![App {
            alg: RelAlg::StreamAggregate(spec.clone()),
            input_props: vec![RelProps::sorted(spec.group_by.clone())],
            delivers,
        }]
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::stream_agg(input_props(ctx, b, 0), out_props(ctx, b))
    }
}

/// `Aggregate` → `HashAggregate`; unordered input and output.
pub struct HashAggRule {
    pattern: Pattern<RelModel>,
}

impl HashAggRule {
    /// Construct the rule.
    pub fn new() -> Self {
        HashAggRule {
            pattern: Pattern::op_disc(
                "aggregate",
                vec![rel_disc::AGGREGATE],
                |op: &RelOp| matches!(op, RelOp::Aggregate(_)),
                vec![Pattern::Any],
            ),
        }
    }
}

impl Default for HashAggRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for HashAggRule {
    fn name(&self) -> &'static str {
        "aggregate_to_hash_aggregate"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        // The single-phase hash aggregate is a serial pipeline breaker;
        // parallel goals are served by the partial/final split instead.
        if required.is_sorted() || required.is_parallel() {
            return vec![];
        }
        let RelOp::Aggregate(spec) = &b.op else {
            unreachable!()
        };
        vec![App {
            alg: RelAlg::HashAggregate(spec.clone()),
            input_props: vec![RelProps::any()],
            delivers: RelProps::any(),
        }]
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::hash_agg(input_props(ctx, b, 0), out_props(ctx, b))
    }
}

/// `PartialAggregate` → `PartialHashAggregate`: per-worker local
/// grouping. The only implementation of the partial class, and it
/// *demands* a parallel input at the model's degree — under a serial
/// requirement it does not qualify, so the only way a partial aggregate
/// reaches a serial consumer is through the gather enforcer, which is
/// exactly the `Final ← Gather(n) ← Partial ← parallel subtree` shape
/// two-phase aggregation wants.
pub struct PartialHashAggRule {
    pattern: Pattern<RelModel>,
    degree: u32,
}

impl PartialHashAggRule {
    /// Construct the rule for a model with `degree` workers.
    pub fn new(degree: u32) -> Self {
        PartialHashAggRule {
            pattern: Pattern::op_disc(
                "partial_aggregate",
                vec![rel_disc::PARTIAL_AGGREGATE],
                |op: &RelOp| matches!(op, RelOp::PartialAggregate(_)),
                vec![Pattern::Any],
            ),
            degree,
        }
    }
}

impl ImplementationRule<RelModel> for PartialHashAggRule {
    fn name(&self) -> &'static str {
        "partial_aggregate_to_partial_hash_aggregate"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        let delivers = RelProps::parallel(self.degree);
        if !delivers.satisfies(required) {
            return vec![];
        }
        let RelOp::PartialAggregate(spec) = &b.op else {
            unreachable!()
        };
        vec![App {
            alg: RelAlg::PartialHashAggregate(spec.clone(), self.degree),
            input_props: vec![RelProps::parallel(self.degree)],
            delivers,
        }]
    }

    fn cost(&self, app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::parallelize(
            formulas::partial_hash_agg(input_props(ctx, b, 0), out_props(ctx, b)),
            app.delivers.parallel,
        )
    }
}

/// `FinalAggregate` → `FinalHashAggregate`: serial merge of partial
/// summaries, above the gather.
pub struct FinalHashAggRule {
    pattern: Pattern<RelModel>,
}

impl FinalHashAggRule {
    /// Construct the rule.
    pub fn new() -> Self {
        FinalHashAggRule {
            pattern: Pattern::op_disc(
                "final_aggregate",
                vec![rel_disc::FINAL_AGGREGATE],
                |op: &RelOp| matches!(op, RelOp::FinalAggregate(_)),
                vec![Pattern::Any],
            ),
        }
    }
}

impl Default for FinalHashAggRule {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationRule<RelModel> for FinalHashAggRule {
    fn name(&self) -> &'static str {
        "final_aggregate_to_final_hash_aggregate"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn applies(&self, b: &Bind, required: &RelProps, _ctx: &Ctx<'_>) -> Vec<App> {
        if required.is_sorted() || required.is_parallel() {
            return vec![];
        }
        let RelOp::FinalAggregate(spec) = &b.op else {
            unreachable!()
        };
        vec![App {
            alg: RelAlg::FinalHashAggregate(spec.clone()),
            input_props: vec![RelProps::any()],
            delivers: RelProps::any(),
        }]
    }

    fn cost(&self, _app: &App, b: &Bind, ctx: &Ctx<'_>) -> RelCost {
        formulas::final_hash_agg(input_props(ctx, b, 0), out_props(ctx, b))
    }
}
