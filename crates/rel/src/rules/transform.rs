//! Transformation rules: algebraic equivalences within the logical
//! algebra (§2.2).
//!
//! The join rules are the classic pair that spans the whole join-order
//! space (including bushy trees, as in the paper's experiments);
//! associativity does the careful predicate re-routing that makes the
//! rewrite correct for conjunctive equi-join predicates. The selection
//! rules push and merge predicates; the set-operation rules mirror the
//! join rules, since "optimizing the union or intersection of N sets is
//! very similar to optimizing a join of N relations" (§5).

use volcano_core::{Binding, Pattern, RuleCtx, SubstExpr, TransformationRule};

use crate::model::RelModel;
use crate::ops::{rel_disc, RelOp};
use crate::predicate::Pred;

type Subst = SubstExpr<RelModel>;

fn is_join(op: &RelOp) -> bool {
    matches!(op, RelOp::Join(_))
}

fn is_select(op: &RelOp) -> bool {
    matches!(op, RelOp::Select(_))
}

/// `A ⋈_p B  →  B ⋈_p' A` with the predicate's sides swapped.
pub struct JoinCommute {
    pattern: Pattern<RelModel>,
}

impl JoinCommute {
    /// Construct the rule.
    pub fn new() -> Self {
        JoinCommute {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                is_join,
                vec![Pattern::Any, Pattern::Any],
            ),
        }
    }
}

impl Default for JoinCommute {
    fn default() -> Self {
        Self::new()
    }
}

impl TransformationRule<RelModel> for JoinCommute {
    fn name(&self) -> &'static str {
        "join_commute"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, _ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let RelOp::Join(p) = &b.op else {
            unreachable!()
        };
        vec![Subst::node(
            RelOp::Join(p.flipped()),
            vec![
                Subst::group(b.input_group(1)),
                Subst::group(b.input_group(0)),
            ],
        )]
    }
}

/// `(A ⋈_p1 B) ⋈_p2 C  →  A ⋈_q2 (B ⋈_q1 C)`.
///
/// The outer predicate `p2` relates `A ∪ B` to `C`; its pairs whose left
/// endpoint lies in `B` become the new inner predicate `q1`, the rest
/// join `A` to the new composite, together with the old inner predicate
/// `p1` (whose right endpoints lie in `B ⊆ B ⋈ C`). The condition code
/// rejects rewrites that would introduce Cartesian products unless the
/// model allows them.
pub struct JoinAssoc {
    pattern: Pattern<RelModel>,
    allow_cross: bool,
}

impl JoinAssoc {
    /// Construct the rule; `allow_cross` admits rewrites that create
    /// Cartesian products.
    pub fn new(allow_cross: bool) -> Self {
        JoinAssoc {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                is_join,
                vec![
                    Pattern::op_disc(
                        "join",
                        vec![rel_disc::JOIN],
                        is_join,
                        vec![Pattern::Any, Pattern::Any],
                    ),
                    Pattern::Any,
                ],
            ),
            allow_cross,
        }
    }
}

impl TransformationRule<RelModel> for JoinAssoc {
    fn name(&self) -> &'static str {
        "join_assoc"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let RelOp::Join(p2) = &b.op else {
            unreachable!()
        };
        let inner = b.nested(0);
        let RelOp::Join(p1) = &inner.op else {
            unreachable!()
        };
        let a = inner.input_group(0);
        let bb = inner.input_group(1);
        let c = b.input_group(1);

        let b_props = ctx.logical_props(bb);
        // Pairs of p2 whose left endpoint lives in B join B to C; the
        // rest join A to C.
        let (to_inner, to_outer) = p2.partition(|l, _| b_props.has_attr(l));
        let q1 = to_inner;
        let q2 = p1.and(&to_outer);

        if !self.allow_cross && (q1.is_cross() || q2.is_cross()) {
            return vec![];
        }

        vec![Subst::node(
            RelOp::Join(q2),
            vec![
                Subst::group(a),
                Subst::node(RelOp::Join(q1), vec![Subst::group(bb), Subst::group(c)]),
            ],
        )]
    }
}

/// `(A ⋈_p1 B) ⋈_p2 C  →  (A ⋈_q1 C) ⋈_q2 B`: the *left-join exchange*
/// rule. Together with commutativity restricted to the bottom-most join,
/// it enumerates exactly the left-deep join orders — the Volcano way of
/// expressing Starburst's "restrict the search space to left-deep trees
/// (no composite inner)" parameter (§5): a different rule set, not a
/// different search engine.
pub struct JoinLeftExchange {
    pattern: Pattern<RelModel>,
    allow_cross: bool,
}

impl JoinLeftExchange {
    /// Construct the rule; `allow_cross` admits exchanges that create
    /// Cartesian products.
    pub fn new(allow_cross: bool) -> Self {
        JoinLeftExchange {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                is_join,
                vec![
                    Pattern::op_disc(
                        "join",
                        vec![rel_disc::JOIN],
                        is_join,
                        vec![Pattern::Any, Pattern::Any],
                    ),
                    Pattern::Any,
                ],
            ),
            allow_cross,
        }
    }
}

impl TransformationRule<RelModel> for JoinLeftExchange {
    fn name(&self) -> &'static str {
        "join_left_exchange"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let RelOp::Join(p2) = &b.op else {
            unreachable!()
        };
        let inner = b.nested(0);
        let RelOp::Join(p1) = &inner.op else {
            unreachable!()
        };
        let a = inner.input_group(0);
        let bb = inner.input_group(1);
        let c = b.input_group(1);

        // p2 relates A ∪ B to C: pairs rooted in A move into the new
        // inner join (A ⋈ C); pairs rooted in B flip sides and join the
        // new composite to B.
        let a_props = ctx.logical_props(a);
        let (q1, from_b) = p2.partition(|l, _| a_props.has_attr(l));
        let q2 = p1.and(&from_b.flipped());

        if !self.allow_cross && (q1.is_cross() || q2.is_cross()) {
            return vec![];
        }

        vec![Subst::node(
            RelOp::Join(q2),
            vec![
                Subst::node(RelOp::Join(q1), vec![Subst::group(a), Subst::group(c)]),
                Subst::group(bb),
            ],
        )]
    }
}

/// Join commutativity restricted to joins whose inputs are both
/// join-free (the bottom of a left-deep tree): the companion of
/// [`JoinLeftExchange`] for left-deep-only enumeration.
pub struct BottomJoinCommute {
    pattern: Pattern<RelModel>,
}

impl BottomJoinCommute {
    /// Construct the rule.
    pub fn new() -> Self {
        BottomJoinCommute {
            pattern: Pattern::op_disc(
                "join",
                vec![rel_disc::JOIN],
                is_join,
                vec![Pattern::Any, Pattern::Any],
            ),
        }
    }
}

impl Default for BottomJoinCommute {
    fn default() -> Self {
        Self::new()
    }
}

impl TransformationRule<RelModel> for BottomJoinCommute {
    fn name(&self) -> &'static str {
        "bottom_join_commute"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn condition(&self, b: &Binding<RelModel>, ctx: &RuleCtx<'_, RelModel>) -> bool {
        // Both inputs must be join-free classes, or commuting would put a
        // composite on the right.
        let memo = ctx.memo();
        [b.input_group(0), b.input_group(1)].iter().all(|&g| {
            memo.group_exprs(g)
                .all(|e| !matches!(memo.expr(e).0, RelOp::Join(_)))
        })
    }

    fn apply(&self, b: &Binding<RelModel>, _ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let RelOp::Join(p) = &b.op else {
            unreachable!()
        };
        vec![Subst::node(
            RelOp::Join(p.flipped()),
            vec![
                Subst::group(b.input_group(1)),
                Subst::group(b.input_group(0)),
            ],
        )]
    }
}

/// `σ_p(A ⋈ B)  →  σ_rest(σ_pa(A) ⋈ σ_pb(B))`: push every conjunct that
/// mentions only one side down to that side.
pub struct SelectPushdown {
    pattern: Pattern<RelModel>,
}

impl SelectPushdown {
    /// Construct the rule.
    pub fn new() -> Self {
        SelectPushdown {
            pattern: Pattern::op_disc(
                "select",
                vec![rel_disc::SELECT],
                is_select,
                vec![Pattern::op_disc(
                    "join",
                    vec![rel_disc::JOIN],
                    is_join,
                    vec![Pattern::Any, Pattern::Any],
                )],
            ),
        }
    }
}

impl Default for SelectPushdown {
    fn default() -> Self {
        Self::new()
    }
}

impl TransformationRule<RelModel> for SelectPushdown {
    fn name(&self) -> &'static str {
        "select_pushdown"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let RelOp::Select(p) = &b.op else {
            unreachable!()
        };
        let join = b.nested(0);
        let RelOp::Join(jp) = &join.op else {
            unreachable!()
        };
        let (lg, rg) = (join.input_group(0), join.input_group(1));

        let lprops = ctx.logical_props(lg);
        let (pa, rest) = p.partition(|attr| lprops.has_attr(attr));
        let rprops = ctx.logical_props(rg);
        let (pb, rest) = rest.partition(|attr| rprops.has_attr(attr));
        if pa.is_empty() && pb.is_empty() {
            return vec![];
        }

        let wrap = |g, pred: Pred| {
            if pred.is_empty() {
                Subst::group(g)
            } else {
                Subst::node(RelOp::Select(pred), vec![Subst::group(g)])
            }
        };
        let new_join = Subst::node(RelOp::Join(jp.clone()), vec![wrap(lg, pa), wrap(rg, pb)]);
        let root = if rest.is_empty() {
            new_join
        } else {
            Subst::node(RelOp::Select(rest), vec![new_join])
        };
        vec![root]
    }
}

/// `σ_p(σ_q(X))  →  σ_{p ∧ q}(X)`: collapse selection cascades.
pub struct SelectMerge {
    pattern: Pattern<RelModel>,
}

impl SelectMerge {
    /// Construct the rule.
    pub fn new() -> Self {
        SelectMerge {
            pattern: Pattern::op_disc(
                "select",
                vec![rel_disc::SELECT],
                is_select,
                vec![Pattern::op_disc(
                    "select",
                    vec![rel_disc::SELECT],
                    is_select,
                    vec![Pattern::Any],
                )],
            ),
        }
    }
}

impl Default for SelectMerge {
    fn default() -> Self {
        Self::new()
    }
}

impl TransformationRule<RelModel> for SelectMerge {
    fn name(&self) -> &'static str {
        "select_merge"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, _ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let RelOp::Select(p) = &b.op else {
            unreachable!()
        };
        let inner = b.nested(0);
        let RelOp::Select(q) = &inner.op else {
            unreachable!()
        };
        vec![Subst::node(
            RelOp::Select(p.and(q)),
            vec![Subst::group(inner.input_group(0))],
        )]
    }
}

/// `γ(X)  →  γ_final(γ_partial(X))`: split an aggregate into a
/// per-worker partial phase and a serial merge phase. Every supported
/// aggregate decomposes: SUM/MIN/MAX merge with themselves, COUNT(*)
/// merges by summing partial counts, and AVG ships a `(sum, count)`
/// pair (see [`AggSpec::partial_attrs`]). The rewrite is only *useful*
/// under a parallel model — the partial class's sole implementation
/// demands a parallel input, so the optimizer prices it against the
/// serial single-phase plan and the gather enforcer decides placement —
/// hence the rule is registered only when `parallel_degree > 1`.
pub struct AggSplit {
    pattern: Pattern<RelModel>,
}

impl AggSplit {
    /// Construct the rule.
    pub fn new() -> Self {
        AggSplit {
            pattern: Pattern::op_disc(
                "aggregate",
                vec![rel_disc::AGGREGATE],
                |op: &RelOp| matches!(op, RelOp::Aggregate(_)),
                vec![Pattern::Any],
            ),
        }
    }
}

impl Default for AggSplit {
    fn default() -> Self {
        Self::new()
    }
}

impl TransformationRule<RelModel> for AggSplit {
    fn name(&self) -> &'static str {
        "agg_split"
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, _ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let RelOp::Aggregate(spec) = &b.op else {
            unreachable!()
        };
        vec![Subst::node(
            RelOp::FinalAggregate(spec.clone()),
            vec![Subst::node(
                RelOp::PartialAggregate(spec.clone()),
                vec![Subst::group(b.input_group(0))],
            )],
        )]
    }
}

/// Commutativity for a symmetric set operation (union or intersection).
pub struct SetOpCommute {
    pattern: Pattern<RelModel>,
    op: RelOp,
    name: &'static str,
}

impl SetOpCommute {
    /// Commutativity of `UNION`.
    pub fn union() -> Self {
        SetOpCommute {
            pattern: Pattern::op_disc(
                "union",
                vec![rel_disc::UNION],
                |op: &RelOp| matches!(op, RelOp::Union),
                vec![Pattern::Any, Pattern::Any],
            ),
            op: RelOp::Union,
            name: "union_commute",
        }
    }

    /// Commutativity of `INTERSECT`.
    pub fn intersect() -> Self {
        SetOpCommute {
            pattern: Pattern::op_disc(
                "intersect",
                vec![rel_disc::INTERSECT],
                |op: &RelOp| matches!(op, RelOp::Intersect),
                vec![Pattern::Any, Pattern::Any],
            ),
            op: RelOp::Intersect,
            name: "intersect_commute",
        }
    }
}

impl TransformationRule<RelModel> for SetOpCommute {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, _ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        // NOTE: commuting a set operation is only valid when both sides
        // share one schema; the logical property derivation uses the left
        // input's attribute ids, so commuting inputs with *different*
        // attribute ids would change the nominal output schema. The
        // builder constructs set operations over union-compatible inputs;
        // positional semantics make the result equivalent.
        vec![Subst::node(
            self.op.clone(),
            vec![
                Subst::group(b.input_group(1)),
                Subst::group(b.input_group(0)),
            ],
        )]
    }
}

/// Associativity for a symmetric set operation:
/// `(A op B) op C  →  A op (B op C)`.
pub struct SetOpAssoc {
    pattern: Pattern<RelModel>,
    op: RelOp,
    name: &'static str,
}

impl SetOpAssoc {
    /// Associativity of `UNION`.
    pub fn union() -> Self {
        let m = |op: &RelOp| matches!(op, RelOp::Union);
        SetOpAssoc {
            pattern: Pattern::op_disc(
                "union",
                vec![rel_disc::UNION],
                m,
                vec![
                    Pattern::op_disc(
                        "union",
                        vec![rel_disc::UNION],
                        m,
                        vec![Pattern::Any, Pattern::Any],
                    ),
                    Pattern::Any,
                ],
            ),
            op: RelOp::Union,
            name: "union_assoc",
        }
    }

    /// Associativity of `INTERSECT`.
    pub fn intersect() -> Self {
        let m = |op: &RelOp| matches!(op, RelOp::Intersect);
        SetOpAssoc {
            pattern: Pattern::op_disc(
                "intersect",
                vec![rel_disc::INTERSECT],
                m,
                vec![
                    Pattern::op_disc(
                        "intersect",
                        vec![rel_disc::INTERSECT],
                        m,
                        vec![Pattern::Any, Pattern::Any],
                    ),
                    Pattern::Any,
                ],
            ),
            op: RelOp::Intersect,
            name: "intersect_assoc",
        }
    }
}

impl TransformationRule<RelModel> for SetOpAssoc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pattern(&self) -> &Pattern<RelModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<RelModel>, _ctx: &RuleCtx<'_, RelModel>) -> Vec<Subst> {
        let inner = b.nested(0);
        vec![Subst::node(
            self.op.clone(),
            vec![
                Subst::group(inner.input_group(0)),
                Subst::node(
                    self.op.clone(),
                    vec![
                        Subst::group(inner.input_group(1)),
                        Subst::group(b.input_group(1)),
                    ],
                ),
            ],
        )]
    }
}
