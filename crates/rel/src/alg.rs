//! The physical algebra: algorithms and enforcers.
//!
//! These mirror the operator repertoire of the Volcano execution engine
//! \[4\] and the paper's experiment configuration (§4.2): file scan, filter,
//! sort, merge join, hybrid hash join — plus the operators a production
//! system needs around them. `FilterScan` exists because "a join followed
//! by a projection ... should be implemented in a single procedure;
//! therefore, it is possible to map multiple logical operators to a single
//! physical operator" (§2.2): it implements `Select(Get(t))` in one pass.

use std::fmt;

use volcano_core::model::Algorithm;

use crate::ids::{AttrId, TableId};
use crate::ops::AggSpec;
use crate::predicate::{JoinPred, Pred};

/// Physical operators of the relational model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RelAlg {
    /// Sequential heap-file scan; output unordered.
    FileScan(TableId),
    /// Ordered scan through a clustered B+tree index on the given
    /// attribute: an access path that *delivers* a sort order.
    IndexScan(TableId, AttrId),
    /// Scan + predicate evaluation in a single pass (multi-operator
    /// implementation of `Select(Get)`).
    FilterScan(TableId, Pred),
    /// Standalone predicate filter; preserves input order.
    Filter(Pred),
    /// Column projection without duplicate removal; preserves order.
    ProjectOp(Vec<AttrId>),
    /// Merge join; requires both inputs sorted on the join attributes,
    /// delivers output sorted on the left attributes.
    MergeJoin(JoinPred),
    /// Hybrid hash join, in-memory ("presumed to proceed without
    /// partition files", §4.2); output unordered. Builds on the left.
    HybridHashJoin(JoinPred),
    /// Tuple-at-a-time nested loops; preserves the outer (left) order and
    /// handles arbitrary predicates including Cartesian products.
    NestedLoops(JoinPred),
    /// Three-way hash join implementing `Join(Join(a, b), c)` in one
    /// operator: builds hash tables on `a` and `b`, probes with `c`
    /// through the middle table. The §6 extensibility claim made
    /// concrete: "the introduction of a new, non-trivial algorithm such
    /// as a multi-way join requires one or two implementation rules in
    /// Volcano". Predicates: `inner` joins a–b, `outer` joins (a,b)–c.
    MultiWayHashJoin {
        /// The a–b equi-join predicate.
        inner: JoinPred,
        /// The (a ⋈ b)–c equi-join predicate.
        outer: JoinPred,
    },
    /// Merge-based union of two consistently sorted inputs.
    MergeUnion,
    /// Hash-based union.
    HashUnion,
    /// Merge-based intersection ("an algorithm very similar to
    /// merge-join", §3) of two consistently sorted inputs.
    MergeIntersect,
    /// Hash-based intersection.
    HashIntersect,
    /// Merge-based difference of two consistently sorted inputs.
    MergeDifference,
    /// Hash-based difference.
    HashDifference,
    /// Aggregation over an input sorted on the grouping attributes.
    StreamAggregate(AggSpec),
    /// Hash-based aggregation over unordered input.
    HashAggregate(AggSpec),
    /// Per-worker hash aggregation below a gather: each of the `u32`
    /// workers groups its own share of the input and emits partial
    /// summaries in the intermediate layout of
    /// [`AggSpec::partial_attrs`]. The degree is carried so the
    /// re-coster can reproduce the search-time cardinality without the
    /// optimizer context.
    PartialHashAggregate(AggSpec, u32),
    /// Merge of partial summaries into final aggregate results; runs
    /// serially above the gather.
    FinalHashAggregate(AggSpec),
    /// The sort **enforcer**: performs no logical data manipulation, only
    /// establishes an ordering (§2.2).
    Sort(Vec<AttrId>),
    /// The gather **enforcer**: merges the `n` partitions of a parallel
    /// subplan back into one serial stream — the paper's exchange
    /// operator, restricted to the merge direction. Like `Sort`, it
    /// performs no logical data manipulation; it only converts the
    /// parallel-degree physical property from `n` back to 1.
    Gather(u32),
}

impl Algorithm for RelAlg {
    fn name(&self) -> &str {
        match self {
            RelAlg::FileScan(_) => "file_scan",
            RelAlg::IndexScan(_, _) => "index_scan",
            RelAlg::FilterScan(_, _) => "filter_scan",
            RelAlg::Filter(_) => "filter",
            RelAlg::ProjectOp(_) => "project",
            RelAlg::MergeJoin(_) => "merge_join",
            RelAlg::HybridHashJoin(_) => "hybrid_hash_join",
            RelAlg::NestedLoops(_) => "nested_loops",
            RelAlg::MultiWayHashJoin { .. } => "multiway_hash_join",
            RelAlg::MergeUnion => "merge_union",
            RelAlg::HashUnion => "hash_union",
            RelAlg::MergeIntersect => "merge_intersect",
            RelAlg::HashIntersect => "hash_intersect",
            RelAlg::MergeDifference => "merge_difference",
            RelAlg::HashDifference => "hash_difference",
            RelAlg::StreamAggregate(_) => "stream_aggregate",
            RelAlg::HashAggregate(_) => "hash_aggregate",
            RelAlg::PartialHashAggregate(_, _) => "partial_hash_aggregate",
            RelAlg::FinalHashAggregate(_) => "final_hash_aggregate",
            RelAlg::Sort(_) => "sort",
            RelAlg::Gather(_) => "gather",
        }
    }
}

impl RelAlg {
    /// Is this operator an enforcer rather than a query processing
    /// algorithm?
    pub fn is_enforcer(&self) -> bool {
        matches!(self, RelAlg::Sort(_) | RelAlg::Gather(_))
    }

    /// Is this one of the join algorithms?
    pub fn is_join(&self) -> bool {
        matches!(
            self,
            RelAlg::MergeJoin(_)
                | RelAlg::HybridHashJoin(_)
                | RelAlg::NestedLoops(_)
                | RelAlg::MultiWayHashJoin { .. }
        )
    }
}

impl fmt::Display for RelAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelAlg::FileScan(t) => write!(f, "file_scan({t:?})"),
            RelAlg::IndexScan(t, a) => write!(f, "index_scan({t:?}, {a})"),
            RelAlg::FilterScan(t, p) => write!(f, "filter_scan({t:?}, {p})"),
            RelAlg::Filter(p) => write!(f, "filter[{p}]"),
            RelAlg::ProjectOp(attrs) => write!(f, "project{attrs:?}"),
            RelAlg::MergeJoin(p) => write!(f, "merge_join[{p}]"),
            RelAlg::HybridHashJoin(p) => write!(f, "hybrid_hash_join[{p}]"),
            RelAlg::NestedLoops(p) => write!(f, "nested_loops[{p}]"),
            RelAlg::MultiWayHashJoin { inner, outer } => {
                write!(f, "multiway_hash_join[{inner}; {outer}]")
            }
            RelAlg::Sort(attrs) => write!(f, "sort{attrs:?}"),
            RelAlg::Gather(n) => write!(f, "gather({n})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(RelAlg::Sort(vec![]).is_enforcer());
        assert!(!RelAlg::FileScan(TableId(0)).is_enforcer());
        assert!(RelAlg::MergeJoin(JoinPred::cross()).is_join());
        assert!(!RelAlg::HashUnion.is_join());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            RelAlg::HybridHashJoin(JoinPred::cross()).name(),
            "hybrid_hash_join"
        );
        assert_eq!(RelAlg::MergeUnion.name(), "merge_union");
    }
}
