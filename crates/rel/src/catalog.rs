//! The catalog: stored tables, columns, and their statistics.
//!
//! "The set of algorithms, their capabilities and their costs represents
//! the data formats and physical storage structures used by the database
//! system" (§2.2) — the catalog supplies the statistics those capability
//! and cost functions consume: cardinalities, column widths, and distinct
//! value counts for selectivity estimation.

use std::collections::HashMap;

use crate::feedback::SelectivityMemory;
use crate::ids::{AttrId, TableId};

/// Column data types (deliberately small; what the execution engine
/// supports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string.
    Str,
    /// Boolean.
    Bool,
}

/// Definition of one column when creating a table.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Data type.
    pub ty: ColType,
    /// Average stored width in bytes (statistics input).
    pub width: u32,
    /// Estimated number of distinct values (statistics input).
    pub distinct: f64,
    /// Maintain a clustered-order B+tree index on this column (integer
    /// columns only); an index scan can then *deliver* the sort order as
    /// a physical property.
    pub indexed: bool,
}

impl ColumnDef {
    /// An integer column with the given distinct-value count.
    pub fn int(name: &str, distinct: f64) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColType::Int,
            width: 8,
            distinct,
            indexed: false,
        }
    }

    /// A string column with the given width and distinct-value count.
    pub fn str(name: &str, width: u32, distinct: f64) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColType::Str,
            width,
            distinct,
            indexed: false,
        }
    }

    /// Mark the column as indexed (integer columns only).
    pub fn indexed(mut self) -> Self {
        assert_eq!(self.ty, ColType::Int, "only integer columns are indexable");
        self.indexed = true;
        self
    }
}

/// A column registered in the catalog.
#[derive(Debug, Clone)]
pub struct Column {
    /// Globally unique attribute id.
    pub attr: AttrId,
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: ColType,
    /// Average width in bytes.
    pub width: u32,
    /// Estimated distinct values.
    pub distinct: f64,
    /// Is a B+tree index maintained on this column?
    pub indexed: bool,
}

/// A table registered in the catalog.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table id.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Estimated row count.
    pub card: f64,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl TableDef {
    /// Total average row width in bytes.
    pub fn row_width(&self) -> u32 {
        self.columns.iter().map(|c| c.width).sum()
    }

    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// The catalog of stored tables.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: Vec<TableDef>,
    by_name: HashMap<String, TableId>,
    next_attr: u32,
    feedback: SelectivityMemory,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; returns its id. Panics on duplicate names.
    pub fn add_table(&mut self, name: &str, card: f64, columns: Vec<ColumnDef>) -> TableId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate table name {name:?}"
        );
        let id = TableId(self.tables.len() as u32);
        let columns = columns
            .into_iter()
            .map(|c| {
                let attr = AttrId(self.next_attr);
                self.next_attr += 1;
                Column {
                    attr,
                    name: c.name,
                    ty: c.ty,
                    width: c.width,
                    // A column cannot have more distinct values than rows.
                    distinct: c.distinct.min(card).max(1.0),
                    indexed: c.indexed,
                }
            })
            .collect();
        self.tables.push(TableDef {
            id,
            name: name.to_string(),
            card,
            columns,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Unregister a table by name, returning its id. The [`TableDef`]
    /// stays in the id-indexed slot (ids are positional, so later tables
    /// keep theirs), but name resolution — and therefore SQL lowering —
    /// can no longer reach it.
    pub fn drop_table(&mut self, name: &str) -> Option<TableId> {
        self.by_name.remove(name)
    }

    /// Is the table id still reachable by name (i.e. not dropped)?
    pub fn is_live(&self, id: TableId) -> bool {
        self.tables
            .get(id.index())
            .is_some_and(|t| self.by_name.contains_key(&t.name))
    }

    /// Replace a table's statistics: row count and per-column
    /// distinct-value estimates (`None` entries keep the old estimate).
    /// Panics if `distinct` does not match the column count.
    pub fn update_stats(&mut self, id: TableId, card: f64, distinct: &[Option<f64>]) {
        let t = &mut self.tables[id.index()];
        assert_eq!(
            distinct.len(),
            t.columns.len(),
            "distinct estimates for {} columns, table {:?} has {}",
            distinct.len(),
            t.name,
            t.columns.len()
        );
        t.card = card;
        for (col, d) in t.columns.iter_mut().zip(distinct) {
            if let Some(d) = d {
                col.distinct = d.min(card).max(1.0);
            } else {
                col.distinct = col.distinct.min(card).max(1.0);
            }
        }
    }

    /// Allocate a fresh attribute id outside any stored table (used for
    /// aggregate result columns).
    pub fn fresh_attr(&mut self) -> AttrId {
        let attr = AttrId(self.next_attr);
        self.next_attr += 1;
        attr
    }

    /// Look up a table by id.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.index()]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableDef> {
        self.by_name.get(name).map(|&id| self.table(id))
    }

    /// The attribute id of `table.column`; panics if absent.
    pub fn attr(&self, table: &str, column: &str) -> AttrId {
        self.table_by_name(table)
            .unwrap_or_else(|| panic!("unknown table {table:?}"))
            .column(column)
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"))
            .attr
    }

    /// All registered tables.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// The catalog's selectivity memory (observed per-term / per-join-pair
    /// selectivities harvested from executed plans). Empty by default, in
    /// which case every estimator falls back to the System R formulas
    /// bit-identically.
    pub fn feedback(&self) -> &SelectivityMemory {
        &self.feedback
    }

    /// Mutable access to the selectivity memory (feedback application and
    /// persistence restore).
    pub fn feedback_mut(&mut self) -> &mut SelectivityMemory {
        &mut self.feedback
    }

    /// Resolve an attribute id back to `(table, column)` names, for
    /// explain output. Linear scan; not used during search.
    pub fn attr_name(&self, attr: AttrId) -> Option<(String, String)> {
        for t in &self.tables {
            for c in &t.columns {
                if c.attr == attr {
                    return Some((t.name.clone(), c.name.clone()));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            1000.0,
            vec![
                ColumnDef::int("id", 1000.0),
                ColumnDef::int("dept", 50.0),
                ColumnDef::str("name", 20, 900.0),
            ],
        );
        c.add_table("dept", 50.0, vec![ColumnDef::int("id", 50.0)]);
        c
    }

    #[test]
    fn attrs_are_globally_unique() {
        let c = sample();
        let e = c.table_by_name("emp").unwrap();
        let d = c.table_by_name("dept").unwrap();
        let mut all: Vec<_> = e
            .columns
            .iter()
            .chain(d.columns.iter())
            .map(|c| c.attr)
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn distinct_capped_at_cardinality() {
        let mut c = Catalog::new();
        c.add_table("t", 10.0, vec![ColumnDef::int("x", 1000.0)]);
        assert_eq!(c.table_by_name("t").unwrap().columns[0].distinct, 10.0);
    }

    #[test]
    fn drop_table_keeps_ids_stable() {
        let mut c = sample();
        let emp = c.table_by_name("emp").unwrap().id;
        let dept = c.table_by_name("dept").unwrap().id;
        assert!(c.is_live(emp));
        assert_eq!(c.drop_table("emp"), Some(emp));
        assert_eq!(c.drop_table("emp"), None);
        assert!(c.table_by_name("emp").is_none());
        assert!(!c.is_live(emp));
        // The id-indexed slot survives so later ids keep resolving.
        assert_eq!(c.table(dept).name, "dept");
        assert!(c.is_live(dept));
    }

    #[test]
    fn update_stats_recaps_distinct() {
        let mut c = sample();
        let emp = c.table_by_name("emp").unwrap().id;
        c.update_stats(emp, 10.0, &[None, Some(500.0), None]);
        let t = c.table(emp);
        assert_eq!(t.card, 10.0);
        // Both the explicit estimate and the untouched ones re-cap at the
        // new cardinality.
        assert_eq!(t.columns[0].distinct, 10.0);
        assert_eq!(t.columns[1].distinct, 10.0);
        c.update_stats(emp, 2000.0, &[Some(1500.0), None, None]);
        assert_eq!(c.table(emp).columns[0].distinct, 1500.0);
    }

    #[test]
    fn lookup_and_reverse_lookup() {
        let c = sample();
        let a = c.attr("emp", "dept");
        assert_eq!(c.attr_name(a), Some(("emp".into(), "dept".into())));
        assert!(c.attr_name(AttrId(999)).is_none());
    }

    #[test]
    fn row_width_sums_columns() {
        let c = sample();
        assert_eq!(c.table_by_name("emp").unwrap().row_width(), 8 + 8 + 20);
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_rejected() {
        let mut c = sample();
        c.add_table("emp", 1.0, vec![]);
    }

    #[test]
    fn fresh_attr_does_not_collide() {
        let mut c = sample();
        let f = c.fresh_attr();
        assert!(c.attr_name(f).is_none());
        assert!(f.0 >= 4);
    }
}
