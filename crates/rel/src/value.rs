//! Runtime and literal values.
//!
//! A single [`Value`] type serves both as predicate literal in the
//! optimizer (where it must be `Eq + Hash` so operators can key the memo)
//! and as tuple field in the execution engine (where it must be `Ord` so
//! sort and merge algorithms work). Floats are stored in a totally
//! ordered bit representation to keep both uses sound.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A totally ordered, hashable `f64` wrapper.
///
/// NaN is banned at construction, which makes `Eq`/`Ord`/`Hash` lawful.
#[derive(Clone, Copy, Debug)]
pub struct F64(f64);

impl F64 {
    /// Wrap a finite float; panics on NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN values are not permitted");
        F64(v)
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 || (self.0 == 0.0 && other.0 == 0.0)
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN banned at construction")
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Normalize -0.0 to 0.0 so Hash agrees with Eq.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

/// A database value: tuple field at run time, literal in predicates.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL NULL. Ordered lowest so sorted streams put NULLs first.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Finite 64-bit float.
    Float(F64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Integer constructor.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Float constructor (panics on NaN).
    pub fn float(v: f64) -> Self {
        Value::Float(F64::new(v))
    }

    /// String constructor.
    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is `Value::Int`.
    ///
    /// The typed accessors (`as_int` / `as_float` / `as_bool` /
    /// `as_str`) are strict: they do not coerce across types, so the
    /// columnar execution engine can rely on them to detect exactly the
    /// values its typed column vectors can hold.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, if this is `Value::Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(x.get()),
            _ => None,
        }
    }

    /// The boolean payload, if this is `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is `Value::Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// SQL-style comparison: NULL compares equal/ordered to nothing
    /// (`None`), everything else by the derived total order. Cross-type
    /// numeric comparisons coerce Int to Float.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(&b.get()),
            (Value::Float(a), Value::Int(b)) => a.get().partial_cmp(&(*b as f64)),
            (a, b) => Some(a.cmp(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", x.get()),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

/// A tuple: one row of an intermediate or stored relation.
pub type Tuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &impl Hash) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_total_order_and_hash() {
        assert!(F64::new(1.0) < F64::new(2.0));
        assert_eq!(F64::new(0.0), F64::new(-0.0));
        assert_eq!(hash_of(&F64::new(0.0)), hash_of(&F64::new(-0.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = F64::new(f64::NAN);
    }

    #[test]
    fn value_ordering() {
        assert!(Value::Null < Value::int(0));
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn sql_cmp_null_semantics() {
        assert_eq!(Value::Null.sql_cmp(&Value::int(1)), None);
        assert_eq!(Value::int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::int(1).sql_cmp(&Value::int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn sql_cmp_coerces_numerics() {
        assert_eq!(
            Value::int(2).sql_cmp(&Value::float(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::float(1.5).sql_cmp(&Value::int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn typed_accessors_are_strict() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::float(7.0).as_int(), None);
        assert_eq!(Value::float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::int(2).as_float(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
