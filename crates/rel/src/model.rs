//! The assembled relational model specification.

use std::sync::Arc;

use volcano_core::model::Model;
use volcano_core::rules::{Enforcer, ImplementationRule, TransformationRule};

use crate::catalog::{Catalog, ColType};
use crate::cost::RelCost;
use crate::ops::{AggFunc, AggSpec, RelOp};
use crate::props::{ColInfo, RelLogical, RelProps};
use crate::rules::implement::{
    FileScanRule, FilterRule, FilterScanRule, FinalHashAggRule, HashAggRule, HashJoinRule,
    HashSetOpRule, IndexScanRule, MergeJoinRule, MergeSetOpRule, MultiWayJoinRule, NestedLoopsRule,
    PartialHashAggRule, ProjectRule, SetOpKind, StreamAggRule,
};
use crate::rules::transform::{
    AggSplit, BottomJoinCommute, JoinAssoc, JoinCommute, JoinLeftExchange, SelectMerge,
    SelectPushdown, SetOpAssoc, SetOpCommute,
};
use crate::rules::{GatherEnforcer, SortEnforcer};
use crate::selectivity::{join_selectivity_with, pred_selectivity_with};

/// Which join orders the transformation rules enumerate — Starburst's
/// search-space parameter (§5), expressed Volcano-style as a rule-set
/// choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinSpace {
    /// All bushy trees (commutativity + associativity), as in the
    /// paper's experiments.
    #[default]
    Bushy,
    /// Left-deep trees only ("no composite inner"): bottom-join
    /// commutativity + left-join exchange.
    LeftDeep,
}

/// Configuration of the relational model: which rules are generated into
/// the optimizer and how aggressive the alternatives are.
///
/// "Parameterizing the rules and their conditions, e.g., to control the
/// thoroughness of the search" (§2.1) happens here, at optimizer
/// *generation* time — exactly like regenerating the optimizer from an
/// edited model specification.
#[derive(Debug, Clone)]
pub struct RelModelOptions {
    /// Permit associativity rewrites that introduce Cartesian products.
    pub allow_cross_products: bool,
    /// Join-order search space (bushy vs. left-deep).
    pub join_space: JoinSpace,
    /// Include the selection push-down rule.
    pub enable_select_pushdown: bool,
    /// Include the selection-cascade merge rule.
    pub enable_select_merge: bool,
    /// Include the nested-loops join algorithm.
    pub enable_nested_loops: bool,
    /// Include the multi-operator `Select(Get)` → `FilterScan` rule.
    pub enable_filter_scan: bool,
    /// Include the three-way `MultiWayHashJoin` implementation rule —
    /// the §6 extensibility demonstration. Off by default to keep the
    /// baseline algorithm repertoire identical to the paper's.
    pub enable_multiway_join: bool,
    /// Main memory available to each hash join, in bytes. The default
    /// (infinite) reproduces the paper's §4.2 assumption that hash joins
    /// proceed "without partition files"; finite values make the cost a
    /// function of memory and shift plans toward sort-based operators as
    /// memory shrinks.
    pub hash_join_memory_bytes: f64,
    /// Include set-operation associativity rules (union, intersection).
    pub enable_set_op_transforms: bool,
    /// Include set-operation *commutativity*. Off by default: commuting a
    /// set operation changes the nominal output attribute ids (set
    /// operations are positional), which confuses consumers that resolve
    /// attributes by id. Enable only for pure plan-space experiments that
    /// do not execute the resulting plans.
    pub enable_set_op_commute: bool,
    /// How many alternative consistent key orders merge-based binary
    /// operators offer (1 = declared order only, 2 = also the order with
    /// the first two keys swapped; §3's alternative property vectors).
    pub sort_order_variants: usize,
    /// Parallel degree the gather enforcer may offer (worker count for
    /// morsel-driven batch execution). `1` (the default) generates no
    /// gather enforcer at all, making the model — search space, costs,
    /// and plans — bit-identical to the serial configuration.
    pub parallel_degree: u32,
}

impl Default for RelModelOptions {
    fn default() -> Self {
        RelModelOptions {
            allow_cross_products: false,
            join_space: JoinSpace::Bushy,
            enable_select_pushdown: true,
            enable_select_merge: true,
            enable_nested_loops: true,
            enable_filter_scan: true,
            enable_multiway_join: false,
            hash_join_memory_bytes: f64::INFINITY,
            enable_set_op_transforms: true,
            enable_set_op_commute: false,
            sort_order_variants: 1,
            parallel_degree: 1,
        }
    }
}

impl RelModelOptions {
    /// The configuration of the paper's §4.2 experiments: operators get,
    /// select, join; algorithms file scan, filter, sort, merge-join,
    /// hybrid hash join; transformation rules generating all plans
    /// including bushy ones; selections arrive already placed on scans.
    pub fn paper_fig4() -> Self {
        RelModelOptions {
            allow_cross_products: false,
            join_space: JoinSpace::Bushy,
            enable_select_pushdown: false,
            enable_select_merge: false,
            enable_nested_loops: false,
            enable_filter_scan: false,
            enable_multiway_join: false,
            hash_join_memory_bytes: f64::INFINITY,
            enable_set_op_transforms: false,
            enable_set_op_commute: false,
            sort_order_variants: 1,
            parallel_degree: 1,
        }
    }

    /// This configuration with the gather enforcer offering `degree`-way
    /// parallelism.
    pub fn with_parallel_degree(mut self, degree: u32) -> Self {
        self.parallel_degree = degree.max(1);
        self
    }
}

/// The relational model: catalog + rule set + property functions.
pub struct RelModel {
    catalog: Catalog,
    options: RelModelOptions,
    transforms: Vec<Box<dyn TransformationRule<RelModel>>>,
    impls: Vec<Box<dyn ImplementationRule<RelModel>>>,
    enforcers: Vec<Box<dyn Enforcer<RelModel>>>,
}

impl RelModel {
    /// Assemble the model ("generate the optimizer") for a catalog with
    /// the given options.
    pub fn new(catalog: Catalog, options: RelModelOptions) -> Self {
        let mut transforms: Vec<Box<dyn TransformationRule<RelModel>>> = match options.join_space {
            JoinSpace::Bushy => vec![
                Box::new(JoinCommute::new()),
                Box::new(JoinAssoc::new(options.allow_cross_products)),
            ],
            JoinSpace::LeftDeep => vec![
                Box::new(BottomJoinCommute::new()),
                Box::new(JoinLeftExchange::new(options.allow_cross_products)),
            ],
        };
        if options.enable_select_pushdown {
            transforms.push(Box::new(SelectPushdown::new()));
        }
        if options.enable_select_merge {
            transforms.push(Box::new(SelectMerge::new()));
        }
        if options.enable_set_op_transforms {
            transforms.push(Box::new(SetOpAssoc::union()));
            transforms.push(Box::new(SetOpAssoc::intersect()));
            if options.enable_set_op_commute {
                transforms.push(Box::new(SetOpCommute::union()));
                transforms.push(Box::new(SetOpCommute::intersect()));
            }
        }
        if options.parallel_degree > 1 {
            // Two-phase aggregation only pays off when there are workers
            // to share the partial phase; a serial model stays
            // bit-identical to the pre-parallel configuration.
            transforms.push(Box::new(AggSplit::new()));
        }

        let mut impls: Vec<Box<dyn ImplementationRule<RelModel>>> = vec![
            Box::new(FileScanRule::new()),
            Box::new(IndexScanRule::new(catalog.clone())),
            Box::new(FilterRule::new()),
            Box::new(ProjectRule::new()),
            Box::new(MergeJoinRule::new(options.sort_order_variants)),
            Box::new(HashJoinRule::new(options.hash_join_memory_bytes)),
        ];
        if options.enable_nested_loops {
            impls.push(Box::new(NestedLoopsRule::new()));
        }
        if options.enable_filter_scan {
            impls.push(Box::new(FilterScanRule::new()));
        }
        if options.enable_multiway_join {
            impls.push(Box::new(MultiWayJoinRule::new()));
        }
        for kind in [
            SetOpKind::Union,
            SetOpKind::Intersect,
            SetOpKind::Difference,
        ] {
            impls.push(Box::new(MergeSetOpRule::new(
                kind,
                options.sort_order_variants,
            )));
            impls.push(Box::new(HashSetOpRule::new(kind)));
        }
        impls.push(Box::new(StreamAggRule::new()));
        impls.push(Box::new(HashAggRule::new()));
        if options.parallel_degree > 1 {
            impls.push(Box::new(PartialHashAggRule::new(options.parallel_degree)));
            impls.push(Box::new(FinalHashAggRule::new()));
        }

        let mut enforcers: Vec<Box<dyn Enforcer<RelModel>>> = vec![Box::new(SortEnforcer)];
        if options.parallel_degree > 1 {
            enforcers.push(Box::new(GatherEnforcer::new(options.parallel_degree)));
        }

        RelModel {
            catalog,
            options,
            transforms,
            impls,
            enforcers,
        }
    }

    /// Model with default options.
    pub fn with_defaults(catalog: Catalog) -> Self {
        RelModel::new(catalog, RelModelOptions::default())
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The options the model was generated with.
    pub fn options(&self) -> &RelModelOptions {
        &self.options
    }
}

impl Model for RelModel {
    type Op = RelOp;
    type Alg = crate::alg::RelAlg;
    type LogicalProps = RelLogical;
    type PhysProps = RelProps;
    type Cost = RelCost;

    fn derive_logical_props(&self, op: &RelOp, inputs: &[&RelLogical]) -> RelLogical {
        match op {
            RelOp::Get(t) => {
                let table = self.catalog.table(*t);
                RelLogical {
                    card: table.card,
                    cols: Arc::new(
                        table
                            .columns
                            .iter()
                            .map(|c| ColInfo {
                                attr: c.attr,
                                ty: c.ty,
                                width: c.width,
                                distinct: c.distinct,
                            })
                            .collect(),
                    ),
                }
            }
            RelOp::Select(p) => {
                let input = inputs[0];
                RelLogical {
                    card: input.card * pred_selectivity_with(p, input, self.catalog.feedback()),
                    cols: input.cols.clone(),
                }
            }
            RelOp::Project(attrs) => {
                let input = inputs[0];
                RelLogical {
                    card: input.card,
                    cols: Arc::new(
                        attrs
                            .iter()
                            .map(|a| {
                                *input.col(*a).unwrap_or_else(|| {
                                    panic!("projection references unknown attribute {a:?}")
                                })
                            })
                            .collect(),
                    ),
                }
            }
            RelOp::Join(p) => {
                let (l, r) = (inputs[0], inputs[1]);
                let mut cols: Vec<ColInfo> = l.cols.as_ref().clone();
                cols.extend(r.cols.iter().copied());
                RelLogical {
                    card: l.card * r.card * join_selectivity_with(p, l, r, self.catalog.feedback()),
                    cols: Arc::new(cols),
                }
            }
            RelOp::Union => RelLogical {
                card: inputs[0].card + inputs[1].card,
                cols: inputs[0].cols.clone(),
            },
            RelOp::Intersect => RelLogical {
                card: inputs[0].card.min(inputs[1].card) * 0.5,
                cols: inputs[0].cols.clone(),
            },
            RelOp::Difference => RelLogical {
                card: inputs[0].card * 0.5,
                cols: inputs[0].cols.clone(),
            },
            RelOp::Aggregate(spec) => {
                let input = inputs[0];
                let groups = if spec.group_by.is_empty() {
                    1.0
                } else {
                    spec.group_by
                        .iter()
                        .map(|a| input.distinct(*a))
                        .product::<f64>()
                        .min(input.card)
                        .max(1.0)
                };
                let mut cols: Vec<ColInfo> = spec
                    .group_by
                    .iter()
                    .map(|a| {
                        *input.col(*a).unwrap_or_else(|| {
                            panic!("group-by references unknown attribute {a:?}")
                        })
                    })
                    .collect();
                for (func, out) in &spec.aggs {
                    let ty = match func {
                        AggFunc::CountStar => ColType::Int,
                        AggFunc::Avg(_) => ColType::Float,
                        AggFunc::Sum(a) | AggFunc::Min(a) | AggFunc::Max(a) => {
                            input.col(*a).map(|c| c.ty).unwrap_or(ColType::Int)
                        }
                    };
                    cols.push(ColInfo {
                        attr: *out,
                        ty,
                        width: 8,
                        distinct: groups,
                    });
                }
                RelLogical {
                    card: groups,
                    cols: Arc::new(cols),
                }
            }
            RelOp::PartialAggregate(spec) => {
                // Per-worker local grouping: up to `degree` copies of each
                // group survive (one per worker), capped by the input
                // size. For any degree this keeps the *final* group count
                // identical to the single-phase derivation —
                // min(D, min(D·n, card)) = min(D, card) — so the split is
                // derivation-invariant.
                let input = inputs[0];
                let d_groups = if spec.group_by.is_empty() {
                    1.0
                } else {
                    spec.group_by
                        .iter()
                        .map(|a| input.distinct(*a))
                        .product::<f64>()
                };
                let degree = f64::from(self.options.parallel_degree.max(1));
                let card = (d_groups * degree).min(input.card).max(1.0);
                let mut cols: Vec<ColInfo> = spec
                    .group_by
                    .iter()
                    .map(|a| {
                        *input.col(*a).unwrap_or_else(|| {
                            panic!("group-by references unknown attribute {a:?}")
                        })
                    })
                    .collect();
                for (func, out) in &spec.aggs {
                    let ty = match func {
                        AggFunc::CountStar => ColType::Int,
                        AggFunc::Sum(a) | AggFunc::Min(a) | AggFunc::Max(a) | AggFunc::Avg(a) => {
                            input.col(*a).map(|c| c.ty).unwrap_or(ColType::Int)
                        }
                    };
                    cols.push(ColInfo {
                        attr: *out,
                        ty,
                        width: 8,
                        distinct: card,
                    });
                    if matches!(func, AggFunc::Avg(_)) {
                        // AVG ships a (sum, count) pair across the gather.
                        cols.push(ColInfo {
                            attr: AggSpec::companion_attr(*out),
                            ty: ColType::Int,
                            width: 8,
                            distinct: card,
                        });
                    }
                }
                RelLogical {
                    card,
                    cols: Arc::new(cols),
                }
            }
            RelOp::FinalAggregate(spec) => {
                // The input is the partial layout: group columns carry the
                // original distinct counts, aggregate intermediates sit at
                // the output attribute ids.
                let input = inputs[0];
                let groups = if spec.group_by.is_empty() {
                    1.0
                } else {
                    spec.group_by
                        .iter()
                        .map(|a| input.distinct(*a))
                        .product::<f64>()
                        .min(input.card)
                        .max(1.0)
                };
                let mut cols: Vec<ColInfo> = spec
                    .group_by
                    .iter()
                    .map(|a| {
                        *input.col(*a).unwrap_or_else(|| {
                            panic!("group-by references unknown attribute {a:?}")
                        })
                    })
                    .collect();
                for (func, out) in &spec.aggs {
                    let ty = match func {
                        AggFunc::CountStar => ColType::Int,
                        AggFunc::Avg(_) => ColType::Float,
                        AggFunc::Sum(_) | AggFunc::Min(_) | AggFunc::Max(_) => {
                            input.col(*out).map(|c| c.ty).unwrap_or(ColType::Int)
                        }
                    };
                    cols.push(ColInfo {
                        attr: *out,
                        ty,
                        width: 8,
                        distinct: groups,
                    });
                }
                RelLogical {
                    card: groups,
                    cols: Arc::new(cols),
                }
            }
        }
    }

    fn assert_logical_props_consistent(&self, existing: &RelLogical, derived: &RelLogical) {
        // The estimation scheme is derivation-invariant by construction
        // (see crate::props); any disagreement is a rule bug.
        debug_assert!(
            (existing.card - derived.card).abs() <= 1e-6 * existing.card.max(1.0),
            "equivalent expressions derived different cardinalities: {} vs {}",
            existing.card,
            derived.card
        );
    }

    fn op_discriminant(&self, op: &RelOp) -> Option<usize> {
        Some(op.discriminant())
    }

    fn transformations(&self) -> &[Box<dyn TransformationRule<Self>>] {
        &self.transforms
    }

    fn implementations(&self) -> &[Box<dyn ImplementationRule<Self>>] {
        &self.impls
    }

    fn enforcers(&self) -> &[Box<dyn Enforcer<Self>>] {
        &self.enforcers
    }
}
