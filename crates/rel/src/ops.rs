//! The logical algebra: operators consuming and producing bulk types.
//!
//! "The set of logical operators is declared in the model specification
//! and compiled into the optimizer during generation" (§2.2). Operator
//! values carry their arguments (table, predicate, projection list, ...)
//! and must be `Eq + Hash`: the memo keys expressions by operator value
//! plus input classes.

use std::fmt;

use volcano_core::model::Operator;

use crate::ids::{AttrId, TableId};
use crate::predicate::{JoinPred, Pred};

/// Aggregate functions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(attr)`.
    Sum(AttrId),
    /// `MIN(attr)`.
    Min(AttrId),
    /// `MAX(attr)`.
    Max(AttrId),
    /// `AVG(attr)`.
    Avg(AttrId),
}

impl AggFunc {
    /// The input attribute, if any.
    pub fn input_attr(&self) -> Option<AttrId> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Sum(a) | AggFunc::Min(a) | AggFunc::Max(a) | AggFunc::Avg(a) => Some(*a),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "count",
            AggFunc::Sum(_) => "sum",
            AggFunc::Min(_) => "min",
            AggFunc::Max(_) => "max",
            AggFunc::Avg(_) => "avg",
        }
    }
}

/// A grouping + aggregation specification.
///
/// Each aggregate is paired with a fresh output [`AttrId`] (allocated via
/// [`crate::Catalog::fresh_attr`]) so downstream operators can reference
/// aggregate results like any other attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Grouping attributes.
    pub group_by: Vec<AttrId>,
    /// Aggregates and their output attribute ids.
    pub aggs: Vec<(AggFunc, AttrId)>,
}

/// Bit set on synthetic attribute ids in a partial aggregate's
/// intermediate schema (the AVG count companion). Catalog-allocated ids
/// stay far below this, so the companions can never collide.
pub const PARTIAL_COMPANION_BIT: u32 = 1 << 30;

impl AggSpec {
    /// The AVG count companion attribute for output attribute `out`:
    /// a partial AVG ships `(sum, count)` across the gather, and the
    /// count column needs a deterministic id distinct from every real
    /// attribute.
    pub fn companion_attr(out: AttrId) -> AttrId {
        AttrId(out.0 | PARTIAL_COMPANION_BIT)
    }

    /// The intermediate (partial-aggregate output) attribute layout:
    /// group-by attributes, then per aggregate its output attribute —
    /// with AVG contributing a second, companion column for the count.
    ///
    /// This layout is the contract between the partial and final phases
    /// in every engine: `PartialHashAggregate` produces it and
    /// `FinalHashAggregate` consumes it positionally.
    pub fn partial_attrs(&self) -> Vec<AttrId> {
        let mut out: Vec<AttrId> = self.group_by.clone();
        for (f, a) in &self.aggs {
            out.push(*a);
            if matches!(f, AggFunc::Avg(_)) {
                out.push(Self::companion_attr(*a));
            }
        }
        out
    }

    /// The final (user-visible) attribute layout: group-by attributes,
    /// then one column per aggregate.
    pub fn output_attrs(&self) -> Vec<AttrId> {
        self.group_by
            .iter()
            .copied()
            .chain(self.aggs.iter().map(|(_, a)| *a))
            .collect()
    }
}

/// The logical operators of the relational algebra.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// Scan a stored table (arity 0).
    Get(TableId),
    /// Filter rows by a conjunction (arity 1).
    Select(Pred),
    /// Keep only the listed attributes, no duplicate removal (arity 1).
    Project(Vec<AttrId>),
    /// Inner equi-join; an empty predicate is a Cartesian product
    /// (arity 2).
    Join(JoinPred),
    /// Bag union of schema-compatible inputs (arity 2).
    Union,
    /// Set intersection of schema-compatible inputs (arity 2).
    Intersect,
    /// Set difference `left \ right` (arity 2).
    Difference,
    /// Group-by + aggregation (arity 1).
    Aggregate(AggSpec),
    /// Per-worker partial aggregation: groups its input locally and
    /// emits one summary row per (worker, group) in the intermediate
    /// layout of [`AggSpec::partial_attrs`] (arity 1). Only produced by
    /// the `AggSplit` transformation under a parallel model.
    PartialAggregate(AggSpec),
    /// Merge of partial-aggregate summaries into final results: SUM and
    /// COUNT partials are summed, MIN/MAX re-minimized, AVG divides the
    /// merged `(sum, count)` pair (arity 1).
    FinalAggregate(AggSpec),
}

/// Operator discriminants for the rule-dispatch index (see
/// `volcano_core::Model::op_discriminant`). Pure variant tags — never a
/// function of operator arguments such as predicates or column lists.
pub mod rel_disc {
    /// `RelOp::Get(_)`.
    pub const GET: usize = 0;
    /// `RelOp::Select(_)`.
    pub const SELECT: usize = 1;
    /// `RelOp::Project(_)`.
    pub const PROJECT: usize = 2;
    /// `RelOp::Join(_)`.
    pub const JOIN: usize = 3;
    /// `RelOp::Union`.
    pub const UNION: usize = 4;
    /// `RelOp::Intersect`.
    pub const INTERSECT: usize = 5;
    /// `RelOp::Difference`.
    pub const DIFFERENCE: usize = 6;
    /// `RelOp::Aggregate(_)`.
    pub const AGGREGATE: usize = 7;
    /// `RelOp::PartialAggregate(_)`.
    pub const PARTIAL_AGGREGATE: usize = 8;
    /// `RelOp::FinalAggregate(_)`.
    pub const FINAL_AGGREGATE: usize = 9;
}

impl RelOp {
    /// The operator's dispatch discriminant (see [`rel_disc`]).
    pub fn discriminant(&self) -> usize {
        match self {
            RelOp::Get(_) => rel_disc::GET,
            RelOp::Select(_) => rel_disc::SELECT,
            RelOp::Project(_) => rel_disc::PROJECT,
            RelOp::Join(_) => rel_disc::JOIN,
            RelOp::Union => rel_disc::UNION,
            RelOp::Intersect => rel_disc::INTERSECT,
            RelOp::Difference => rel_disc::DIFFERENCE,
            RelOp::Aggregate(_) => rel_disc::AGGREGATE,
            RelOp::PartialAggregate(_) => rel_disc::PARTIAL_AGGREGATE,
            RelOp::FinalAggregate(_) => rel_disc::FINAL_AGGREGATE,
        }
    }
}

impl Operator for RelOp {
    fn arity(&self) -> usize {
        match self {
            RelOp::Get(_) => 0,
            RelOp::Select(_)
            | RelOp::Project(_)
            | RelOp::Aggregate(_)
            | RelOp::PartialAggregate(_)
            | RelOp::FinalAggregate(_) => 1,
            RelOp::Join(_) | RelOp::Union | RelOp::Intersect | RelOp::Difference => 2,
        }
    }

    fn name(&self) -> &str {
        match self {
            RelOp::Get(_) => "get",
            RelOp::Select(_) => "select",
            RelOp::Project(_) => "project",
            RelOp::Join(_) => "join",
            RelOp::Union => "union",
            RelOp::Intersect => "intersect",
            RelOp::Difference => "difference",
            RelOp::Aggregate(_) => "aggregate",
            RelOp::PartialAggregate(_) => "partial_aggregate",
            RelOp::FinalAggregate(_) => "final_aggregate",
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelOp::Get(t) => write!(f, "get({t:?})"),
            RelOp::Select(p) => write!(f, "select[{p}]"),
            RelOp::Project(attrs) => write!(f, "project{attrs:?}"),
            RelOp::Join(p) => write!(f, "join[{p}]"),
            RelOp::Union => write!(f, "union"),
            RelOp::Intersect => write!(f, "intersect"),
            RelOp::Difference => write!(f, "difference"),
            RelOp::Aggregate(s) => {
                write!(
                    f,
                    "aggregate[group={:?}, {} aggs]",
                    s.group_by,
                    s.aggs.len()
                )
            }
            RelOp::PartialAggregate(s) => {
                write!(
                    f,
                    "partial_aggregate[group={:?}, {} aggs]",
                    s.group_by,
                    s.aggs.len()
                )
            }
            RelOp::FinalAggregate(s) => {
                write!(
                    f,
                    "final_aggregate[group={:?}, {} aggs]",
                    s.group_by,
                    s.aggs.len()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(RelOp::Get(TableId(0)).arity(), 0);
        assert_eq!(RelOp::Select(Pred::default()).arity(), 1);
        assert_eq!(RelOp::Join(JoinPred::cross()).arity(), 2);
        assert_eq!(RelOp::Union.arity(), 2);
        assert_eq!(
            RelOp::Aggregate(AggSpec {
                group_by: vec![],
                aggs: vec![]
            })
            .arity(),
            1
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(RelOp::Get(TableId(1)).to_string(), "get(T1)");
        assert_eq!(RelOp::Union.to_string(), "union");
    }

    #[test]
    fn agg_func_input_attr() {
        assert_eq!(AggFunc::CountStar.input_attr(), None);
        assert_eq!(AggFunc::Sum(AttrId(3)).input_attr(), Some(AttrId(3)));
        assert_eq!(AggFunc::Avg(AttrId(4)).name(), "avg");
    }
}
