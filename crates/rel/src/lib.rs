//! # volcano-rel — the relational model specification
//!
//! The relational data model plugged into the `volcano-core` search
//! engine: the "model specification" an optimizer implementor would feed
//! to the Volcano optimizer generator, here compiled by `rustc` into a
//! working cost-based relational optimizer.
//!
//! It provides:
//!
//! * a **catalog** with table and column statistics ([`catalog`]),
//! * the **logical algebra**: get, select, project, join, union,
//!   intersect, difference, aggregate ([`ops`]),
//! * the **physical algebra**: file scan, filtered scan (a multi-operator
//!   implementation), filter, project, merge join, hybrid hash join,
//!   nested-loops join, sort-merge and hash set operations, stream and
//!   hash aggregation, and the **sort enforcer** ([`alg`]),
//! * **physical properties**: sort order with prefix cover ([`props`]),
//! * a System-R-style **cost model** with separate I/O and CPU components
//!   ([`cost`]) and **selectivity estimation** ([`selectivity`]),
//! * the **rule set**: join commutativity and associativity, select
//!   push-down/merge, set-operation commutativity, and one implementation
//!   rule per algorithm ([`rules`]),
//! * an ergonomic **query builder** ([`builder`]).
//!
//! The experiment configuration of the paper's §4.2 (select–join queries,
//! 1,200–7,200-record relations of 100-byte rows, hash join without
//! partition files, single-level merge sort) is the default configuration
//! of [`RelModel`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alg;
pub mod builder;
pub mod catalog;
pub mod cost;
pub mod estimate;
pub mod explain;
pub mod feedback;
pub mod ids;
pub mod model;
pub mod ops;
pub mod predicate;
pub mod props;
pub mod rules;
pub mod selectivity;
pub mod value;

pub use alg::RelAlg;
pub use builder::QueryBuilder;
pub use catalog::{Catalog, ColumnDef, TableDef};
pub use cost::RelCost;
pub use estimate::{estimated_logical, estimated_plan_cost, estimated_rows};
pub use explain::{explain_expr, explain_plan};
pub use feedback::{
    geometric_share, join_observations, join_pair_key, observations, pred_observations, term_key,
    Observation, ObservationKey, SelectivityMemory,
};
pub use ids::{AttrId, TableId};
pub use model::{JoinSpace, RelModel, RelModelOptions};
pub use ops::{AggFunc, AggSpec, RelOp};
pub use predicate::{Cmp, CmpOp, JoinPred, Pred};
pub use props::{RelLogical, RelProps};
pub use value::Value;

/// The logical expression tree type for the relational model.
pub type RelExpr = volcano_core::ExprTree<RelModel>;
/// The optimizer type for the relational model.
pub type RelOptimizer<'m> = volcano_core::Optimizer<'m, RelModel>;
/// The plan type for the relational model.
pub type RelPlan = volcano_core::Plan<RelModel>;
