//! Integer identifiers for catalog entities.
//!
//! Attributes carry *globally unique* ids assigned by the catalog, so an
//! attribute keeps its identity as it flows through joins and projections
//! — which is what makes sort orders, join predicates, and selectivity
//! estimation composable without name resolution during search.

use std::fmt;

/// Identifier of a stored table in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// Raw index into the catalog's table arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Globally unique identifier of an attribute (column).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// Raw value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formatting() {
        assert_eq!(format!("{:?}", TableId(3)), "T3");
        assert_eq!(format!("{:?}", AttrId(9)), "a9");
        assert_eq!(format!("{}", AttrId(9)), "a9");
    }
}
