//! The relational cost ADT and cost-model constants.
//!
//! "The cost functions included both I/O and CPU costs" (§4.2): cost is a
//! record of the two components, as in System R \[15\], demonstrating the
//! engine's cost-as-ADT design — the search engine never looks inside,
//! it only calls the trait functions.
//!
//! Units are abstract milliseconds calibrated to early-90s hardware
//! (a SparcStation-class machine with a slow disk), which puts estimated
//! execution times for the paper's workload in the 0.1–50 s range the
//! figure shows. Absolute values are irrelevant for the reproduction;
//! *ratios* (I/O vs CPU, sort vs hash) are what shape plan choice.

use std::fmt;

use volcano_core::cost::Cost;

/// Page size assumed by the cost model (bytes).
pub const PAGE_SIZE: f64 = 4096.0;
/// Milliseconds per sequential page I/O (early-90s disk, ~1.5 MB/s
/// sequential with 4 KiB pages).
pub const IO_PAGE_MS: f64 = 3.0;
/// CPU milliseconds to produce/copy one tuple.
pub const CPU_TUPLE_MS: f64 = 0.01;
/// CPU milliseconds per comparison.
pub const CPU_CMP_MS: f64 = 0.002;
/// CPU milliseconds per hash-function evaluation, bucket probe, and
/// chain chase (hashing 100-byte records on a ~12 MIPS machine is
/// several times the cost of one key comparison).
pub const CPU_HASH_MS: f64 = 0.016;
/// CPU milliseconds per predicate-term evaluation.
pub const CPU_PRED_MS: f64 = 0.004;
/// Fixed per-worker startup/coordination cost charged by the gather
/// enforcer (thread dispatch, morsel-queue setup, final drain).
pub const WORKER_STARTUP_MS: f64 = 0.5;
/// CPU milliseconds the gather enforcer spends merging one tuple from a
/// worker's output stream back into the serial stream.
pub const GATHER_TUPLE_MS: f64 = 0.002;

/// The cost record: estimated I/O and CPU milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RelCost {
    /// Estimated I/O time (ms).
    pub io: f64,
    /// Estimated CPU time (ms).
    pub cpu: f64,
}

impl RelCost {
    /// Build from components.
    pub fn new(io: f64, cpu: f64) -> Self {
        RelCost { io, cpu }
    }

    /// Pure-I/O cost.
    pub fn io(io: f64) -> Self {
        RelCost { io, cpu: 0.0 }
    }

    /// Pure-CPU cost.
    pub fn cpu(cpu: f64) -> Self {
        RelCost { io: 0.0, cpu }
    }

    /// Total estimated elapsed milliseconds (the comparison key).
    pub fn total(&self) -> f64 {
        self.io + self.cpu
    }
}

impl Cost for RelCost {
    fn zero() -> Self {
        RelCost::default()
    }

    fn add(&self, other: &Self) -> Self {
        RelCost {
            io: self.io + other.io,
            cpu: self.cpu + other.cpu,
        }
    }

    fn sub_saturating(&self, other: &Self) -> Self {
        // Budgets subtract on the comparison key; attribute the remaining
        // budget proportionally so the record stays meaningful.
        let remaining = (self.total() - other.total()).max(0.0);
        if self.total() <= 0.0 {
            return RelCost::zero();
        }
        let scale = remaining / self.total();
        RelCost {
            io: self.io * scale,
            cpu: self.cpu * scale,
        }
    }

    fn cheaper_than(&self, other: &Self) -> bool {
        self.total() < other.total()
    }
}

impl fmt::Display for RelCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}ms (io {:.2} + cpu {:.2})",
            self.total(),
            self.io,
            self.cpu
        )
    }
}

/// Shared cost formulas, used by *both* the Volcano implementation rules
/// and the EXODUS baseline so the two optimizers are compared under an
/// identical cost model ("we specified ... the same property and cost
/// functions", §4.2). Each formula returns the *local* cost of the
/// algorithm; input plan costs are accumulated by the search engines.
pub mod formulas {
    use super::{
        RelCost, CPU_CMP_MS, CPU_HASH_MS, CPU_PRED_MS, CPU_TUPLE_MS, GATHER_TUPLE_MS, IO_PAGE_MS,
        PAGE_SIZE, WORKER_STARTUP_MS,
    };
    use crate::props::RelLogical;
    use volcano_core::cost::Cost as _;

    fn io_pages(l: &RelLogical) -> f64 {
        l.pages(PAGE_SIZE) * IO_PAGE_MS
    }

    /// Sequential heap scan producing `out`.
    pub fn file_scan(out: &RelLogical) -> RelCost {
        RelCost::new(io_pages(out), out.card * CPU_TUPLE_MS)
    }

    /// Ordered scan through a clustered B+tree index: index leaf pages
    /// plus the (clustered, hence near-sequential) record fetches — a
    /// modest premium over a heap scan, bought for the delivered order.
    pub fn index_scan(out: &RelLogical) -> RelCost {
        RelCost::new(io_pages(out) * 1.25, out.card * CPU_TUPLE_MS * 1.5)
    }

    /// Fused scan + filter over a stored `table` with `terms` conjuncts.
    pub fn filter_scan(table: &RelLogical, terms: usize) -> RelCost {
        RelCost::new(
            io_pages(table),
            table.card * (CPU_TUPLE_MS + terms as f64 * CPU_PRED_MS),
        )
    }

    /// Standalone filter over `input` with `terms` conjuncts (half a
    /// tuple-cost of iterator overhead per row — what the fused
    /// filter-scan saves).
    pub fn filter(input: &RelLogical, terms: usize) -> RelCost {
        RelCost::cpu(input.card * (terms as f64 * CPU_PRED_MS + 0.5 * CPU_TUPLE_MS))
    }

    /// Column projection over `input`.
    pub fn project(input: &RelLogical) -> RelCost {
        RelCost::cpu(input.card * CPU_TUPLE_MS * 0.5)
    }

    /// Merge join of pre-sorted `l` and `r` producing `out`.
    pub fn merge_join(l: &RelLogical, r: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu((l.card + r.card) * CPU_CMP_MS + out.card * CPU_TUPLE_MS)
    }

    /// In-memory hybrid hash join (no partition files, §4.2), building on
    /// `l`, probing with `r`, producing `out`.
    pub fn hash_join(l: &RelLogical, r: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu(
            l.card * (CPU_HASH_MS + CPU_TUPLE_MS) + r.card * CPU_HASH_MS + out.card * CPU_TUPLE_MS,
        )
    }

    /// Hybrid hash join with a *memory-dependent* cost — the paper's
    /// point that cost may be "even a function, e.g., of the amount of
    /// available main memory" (§4.1). When the build side fits in
    /// `memory_bytes` this equals [`hash_join`]; otherwise the
    /// overflowing fraction of both inputs is written to partition files
    /// and read back.
    pub fn hash_join_with_memory(
        l: &RelLogical,
        r: &RelLogical,
        out: &RelLogical,
        memory_bytes: f64,
    ) -> RelCost {
        let base = hash_join(l, r, out);
        let build_bytes = l.card * l.row_width();
        if build_bytes <= memory_bytes {
            return base;
        }
        // Hybrid hash: the fraction that does not fit spills to
        // partition files; when the overflow factor exceeds the
        // partition fanout (one output buffer page per partition),
        // partitions must be re-partitioned recursively.
        let spill = 1.0 - (memory_bytes / build_bytes).clamp(0.0, 1.0);
        let fanout = (memory_bytes / PAGE_SIZE).max(2.0);
        let overflow = build_bytes / memory_bytes;
        let passes = overflow.log(fanout).ceil().max(1.0);
        let spilled_pages = spill * (l.pages(PAGE_SIZE) + r.pages(PAGE_SIZE));
        base.add(&RelCost::io(2.0 * passes * spilled_pages * IO_PAGE_MS))
    }

    /// Three-way hash join `(a ⋈ b) ⋈ c` in a single operator: builds on
    /// `a` and `b`, probes with `c`, and never constructs the
    /// intermediate `mid = a ⋈ b` tuples — that saved construction is
    /// its advantage over a cascade of binary hash joins.
    pub fn multiway_hash_join(
        a: &RelLogical,
        b: &RelLogical,
        c: &RelLogical,
        mid: &RelLogical,
        out: &RelLogical,
    ) -> RelCost {
        RelCost::cpu(
            (a.card + b.card) * (CPU_HASH_MS + CPU_TUPLE_MS)
                + c.card * CPU_HASH_MS
                + mid.card * CPU_HASH_MS
                + out.card * CPU_TUPLE_MS,
        )
    }

    /// Tuple-at-a-time nested loops with `terms` predicate terms.
    pub fn nested_loops(l: &RelLogical, r: &RelLogical, out: &RelLogical, terms: usize) -> RelCost {
        let t = (terms as f64).max(1.0);
        RelCost::cpu(l.card * r.card * t * CPU_PRED_MS + out.card * CPU_TUPLE_MS)
    }

    /// Merge-based set operation over consistently sorted inputs.
    pub fn merge_set_op(l: &RelLogical, r: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu((l.card + r.card) * CPU_CMP_MS + out.card * CPU_TUPLE_MS)
    }

    /// Hash-based set operation.
    pub fn hash_set_op(l: &RelLogical, r: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu(
            l.card * (CPU_HASH_MS + CPU_TUPLE_MS) + r.card * CPU_HASH_MS + out.card * CPU_TUPLE_MS,
        )
    }

    /// Streaming aggregation over a sorted `input`.
    pub fn stream_agg(input: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu(input.card * CPU_CMP_MS + out.card * CPU_TUPLE_MS)
    }

    /// Hash aggregation over an unordered `input`.
    pub fn hash_agg(input: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu(input.card * (CPU_HASH_MS + CPU_TUPLE_MS) + out.card * CPU_TUPLE_MS)
    }

    /// Per-worker partial hash aggregation: the same hash-and-update
    /// work as [`hash_agg`], producing the (larger, per-worker) partial
    /// summary set. The caller parallelizes the result, so this is the
    /// *total* work across workers.
    pub fn partial_hash_agg(input: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu(input.card * (CPU_HASH_MS + CPU_TUPLE_MS) + out.card * CPU_TUPLE_MS)
    }

    /// Serial merge of partial summaries: one hash-and-merge per partial
    /// row, one output tuple per final group.
    pub fn final_hash_agg(input: &RelLogical, out: &RelLogical) -> RelCost {
        RelCost::cpu(input.card * (CPU_HASH_MS + CPU_TUPLE_MS) + out.card * CPU_TUPLE_MS)
    }

    /// Scale a local operator cost to its per-worker share under a
    /// delivered parallel degree. Both I/O and CPU divide by the degree:
    /// workers process disjoint morsels, and with `degree` outstanding
    /// page reads the I/O waits overlap. Degree 1 is the identity, so
    /// serial costing is bit-identical to the pre-parallel model. Used by
    /// the implementation rules *and* the plan re-coster (`estimate`), so
    /// the two can never drift.
    pub fn parallelize(cost: RelCost, degree: u32) -> RelCost {
        if degree <= 1 {
            return cost;
        }
        let d = degree as f64;
        RelCost::new(cost.io / d, cost.cpu / d)
    }

    /// The gather enforcer merging `degree` worker streams carrying
    /// `out.card` total rows back into one serial stream: per-worker
    /// startup plus a per-tuple merge charge.
    pub fn gather(out: &RelLogical, degree: u32) -> RelCost {
        RelCost::cpu(degree as f64 * WORKER_STARTUP_MS + out.card * GATHER_TUPLE_MS)
    }

    /// Sort of `input`: "sorting costs were calculated based on a
    /// single-level merge" (§4.2) — write sorted runs, read them back for
    /// one merge pass.
    pub fn sort(input: &RelLogical) -> RelCost {
        let n = input.card.max(2.0);
        RelCost::new(
            2.0 * input.pages(PAGE_SIZE) * IO_PAGE_MS,
            n * n.log2() * CPU_CMP_MS + n * CPU_TUPLE_MS,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_arithmetic() {
        let a = RelCost::new(10.0, 5.0);
        let b = RelCost::new(1.0, 2.0);
        let s = a.add(&b);
        assert_eq!(s.io, 11.0);
        assert_eq!(s.cpu, 7.0);
        assert!(b.cheaper_than(&a));
        assert!(a.cheaper_or_equal(&a));
    }

    #[test]
    fn comparison_uses_total() {
        // io-heavy vs cpu-heavy with equal totals compare as equal.
        let a = RelCost::new(10.0, 0.0);
        let b = RelCost::new(0.0, 10.0);
        assert!(!a.cheaper_than(&b));
        assert!(!b.cheaper_than(&a));
    }

    #[test]
    fn sub_saturates_and_scales() {
        let a = RelCost::new(8.0, 2.0);
        let r = a.sub_saturating(&RelCost::new(0.0, 5.0));
        assert!((r.total() - 5.0).abs() < 1e-9);
        // Proportional attribution keeps the io:cpu ratio.
        assert!((r.io / r.cpu - 4.0).abs() < 1e-9);
        let zero = a.sub_saturating(&RelCost::new(100.0, 100.0));
        assert_eq!(zero.total(), 0.0);
    }

    #[test]
    fn display_shows_components() {
        let c = RelCost::new(1.0, 2.0);
        assert!(c.to_string().contains("io 1.00"));
        assert!(c.to_string().contains("cpu 2.00"));
    }
}
