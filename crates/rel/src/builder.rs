//! Ergonomic construction of logical algebra expressions.
//!
//! "The translation from a user interface into a logical algebra
//! expression must be performed by the parser" (§2.2); `volcano-sql` is
//! such a parser, and this builder is the programmatic equivalent used by
//! examples, tests, and benchmarks.

use crate::catalog::Catalog;
use crate::ids::AttrId;
use crate::ops::{AggSpec, RelOp};
use crate::predicate::{Cmp, JoinPred, Pred};
use crate::RelExpr;

/// Builds [`RelExpr`] trees against a catalog.
pub struct QueryBuilder<'c> {
    catalog: &'c Catalog,
}

impl<'c> QueryBuilder<'c> {
    /// Create a builder for a catalog.
    pub fn new(catalog: &'c Catalog) -> Self {
        QueryBuilder { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &'c Catalog {
        self.catalog
    }

    /// `GET table`.
    pub fn scan(&self, table: &str) -> RelExpr {
        let t = self
            .catalog
            .table_by_name(table)
            .unwrap_or_else(|| panic!("unknown table {table:?}"));
        RelExpr::leaf(RelOp::Get(t.id))
    }

    /// Resolve `table.column` to its attribute id.
    pub fn attr(&self, table: &str, column: &str) -> AttrId {
        self.catalog.attr(table, column)
    }
}

/// `σ_pred(input)`.
pub fn select(input: RelExpr, pred: Pred) -> RelExpr {
    RelExpr::new(RelOp::Select(pred), vec![input])
}

/// `σ_{single comparison}(input)`.
pub fn select_one(input: RelExpr, cmp: Cmp) -> RelExpr {
    select(input, Pred::single(cmp))
}

/// `left ⋈_pred right`.
pub fn join(left: RelExpr, right: RelExpr, pred: JoinPred) -> RelExpr {
    RelExpr::new(RelOp::Join(pred), vec![left, right])
}

/// `left ⋈_{l = r} right`.
pub fn join_on(left: RelExpr, right: RelExpr, l: AttrId, r: AttrId) -> RelExpr {
    join(left, right, JoinPred::eq(l, r))
}

/// `π_attrs(input)` (no duplicate removal).
pub fn project(input: RelExpr, attrs: Vec<AttrId>) -> RelExpr {
    RelExpr::new(RelOp::Project(attrs), vec![input])
}

/// `left UNION ALL right` (positional schemas).
pub fn union(left: RelExpr, right: RelExpr) -> RelExpr {
    RelExpr::new(RelOp::Union, vec![left, right])
}

/// `left INTERSECT right`.
pub fn intersect(left: RelExpr, right: RelExpr) -> RelExpr {
    RelExpr::new(RelOp::Intersect, vec![left, right])
}

/// `left EXCEPT right`.
pub fn difference(left: RelExpr, right: RelExpr) -> RelExpr {
    RelExpr::new(RelOp::Difference, vec![left, right])
}

/// `GROUP BY group_by` with aggregates.
pub fn aggregate(input: RelExpr, spec: AggSpec) -> RelExpr {
    RelExpr::new(RelOp::Aggregate(spec), vec![input])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "r",
            100.0,
            vec![ColumnDef::int("a", 100.0), ColumnDef::int("b", 10.0)],
        );
        c.add_table("s", 200.0, vec![ColumnDef::int("a", 200.0)]);
        c
    }

    #[test]
    fn builds_trees_with_correct_shapes() {
        let c = catalog();
        let q = QueryBuilder::new(&c);
        let e = join_on(
            select_one(q.scan("r"), Cmp::eq(q.attr("r", "b"), 3i64)),
            q.scan("s"),
            q.attr("r", "a"),
            q.attr("s", "a"),
        );
        assert_eq!(e.node_count(), 4);
        assert_eq!(e.display(), "join(select(get), get)");
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn unknown_table_panics() {
        let c = catalog();
        let q = QueryBuilder::new(&c);
        let _ = q.scan("nope");
    }
}
