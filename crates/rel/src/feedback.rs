//! Per-predicate / per-join-key selectivity memory — the feedback half
//! of adaptive re-optimization.
//!
//! The paper treats cardinality estimation as an input to the search;
//! this module closes the loop the paper leaves open: executed plans
//! report their per-operator *actual* cardinalities (EXPLAIN ANALYZE
//! already measures them), [`observations`] converts those actuals into
//! per-term and per-join-pair selectivity observations, and a
//! [`SelectivityMemory`] stored in the [`Catalog`] merges them with
//! exponential smoothing so one outlier execution cannot poison the
//! memory. The selectivity estimators
//! ([`crate::selectivity::pred_selectivity_with`] and friends) consult
//! the memory first and fall back to the System R formulas, so search,
//! plan-cache drift re-costing, and EXPLAIN estimates all become
//! memory-aware through one code path — and with an *empty* memory they
//! are bit-identical to the static formulas.
//!
//! ## Keying
//!
//! Memory cells are keyed per comparison *term* and per join *pair*,
//! never per predicate or per plan node. The memo's logical properties
//! must be derivation-invariant (equivalent expressions derive equal
//! cardinalities to within 1e-6 — see [`crate::props`]), and term/pair
//! multisets are exactly what survives `SelectMerge`, selection
//! push-down, and join commutativity/associativity: any placement of
//! the same terms multiplies the same memory cells. Term keys mirror
//! the value-blind hashing of `volcano_sql::shape_key` — a
//! parameter-tagged term hashes its slot, not its current binding — so
//! every execution of a prepared shape feeds the same cell.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use volcano_core::fxhash::FxHasher;

use crate::alg::RelAlg;
use crate::catalog::Catalog;
use crate::ids::AttrId;
use crate::predicate::{Cmp, JoinPred, Pred};
use crate::selectivity::MIN_SELECTIVITY;
use crate::RelPlan;

/// Observations are exact running means for the first `WARMUP`
/// observations, then exponentially smoothed with `alpha = 1/WARMUP`.
/// Within the warm-up the merge is exactly order-insensitive; beyond it
/// recent executions dominate (adaptivity) while any single outlier
/// moves the cell by at most `1/WARMUP` of the gap.
pub const SMOOTHING_WARMUP: u64 = 8;

/// What a selectivity observation is about.
///
/// The payload is a stable 64-bit key (unseeded [`FxHasher`], so it is
/// deterministic across runs and platforms) rather than the term
/// itself: the memory never needs to enumerate its subjects, only to
/// answer point lookups, and a fixed-width key keeps the catalog clone
/// cheap and the persistence codec (`volcano-store`) model-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObservationKey {
    /// One comparison term of a selection predicate (see [`term_key`]).
    Term(u64),
    /// One equi-join pair (see [`join_pair_key`]).
    Join(u64),
}

impl ObservationKey {
    /// Codec tag for persistence (0 = term, 1 = join).
    pub fn tag(&self) -> u8 {
        match self {
            ObservationKey::Term(_) => 0,
            ObservationKey::Join(_) => 1,
        }
    }

    /// The raw 64-bit key.
    pub fn raw(&self) -> u64 {
        match self {
            ObservationKey::Term(k) | ObservationKey::Join(k) => *k,
        }
    }

    /// Rebuild a key from its persisted `(tag, raw)` form; `None` for an
    /// unknown tag (a newer writer).
    pub fn from_parts(tag: u8, raw: u64) -> Option<Self> {
        match tag {
            0 => Some(ObservationKey::Term(raw)),
            1 => Some(ObservationKey::Join(raw)),
            _ => None,
        }
    }
}

/// The memory key of one comparison term: attribute, operator, and
/// either the parameter slot (value-blind, like the plan cache's shape
/// key) or the literal value.
pub fn term_key(cmp: &Cmp) -> ObservationKey {
    let mut h = FxHasher::default();
    cmp.attr.hash(&mut h);
    h.write_u8(cmp.op as u8);
    match cmp.param {
        Some(slot) => {
            h.write_u8(1);
            h.write_u32(slot);
        }
        None => {
            h.write_u8(0);
            cmp.value.hash(&mut h);
        }
    }
    ObservationKey::Term(h.finish())
}

/// The memory key of one equi-join pair, canonicalized so that
/// `emp.dept = dept.id` and `dept.id = emp.dept` (join commutativity)
/// address the same cell.
pub fn join_pair_key(l: AttrId, r: AttrId) -> ObservationKey {
    let (a, b) = if l <= r { (l, r) } else { (r, l) };
    let mut h = FxHasher::default();
    a.hash(&mut h);
    b.hash(&mut h);
    ObservationKey::Join(h.finish())
}

/// The per-key share of a total observed selectivity `s` distributed
/// over `k` terms or pairs: the geometric share `s^(1/k)`, so the
/// product over all keys reproduces `s` exactly. Distributing evenly
/// (rather than attributing everything to one term) keeps derivation
/// invariance: however a rewrite regroups the terms, the product of
/// their cells is the same.
pub fn geometric_share(s: f64, k: usize) -> f64 {
    let s = if s.is_finite() {
        s.clamp(0.0, 1.0)
    } else {
        0.0
    };
    match k {
        0 | 1 => s,
        _ => s.powf(1.0 / k as f64),
    }
}

/// One smoothed cell of the memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelEntry {
    /// Smoothed observed selectivity, in `[0, 1]`.
    pub sel: f64,
    /// Observations merged into this cell.
    pub n: u64,
}

/// One selectivity observation harvested from an executed plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Which term or join pair the observation is about.
    pub key: ObservationKey,
    /// Observed selectivity (actual output / actual input), in `[0, 1]`.
    pub observed: f64,
    /// What the estimator predicted for the same key at harvest time —
    /// the materiality baseline for deciding whether the memory moved
    /// enough to invalidate cached plans.
    pub estimated: f64,
}

/// The catalog's per-term / per-join-pair selectivity memory.
///
/// Empty by default (and after `Catalog::clone` it is cloned along, so
/// a copy-on-write catalog swap publishes a consistent memory
/// atomically). Lookups clamp to `[MIN_SELECTIVITY, 1]`, mirroring the
/// static estimators.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SelectivityMemory {
    cells: HashMap<ObservationKey, SelEntry>,
}

impl SelectivityMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge one observation into the cell for `key`. Non-finite
    /// observations are ignored; everything else is clamped to `[0, 1]`
    /// first, so exact-zero and exact-total selectivities are ordinary
    /// observations (no division happens here at all).
    pub fn observe(&mut self, key: ObservationKey, observed: f64) {
        if !observed.is_finite() {
            return;
        }
        let observed = observed.clamp(0.0, 1.0);
        let cell = self.cells.entry(key).or_insert(SelEntry { sel: 0.0, n: 0 });
        cell.n += 1;
        // Running mean while n <= WARMUP (alpha = 1/n), exponential
        // smoothing with alpha = 1/WARMUP afterwards.
        let alpha = 1.0 / cell.n.min(SMOOTHING_WARMUP) as f64;
        cell.sel += alpha * (observed - cell.sel);
    }

    /// The smoothed selectivity for `key`, clamped to
    /// `[MIN_SELECTIVITY, 1]`; `None` if nothing was ever observed.
    pub fn lookup(&self, key: &ObservationKey) -> Option<f64> {
        self.cells
            .get(key)
            .map(|c| c.sel.clamp(MIN_SELECTIVITY, 1.0))
    }

    /// The raw cell for `key` (un-clamped smoothed value + count).
    pub fn entry(&self, key: &ObservationKey) -> Option<SelEntry> {
        self.cells.get(key).copied()
    }

    /// Restore a persisted cell verbatim (see `volcano-store`'s meta
    /// codec); replaces any existing cell for `key`.
    pub fn insert_raw(&mut self, key: ObservationKey, sel: f64, n: u64) {
        self.cells.insert(
            key,
            SelEntry {
                sel: sel.clamp(0.0, 1.0),
                n: n.max(1),
            },
        );
    }

    /// Iterate over all cells (persistence export).
    pub fn iter(&self) -> impl Iterator<Item = (&ObservationKey, &SelEntry)> {
        self.cells.iter()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Harvest per-term / per-join-pair selectivity observations from an
/// executed physical plan.
///
/// `actuals` are the per-node actual output row counts in plan
/// *pre-order* (parent before children, children left to right) —
/// exactly the order EXPLAIN ANALYZE measures. Nodes whose actual
/// inputs are zero are skipped (nothing was observed, and zero
/// denominators are meaningless); so are operators whose output is not
/// a selectivity statement about a memorized key (projections,
/// aggregates, set operations, multi-way joins).
///
/// Observed selectivities:
/// * `Filter(p)` — output / input rows, one geometric share per term.
/// * `FilterScan(t, p)` — output / catalog cardinality of `t` (the scan
///   consumes the stored table, whose cardinality the catalog tracks).
/// * binary joins — output / (left actual × right actual), one
///   geometric share per equi-join pair; cross products are skipped.
/// * `Sort` / `Gather` enforcers pass their input through untouched.
pub fn observations(catalog: &Catalog, plan: &RelPlan, actuals: &[u64]) -> Vec<Observation> {
    let mut out = Vec::new();
    harvest(catalog, plan, actuals, 0, &mut out);
    out
}

/// Recursive harvest; returns the number of pre-order slots the subtree
/// occupies. Out-of-range indexes (a truncated `actuals`) harvest
/// nothing but still size the tree correctly.
fn harvest(
    catalog: &Catalog,
    plan: &RelPlan,
    actuals: &[u64],
    idx: usize,
    out: &mut Vec<Observation>,
) -> usize {
    // Pre-order: children start right after this node, each offset by
    // the sizes of its elder siblings.
    let mut child_starts = Vec::with_capacity(plan.inputs.len());
    let mut consumed = 1;
    for c in &plan.inputs {
        child_starts.push(idx + consumed);
        consumed += harvest(catalog, c, actuals, idx + consumed, out);
    }
    let Some(&rows_out) = actuals.get(idx) else {
        return consumed;
    };
    match &plan.alg {
        RelAlg::Filter(pred) => {
            if let Some(&rows_in) = actuals.get(child_starts[0]) {
                harvest_pred(pred, rows_out, rows_in, out);
            }
        }
        RelAlg::FilterScan(t, pred) => {
            let rows_in = catalog.table(*t).card.round() as u64;
            harvest_pred(pred, rows_out, rows_in, out);
        }
        RelAlg::MergeJoin(p) | RelAlg::HybridHashJoin(p) | RelAlg::NestedLoops(p) => {
            let (l, r) = (actuals.get(child_starts[0]), actuals.get(child_starts[1]));
            if let (Some(&l), Some(&r)) = (l, r) {
                harvest_join(p, rows_out, l, r, out);
            }
        }
        // Everything else either passes rows through (enforcers), or
        // its output cardinality is not a statement about a memorized
        // selectivity key.
        _ => {}
    }
    consumed
}

/// Harvest observations for one predicate applied to a measured input —
/// the fused engine's per-pipeline entry point, where pipeline counters
/// (rows scanned / rows surviving the scan predicate) stand in for the
/// per-node actuals of [`observations`]. Same skip rules: empty
/// predicates and zero inputs harvest nothing.
pub fn pred_observations(pred: &Pred, rows_out: u64, rows_in: u64, out: &mut Vec<Observation>) {
    harvest_pred(pred, rows_out, rows_in, out);
}

/// Harvest observations for one equi-join with measured input sides —
/// the fused engine's probe-stage entry point (`l`/`r` are the two
/// input cardinalities; order is irrelevant, the pair keys are
/// commutative). Cross products and zero inputs harvest nothing.
pub fn join_observations(
    pred: &JoinPred,
    rows_out: u64,
    l: u64,
    r: u64,
    out: &mut Vec<Observation>,
) {
    harvest_join(pred, rows_out, l, r, out);
}

fn harvest_pred(pred: &Pred, rows_out: u64, rows_in: u64, out: &mut Vec<Observation>) {
    let terms = pred.terms();
    if terms.is_empty() || rows_in == 0 {
        return;
    }
    let total = (rows_out as f64 / rows_in as f64).clamp(0.0, 1.0);
    let share = geometric_share(total, terms.len());
    for term in terms {
        out.push(Observation {
            key: term_key(term),
            observed: share,
            estimated: static_term_estimate(term),
        });
    }
}

// The static estimator needs the input's logical properties for its
// distinct counts; at harvest time the plan no longer carries them, so
// the materiality baseline uses the coarse System R defaults (1/3 for
// ranges, and a conservative mid-range guess for equalities). The
// baseline only decides *materiality* relative to the prior; cached
// plans are actually judged by the full re-cost in the drift guard.
fn static_term_estimate(term: &Cmp) -> f64 {
    use crate::predicate::CmpOp;
    use crate::selectivity::RANGE_SELECTIVITY;
    match term.op {
        CmpOp::Eq => 0.01,
        CmpOp::Ne => 0.99,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => RANGE_SELECTIVITY,
    }
}

fn harvest_join(pred: &JoinPred, rows_out: u64, l: u64, r: u64, out: &mut Vec<Observation>) {
    let pairs = pred.pairs();
    if pairs.is_empty() || l == 0 || r == 0 {
        return;
    }
    let cross = l as f64 * r as f64;
    let total = (rows_out as f64 / cross).clamp(0.0, 1.0);
    let share = geometric_share(total, pairs.len());
    for &(a, b) in pairs {
        out.push(Observation {
            key: join_pair_key(a, b),
            observed: share,
            estimated: share, // joins judge materiality against the prior
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn k(i: u64) -> ObservationKey {
        ObservationKey::Term(i)
    }

    #[test]
    fn warmup_is_an_exact_running_mean() {
        let obs = [0.1, 0.9, 0.5, 0.3];
        let mut fwd = SelectivityMemory::new();
        let mut rev = SelectivityMemory::new();
        for &o in &obs {
            fwd.observe(k(1), o);
        }
        for &o in obs.iter().rev() {
            rev.observe(k(1), o);
        }
        let mean = obs.iter().sum::<f64>() / obs.len() as f64;
        assert!((fwd.lookup(&k(1)).unwrap() - mean).abs() < 1e-12);
        assert!((fwd.lookup(&k(1)).unwrap() - rev.lookup(&k(1)).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn smoothing_bounds_outliers() {
        let mut m = SelectivityMemory::new();
        for _ in 0..100 {
            m.observe(k(2), 0.5);
        }
        m.observe(k(2), 1.0); // one outlier
        let s = m.lookup(&k(2)).unwrap();
        // The outlier moves the cell by at most 1/WARMUP of the gap.
        assert!(s <= 0.5 + 0.5 / SMOOTHING_WARMUP as f64 + 1e-12);
        assert!(s > 0.5);
    }

    #[test]
    fn extreme_observations_are_safe() {
        let mut m = SelectivityMemory::new();
        m.observe(k(3), 0.0);
        m.observe(k(3), 1.0);
        m.observe(k(3), f64::NAN); // ignored
        m.observe(k(3), f64::INFINITY); // ignored
        let s = m.lookup(&k(3)).unwrap();
        assert!(s.is_finite());
        assert!((MIN_SELECTIVITY..=1.0).contains(&s));
        assert_eq!(m.entry(&k(3)).unwrap().n, 2);
    }

    #[test]
    fn zero_observation_lookup_is_clamped() {
        let mut m = SelectivityMemory::new();
        m.observe(k(4), 0.0);
        assert_eq!(m.lookup(&k(4)), Some(MIN_SELECTIVITY));
    }

    #[test]
    fn term_keys_are_value_sensitive_but_slot_blind() {
        use crate::ids::AttrId;
        let lit5 = Cmp::eq(AttrId(1), 5i64);
        let lit6 = Cmp::eq(AttrId(1), 6i64);
        assert_ne!(term_key(&lit5), term_key(&lit6));
        // A parameterized term keys on its slot, not its binding.
        let p5 = Cmp::with_param(AttrId(1), CmpOp::Eq, 5i64, 0);
        let p6 = Cmp::with_param(AttrId(1), CmpOp::Eq, 6i64, 0);
        assert_eq!(term_key(&p5), term_key(&p6));
        assert_ne!(term_key(&p5), term_key(&lit5));
    }

    #[test]
    fn join_keys_are_commutative() {
        use crate::ids::AttrId;
        assert_eq!(
            join_pair_key(AttrId(1), AttrId(9)),
            join_pair_key(AttrId(9), AttrId(1))
        );
        assert_ne!(
            join_pair_key(AttrId(1), AttrId(9)),
            join_pair_key(AttrId(1), AttrId(8))
        );
    }

    #[test]
    fn geometric_share_reproduces_the_product() {
        for &(s, kk) in &[(0.25, 2usize), (0.5, 3), (1e-6, 4), (0.0, 3), (1.0, 5)] {
            let share = geometric_share(s, kk);
            assert!((0.0..=1.0).contains(&share));
            let product = share.powi(kk as i32);
            assert!((product - s).abs() < 1e-9, "s={s} k={kk} got {product}");
        }
        assert_eq!(geometric_share(0.7, 1), 0.7);
        assert_eq!(geometric_share(f64::NAN, 2), 0.0);
    }

    #[test]
    fn key_roundtrips_through_parts() {
        for key in [ObservationKey::Term(42), ObservationKey::Join(7)] {
            assert_eq!(ObservationKey::from_parts(key.tag(), key.raw()), Some(key));
        }
        assert_eq!(ObservationKey::from_parts(9, 1), None);
    }
}
