//! Selectivity estimation.
//!
//! "The logical property functions also encapsulate selectivity
//! estimation" (§2.2). The estimators are the System R classics \[15\]:
//! `1/distinct` for equality with a literal, `1/3` for range predicates,
//! `1/max(d_left, d_right)` per equi-join pair.
//!
//! All estimators consume *base-table* distinct counts (see
//! [`crate::props`] for why that keeps logical properties
//! derivation-invariant) and clamp to `[MIN_SELECTIVITY, 1]`.

use crate::feedback::{join_pair_key, term_key, SelectivityMemory};
use crate::predicate::{Cmp, CmpOp, JoinPred, Pred};
use crate::props::RelLogical;

/// Lower clamp so estimates never reach zero (a zero-cardinality estimate
/// would make every downstream operator look free).
pub const MIN_SELECTIVITY: f64 = 1e-9;
/// Default selectivity of range predicates (System R's 1/3).
pub const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

fn clamp(s: f64) -> f64 {
    s.clamp(MIN_SELECTIVITY, 1.0)
}

/// Selectivity of one comparison given the input's statistics.
pub fn cmp_selectivity(cmp: &Cmp, input: &RelLogical) -> f64 {
    let distinct = input.distinct(cmp.attr).max(1.0);
    let s = match cmp.op {
        CmpOp::Eq => 1.0 / distinct,
        CmpOp::Ne => 1.0 - 1.0 / distinct,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => RANGE_SELECTIVITY,
    };
    clamp(s)
}

/// Selectivity of a conjunction (independence assumption).
pub fn pred_selectivity(pred: &Pred, input: &RelLogical) -> f64 {
    clamp(
        pred.terms()
            .iter()
            .map(|c| cmp_selectivity(c, input))
            .product(),
    )
}

/// Selectivity of an equi-join predicate (independence across pairs,
/// `1/max(d_l, d_r)` per pair). A Cartesian product has selectivity 1.
pub fn join_selectivity(pred: &JoinPred, left: &RelLogical, right: &RelLogical) -> f64 {
    clamp(
        pred.pairs()
            .iter()
            .map(|&(l, r)| {
                let dl = left.distinct(l).max(1.0);
                let dr = right.distinct(r).max(1.0);
                1.0 / dl.max(dr)
            })
            .product(),
    )
}

/// [`cmp_selectivity`], consulting the selectivity memory first: an
/// observed value for this term's key wins over the System R formula.
/// With an empty memory every lookup misses and the result is the exact
/// same floating-point expression as the static estimator.
pub fn cmp_selectivity_with(cmp: &Cmp, input: &RelLogical, memory: &SelectivityMemory) -> f64 {
    match memory.lookup(&term_key(cmp)) {
        Some(s) => clamp(s),
        None => cmp_selectivity(cmp, input),
    }
}

/// [`pred_selectivity`] with per-term memory lookups (see
/// [`cmp_selectivity_with`]); terms without observations keep their
/// static estimates inside the same independence product.
pub fn pred_selectivity_with(pred: &Pred, input: &RelLogical, memory: &SelectivityMemory) -> f64 {
    clamp(
        pred.terms()
            .iter()
            .map(|c| cmp_selectivity_with(c, input, memory))
            .product(),
    )
}

/// [`join_selectivity`] with per-pair memory lookups; pairs without
/// observations keep the `1/max(d_l, d_r)` estimate inside the same
/// product.
pub fn join_selectivity_with(
    pred: &JoinPred,
    left: &RelLogical,
    right: &RelLogical,
    memory: &SelectivityMemory,
) -> f64 {
    clamp(
        pred.pairs()
            .iter()
            .map(|&(l, r)| match memory.lookup(&join_pair_key(l, r)) {
                Some(s) => clamp(s),
                None => {
                    let dl = left.distinct(l).max(1.0);
                    let dr = right.distinct(r).max(1.0);
                    1.0 / dl.max(dr)
                }
            })
            .product(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColType;
    use crate::ids::AttrId;
    use crate::props::ColInfo;
    use std::sync::Arc;

    fn logical(cols: Vec<(u32, f64)>, card: f64) -> RelLogical {
        RelLogical {
            card,
            cols: Arc::new(
                cols.into_iter()
                    .map(|(i, d)| ColInfo {
                        attr: AttrId(i),
                        ty: ColType::Int,
                        width: 8,
                        distinct: d,
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn equality_uses_distinct() {
        let l = logical(vec![(1, 100.0)], 1000.0);
        let s = cmp_selectivity(&Cmp::eq(AttrId(1), 5i64), &l);
        assert!((s - 0.01).abs() < 1e-12);
    }

    #[test]
    fn range_is_one_third() {
        let l = logical(vec![(1, 100.0)], 1000.0);
        let s = cmp_selectivity(&Cmp::lt(AttrId(1), 5i64), &l);
        assert!((s - RANGE_SELECTIVITY).abs() < 1e-12);
    }

    #[test]
    fn ne_is_complement() {
        let l = logical(vec![(1, 4.0)], 1000.0);
        let s = cmp_selectivity(&Cmp::new(AttrId(1), CmpOp::Ne, 5i64), &l);
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn conjunction_multiplies() {
        let l = logical(vec![(1, 10.0), (2, 10.0)], 1000.0);
        let p = Pred::conj(vec![Cmp::eq(AttrId(1), 1i64), Cmp::eq(AttrId(2), 2i64)]);
        assert!((pred_selectivity(&p, &l) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn join_uses_max_distinct() {
        let l = logical(vec![(1, 50.0)], 1000.0);
        let r = logical(vec![(10, 200.0)], 500.0);
        let p = JoinPred::eq(AttrId(1), AttrId(10));
        assert!((join_selectivity(&p, &l, &r) - 1.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn cross_product_selectivity_is_one() {
        let l = logical(vec![(1, 50.0)], 1000.0);
        let r = logical(vec![(10, 200.0)], 500.0);
        assert_eq!(join_selectivity(&JoinPred::cross(), &l, &r), 1.0);
    }

    #[test]
    fn selectivities_are_clamped() {
        let l = logical(vec![(1, 1e12)], 1e12);
        let p = Pred::conj(
            (0..40)
                .map(|_| Cmp::eq(AttrId(1), 1i64))
                .collect::<Vec<_>>(),
        );
        // Dedup collapses identical terms, so craft distinct values.
        let p2 = Pred::conj(
            (0..40)
                .map(|i| Cmp::eq(AttrId(1), i as i64))
                .collect::<Vec<_>>(),
        );
        assert!(pred_selectivity(&p, &l) >= MIN_SELECTIVITY);
        assert!(pred_selectivity(&p2, &l) >= MIN_SELECTIVITY);
    }
}
