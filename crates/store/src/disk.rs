//! Disk managers: where pages live when they are not in the buffer pool.
//!
//! Both implementations count physical page reads and writes so the
//! optimizer's I/O estimates can be validated against observation.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::page::{Page, PageId, PAGE_SIZE};

/// Physical I/O counters.
#[derive(Debug, Default)]
pub struct DiskStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl DiskStats {
    /// Pages read from the backing store.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Pages written to the backing store.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

/// A page-granular backing store.
pub trait DiskManager: Send + Sync {
    /// Allocate a fresh page; returns its id.
    fn allocate(&self) -> PageId;
    /// Read a page.
    fn read(&self, id: PageId) -> Page;
    /// Write a page.
    fn write(&self, id: PageId, page: &Page);
    /// Number of pages allocated so far.
    fn num_pages(&self) -> usize;
    /// I/O counters.
    fn stats(&self) -> &DiskStats;
}

/// An in-memory "disk": deterministic, fast, counts I/O like a real one.
#[derive(Default)]
pub struct MemDisk {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
    stats: DiskStats,
}

impl MemDisk {
    /// An empty in-memory disk.
    pub fn new() -> Self {
        MemDisk::default()
    }
}

impl DiskManager for MemDisk {
    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        pages.push(Box::new([0u8; PAGE_SIZE]));
        PageId(pages.len() as u32 - 1)
    }

    fn read(&self, id: PageId) -> Page {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.lock();
        Page::from_bytes(pages[id.0 as usize].clone())
    }

    fn write(&self, id: PageId, page: &Page) {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.lock();
        *pages[id.0 as usize] = *page.bytes();
    }

    fn num_pages(&self) -> usize {
        self.pages.lock().len()
    }

    fn stats(&self) -> &DiskStats {
        &self.stats
    }
}

/// A wrapper that adds a fixed latency to every page *read* of an inner
/// disk manager — a stand-in for storage with real access latency, used
/// to measure how well parallel execution overlaps I/O. The sleep
/// happens outside any lock of the wrapper itself, so concurrent readers
/// genuinely overlap (the buffer pool releases its lock across misses
/// for exactly this reason). Writes are passed through untouched.
pub struct LatencyDisk {
    inner: std::sync::Arc<dyn DiskManager>,
    read_latency: std::time::Duration,
}

impl LatencyDisk {
    /// Wrap `inner`, delaying every read by `read_latency`.
    pub fn new(inner: std::sync::Arc<dyn DiskManager>, read_latency: std::time::Duration) -> Self {
        LatencyDisk {
            inner,
            read_latency,
        }
    }
}

impl DiskManager for LatencyDisk {
    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn read(&self, id: PageId) -> Page {
        std::thread::sleep(self.read_latency);
        self.inner.read(id)
    }

    fn write(&self, id: PageId, page: &Page) {
        self.inner.write(id, page)
    }

    fn num_pages(&self) -> usize {
        self.inner.num_pages()
    }

    fn stats(&self) -> &DiskStats {
        self.inner.stats()
    }
}

/// A file-backed disk manager (one file, page-addressed).
pub struct FileDisk {
    file: Mutex<File>,
    num_pages: Mutex<usize>,
    stats: DiskStats,
}

impl FileDisk {
    /// Open (or create) a database file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len() as usize;
        Ok(FileDisk {
            file: Mutex::new(file),
            num_pages: Mutex::new(len / PAGE_SIZE),
            stats: DiskStats::default(),
        })
    }
}

impl DiskManager for FileDisk {
    fn allocate(&self) -> PageId {
        let mut n = self.num_pages.lock();
        let id = PageId(*n as u32);
        *n += 1;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start((id.0 as u64) * PAGE_SIZE as u64))
            .expect("seek");
        file.write_all(&[0u8; PAGE_SIZE]).expect("extend file");
        id
    }

    fn read(&self, id: PageId) -> Page {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start((id.0 as u64) * PAGE_SIZE as u64))
            .expect("seek");
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        file.read_exact(&mut buf[..]).expect("read page");
        Page::from_bytes(buf)
    }

    fn write(&self, id: PageId, page: &Page) {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start((id.0 as u64) * PAGE_SIZE as u64))
            .expect("seek");
        file.write_all(&page.bytes()[..]).expect("write page");
    }

    fn num_pages(&self) -> usize {
        *self.num_pages.lock()
    }

    fn stats(&self) -> &DiskStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn DiskManager) {
        let a = disk.allocate();
        let b = disk.allocate();
        assert_ne!(a, b);
        let mut p = Page::new();
        p.insert(b"on disk").unwrap();
        disk.write(b, &p);
        let back = disk.read(b);
        assert_eq!(back.get(0), Some(&b"on disk"[..]));
        assert_eq!(disk.num_pages(), 2);
        assert!(disk.stats().reads() >= 1);
        assert!(disk.stats().writes() >= 1);
    }

    #[test]
    fn mem_disk_roundtrip() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn file_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("volcano_store_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.pages");
        exercise(&FileDisk::open(&path).unwrap());
        // Re-open and verify persistence.
        let disk = FileDisk::open(&path).unwrap();
        assert_eq!(disk.num_pages(), 2);
        let p = disk.read(PageId(1));
        assert_eq!(p.get(0), Some(&b"on disk"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_reset() {
        let d = MemDisk::new();
        let id = d.allocate();
        d.write(id, &Page::new());
        d.read(id);
        d.stats().reset();
        assert_eq!(d.stats().reads(), 0);
        assert_eq!(d.stats().writes(), 0);
    }
}
