//! A tiny self-describing codec for catalog side-metadata.
//!
//! The optimizer's adaptive feedback loop (see `volcano-rel`'s
//! `feedback` module) accumulates observed selectivities that are worth
//! keeping across restarts — they were paid for with real executions.
//! The storage crate cannot depend on the relational model, so the
//! codec is model-agnostic: a flat list of `(tag, key, f64, u64)`
//! entries with a magic number and a version byte. The relational layer
//! maps its `ObservationKey`/`SelEntry` cells onto entries; any other
//! layer could persist its own tagged statistics the same way.

/// One persisted metadata entry: a tagged 64-bit key with a float and a
/// counter payload (for selectivity memory: the smoothed selectivity and
/// the observation count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaEntry {
    /// Namespace tag (the producer's discriminant; selectivity memory
    /// uses 0 = predicate term, 1 = join pair).
    pub tag: u8,
    /// Opaque 64-bit key.
    pub key: u64,
    /// Float payload.
    pub value: f64,
    /// Counter payload.
    pub count: u64,
}

const MAGIC: u32 = 0x564d_4554; // "VMET"
const VERSION: u8 = 1;
const HEADER: usize = 4 + 1 + 4; // magic + version + entry count
const ENTRY: usize = 1 + 8 + 8 + 8; // tag + key + value + count

/// Serialize entries into a self-describing byte buffer.
pub fn encode(entries: &[MetaEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + entries.len() * ENTRY);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.push(e.tag);
        out.extend_from_slice(&e.key.to_le_bytes());
        out.extend_from_slice(&e.value.to_bits().to_le_bytes());
        out.extend_from_slice(&e.count.to_le_bytes());
    }
    out
}

/// Deserialize a buffer produced by [`encode`]. Returns `None` on a bad
/// magic number, an unknown version, or a truncated buffer — callers
/// treat that as "no persisted metadata" rather than an error, so a
/// corrupt sidecar degrades to a cold start.
pub fn decode(bytes: &[u8]) -> Option<Vec<MetaEntry>> {
    if bytes.len() < HEADER {
        return None;
    }
    if bytes[0..4] != MAGIC.to_le_bytes() || bytes[4] != VERSION {
        return None;
    }
    let count = u32::from_le_bytes(bytes[5..9].try_into().ok()?) as usize;
    if bytes.len() != HEADER + count * ENTRY {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    let mut at = HEADER;
    for _ in 0..count {
        let tag = bytes[at];
        let key = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().ok()?);
        let value = f64::from_bits(u64::from_le_bytes(bytes[at + 9..at + 17].try_into().ok()?));
        let count = u64::from_le_bytes(bytes[at + 17..at + 25].try_into().ok()?);
        out.push(MetaEntry {
            tag,
            key,
            value,
            count,
        });
        at += ENTRY;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entries = vec![
            MetaEntry {
                tag: 0,
                key: 0xdead_beef,
                value: 0.125,
                count: 7,
            },
            MetaEntry {
                tag: 1,
                key: u64::MAX,
                value: 1e-9,
                count: 1,
            },
        ];
        assert_eq!(decode(&encode(&entries)), Some(entries));
        assert_eq!(decode(&encode(&[])), Some(vec![]));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(b""), None);
        assert_eq!(decode(b"not metadata at all"), None);
        let mut buf = encode(&[MetaEntry {
            tag: 0,
            key: 1,
            value: 0.5,
            count: 2,
        }]);
        buf.truncate(buf.len() - 1); // torn write
        assert_eq!(decode(&buf), None);
        let mut wrong_version = encode(&[]);
        wrong_version[4] = 99;
        assert_eq!(decode(&wrong_version), None);
    }

    #[test]
    fn float_payloads_are_bit_exact() {
        let e = MetaEntry {
            tag: 1,
            key: 42,
            value: 0.1 + 0.2, // not representable "nicely"
            count: 3,
        };
        let back = decode(&encode(&[e])).unwrap();
        assert_eq!(back[0].value.to_bits(), e.value.to_bits());
    }
}
