//! # volcano-store — paged storage for the Volcano execution engine
//!
//! A small but real storage layer: fixed-size **slotted pages**
//! ([`page`]), a pluggable **disk manager** with an in-memory and a
//! file-backed implementation ([`disk`]), a pin/unpin **buffer pool**
//! with LRU eviction ([`buffer`]), **heap files** of variable-length
//! records ([`heap`]), and record (de)serialization ([`record`]).
//!
//! The disk managers count physical reads and writes, which is how the
//! repository validates the optimizer's I/O estimates against observed
//! behaviour (see `volcano-exec` and the `end_to_end` example).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod heap;
pub mod meta;
pub mod page;
pub mod record;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use disk::{DiskManager, DiskStats, FileDisk, LatencyDisk, MemDisk};
pub use heap::{HeapFile, RecordId};
pub use meta::MetaEntry;
pub use page::{Page, PageId, PAGE_SIZE};
