//! Slotted pages.
//!
//! Layout of a 4 KiB page:
//!
//! ```text
//! +--------------+-------------------+ ... free ... +---------+--------+
//! | header (8 B) | slot 0 | slot 1 |                | rec 1   | rec 0  |
//! +--------------+-------------------+ ... free ... +---------+--------+
//! ```
//!
//! * header: `slot_count: u16`, `free_end: u16` (offset one past the end
//!   of free space, i.e. start of the record heap growing downward),
//!   `next_page: u32` (heap-file chaining; `u32::MAX` = none).
//! * slot: `offset: u16`, `len: u16`; a slot with `offset == u16::MAX`
//!   is a tombstone (deleted record).

use std::fmt;

/// Page size in bytes. Matches the cost model's `PAGE_SIZE`.
pub const PAGE_SIZE: usize = 4096;

const HEADER_SIZE: usize = 8;
const SLOT_SIZE: usize = 4;
const TOMBSTONE: u16 = u16::MAX;
/// Sentinel for "no next page".
pub const NO_PAGE: u32 = u32::MAX;

/// Identifier of a page within a disk manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A slotted page of records.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p.set_next_page(NO_PAGE);
        p
    }

    /// Interpret raw bytes as a page.
    pub fn from_bytes(data: Box<[u8; PAGE_SIZE]>) -> Self {
        Page { data }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw bytes (for page types with their own layout, e.g.
    /// B+tree nodes).
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes([
            self.data[off],
            self.data[off + 1],
            self.data[off + 2],
            self.data[off + 3],
        ])
    }

    fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (live + tombstoned).
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn set_slot_count(&mut self, v: u16) {
        self.write_u16(0, v);
    }

    fn free_end(&self) -> usize {
        self.read_u16(2) as usize
    }

    fn set_free_end(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    /// Heap-file chain link ([`NO_PAGE`] = end of chain).
    pub fn next_page(&self) -> u32 {
        self.read_u32(4)
    }

    /// Set the heap-file chain link.
    pub fn set_next_page(&mut self, v: u32) {
        self.write_u32(4, v);
    }

    fn slot_offset(&self, slot: usize) -> usize {
        HEADER_SIZE + slot * SLOT_SIZE
    }

    /// Free bytes available for one more record (including its slot).
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_SIZE + self.slot_count() * SLOT_SIZE;
        self.free_end().saturating_sub(slots_end)
    }

    /// Insert a record; returns its slot number, or `None` if it does not
    /// fit. Records larger than the page payload can never be stored.
    pub fn insert(&mut self, record: &[u8]) -> Option<usize> {
        if record.len() + SLOT_SIZE > self.free_space() || record.len() > u16::MAX as usize {
            return None;
        }
        let slot = self.slot_count();
        let new_end = self.free_end() - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        let off = self.slot_offset(slot);
        self.write_u16(off, new_end as u16);
        self.write_u16(off + 2, record.len() as u16);
        self.set_slot_count(slot as u16 + 1);
        self.set_free_end(new_end as u16);
        Some(slot)
    }

    /// Read the record in a slot (`None` for tombstones or out-of-range
    /// slots).
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let off = self.slot_offset(slot);
        let rec_off = self.read_u16(off);
        if rec_off == TOMBSTONE {
            return None;
        }
        let len = self.read_u16(off + 2) as usize;
        Some(&self.data[rec_off as usize..rec_off as usize + len])
    }

    /// Tombstone a slot; returns whether a live record was deleted. Space
    /// is not reclaimed (no compaction), as in a simple heap file.
    pub fn delete(&mut self, slot: usize) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let off = self.slot_offset(slot);
        if self.read_u16(off) == TOMBSTONE {
            return false;
        }
        self.write_u16(off, TOMBSTONE);
        true
    }

    /// Iterate over live records as `(slot, bytes)`.
    pub fn records(&self) -> impl Iterator<Item = (usize, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_roundtrip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 4096 - 8 header; each record takes 104 bytes incl. slot.
        assert_eq!(n, (PAGE_SIZE - HEADER_SIZE) / 104);
        assert!(p.insert(&rec).is_none());
        // Small records may still fit afterwards.
        assert!(p.free_space() < 104);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        let s = p.insert(b"abc").unwrap();
        assert!(p.delete(s));
        assert!(!p.delete(s));
        assert_eq!(p.get(s), None);
        assert_eq!(p.records().count(), 0);
    }

    #[test]
    fn next_page_link() {
        let mut p = Page::new();
        assert_eq!(p.next_page(), NO_PAGE);
        p.set_next_page(42);
        assert_eq!(p.next_page(), 42);
    }

    #[test]
    fn records_iterator_skips_tombstones() {
        let mut p = Page::new();
        let a = p.insert(b"a").unwrap();
        let _b = p.insert(b"b").unwrap();
        p.delete(a);
        let live: Vec<_> = p.records().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(live, vec![b"b".to_vec()]);
    }

    #[test]
    fn survives_byte_roundtrip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let bytes = *p.bytes();
        let p2 = Page::from_bytes(Box::new(bytes));
        assert_eq!(p2.get(0), Some(&b"persist me"[..]));
    }
}
