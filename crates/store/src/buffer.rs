//! A pin/unpin buffer pool with LRU eviction.
//!
//! The pool caches a bounded number of pages; pinned pages cannot be
//! evicted. Dirty pages are written back on eviction and on
//! [`BufferPool::flush_all`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::DiskManager;
use crate::page::{Page, PageId};

struct Frame {
    page: Page,
    pins: u32,
    dirty: bool,
    /// LRU clock: larger = more recently used.
    last_used: u64,
}

struct PoolState {
    frames: HashMap<PageId, Frame>,
    /// Pages currently being read from disk with the state lock
    /// *released*, so concurrent misses on other pages overlap their
    /// I/O. A second requester of an in-flight page waits for the
    /// loader instead of issuing a duplicate read.
    loading: HashSet<PageId>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    capacity: usize,
    state: Mutex<PoolState>,
}

impl BufferPool {
    /// Create a pool caching at most `capacity` pages.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            state: Mutex::new(PoolState {
                frames: HashMap::new(),
                loading: HashSet::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Allocate a fresh page on disk and cache it (empty, dirty,
    /// unpinned) in the pool.
    pub fn allocate(&self) -> PageId {
        let id = self.disk.allocate();
        let mut st = self.state.lock();
        Self::make_room(&self.disk, &mut st, self.capacity);
        st.tick += 1;
        let tick = st.tick;
        st.frames.insert(
            id,
            Frame {
                page: Page::new(),
                pins: 0,
                dirty: true,
                last_used: tick,
            },
        );
        id
    }

    /// Pin a page, reading it from disk on a miss, and pass it to `f`.
    /// The pin is released when `f` returns. `f` receives a mutable page
    /// and a flag it can set to mark the page dirty.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&mut Page, &mut bool) -> R) -> R {
        // Pin. On a miss the disk read happens with the lock released
        // (the page is marked in `loading` so no one duplicates the
        // read), which lets concurrent workers overlap their I/O — the
        // difference between serialized and parallel scans.
        {
            let mut st = self.state.lock();
            loop {
                st.tick += 1;
                let tick = st.tick;
                if let Some(fr) = st.frames.get_mut(&id) {
                    fr.pins += 1;
                    fr.last_used = tick;
                    st.hits += 1;
                    break;
                }
                if st.loading.contains(&id) {
                    // Another thread is reading this very page; retry
                    // once it lands in the frame table.
                    drop(st);
                    std::thread::yield_now();
                    st = self.state.lock();
                    continue;
                }
                st.misses += 1;
                st.loading.insert(id);
                drop(st);
                let page = self.disk.read(id);
                st = self.state.lock();
                st.loading.remove(&id);
                // A missed page is not in the frame table, so disk was
                // authoritative during the unlocked window (a dirty copy
                // can only exist *in* the table, pinned or evicted under
                // this lock with write-back).
                Self::make_room(&self.disk, &mut st, self.capacity);
                st.tick += 1;
                let tick = st.tick;
                st.frames.insert(
                    id,
                    Frame {
                        page,
                        pins: 1,
                        dirty: false,
                        last_used: tick,
                    },
                );
                break;
            }
        }
        // Use. The page is cloned out so user code runs without the pool
        // lock held; the frame stays pinned so it cannot be evicted.
        let mut page = {
            let st = self.state.lock();
            st.frames[&id].page.clone()
        };
        let mut dirty = false;
        let r = f(&mut page, &mut dirty);
        // Unpin (and install mutations).
        {
            let mut st = self.state.lock();
            let fr = st.frames.get_mut(&id).expect("pinned frame present");
            if dirty {
                fr.page = page;
                fr.dirty = true;
            }
            fr.pins -= 1;
        }
        r
    }

    /// Evict the least-recently-used unpinned frame if at capacity.
    fn make_room(disk: &Arc<dyn DiskManager>, st: &mut PoolState, capacity: usize) {
        while st.frames.len() >= capacity {
            let victim = st
                .frames
                .iter()
                .filter(|(_, fr)| fr.pins == 0)
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(&id, _)| id);
            match victim {
                None => panic!(
                    "buffer pool exhausted: all {} frames pinned",
                    st.frames.len()
                ),
                Some(id) => {
                    let fr = st.frames.remove(&id).expect("victim exists");
                    if fr.dirty {
                        disk.write(id, &fr.page);
                    }
                    st.evictions += 1;
                }
            }
        }
    }

    /// Write all dirty pages back to disk (frames stay cached).
    pub fn flush_all(&self) {
        let mut st = self.state.lock();
        let mut dirty_ids: Vec<PageId> = Vec::new();
        for (&id, fr) in st.frames.iter() {
            if fr.dirty {
                dirty_ids.push(id);
            }
        }
        for id in dirty_ids {
            let fr = st.frames.get_mut(&id).expect("frame");
            self.disk.write(id, &fr.page);
            fr.dirty = false;
        }
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.hits, st.misses, st.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemDisk::new()), cap)
    }

    #[test]
    fn cached_page_hits() {
        let p = pool(4);
        let id = p.allocate();
        p.with_page(id, |pg, dirty| {
            pg.insert(b"x").unwrap();
            *dirty = true;
        });
        p.with_page(id, |pg, _| assert_eq!(pg.get(0), Some(&b"x"[..])));
        let (hits, misses, _) = p.stats();
        assert!(hits >= 2);
        assert_eq!(misses, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let ids: Vec<_> = (0..4)
            .map(|i| {
                let id = p.allocate();
                p.with_page(id, |pg, dirty| {
                    pg.insert(format!("rec{i}").as_bytes()).unwrap();
                    *dirty = true;
                });
                id
            })
            .collect();
        // Earlier pages were evicted; reading them again must recover the
        // written data from disk.
        p.with_page(ids[0], |pg, _| {
            assert_eq!(pg.get(0), Some(&b"rec0"[..]));
        });
        let (_, misses, evictions) = p.stats();
        assert!(evictions >= 2, "evictions: {evictions}");
        assert!(misses >= 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(disk.clone(), 8);
        let id = p.allocate();
        p.with_page(id, |pg, dirty| {
            pg.insert(b"durable").unwrap();
            *dirty = true;
        });
        p.flush_all();
        // Read straight from disk, bypassing the pool.
        let raw = disk.read(id);
        assert_eq!(raw.get(0), Some(&b"durable"[..]));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }
}
