//! A pin/unpin buffer pool with LRU eviction.
//!
//! The pool caches a bounded number of pages; pinned pages cannot be
//! evicted. Dirty pages are written back on eviction and on
//! [`BufferPool::flush_all`].
//!
//! # Concurrency
//!
//! Two locks protect two different things:
//!
//! - the **pool lock** guards the frame table (pin counts, LRU clock,
//!   the in-flight `loading` set, hit/miss/eviction counters);
//! - a **per-frame latch** guards each cached page's bytes.
//!
//! [`BufferPool::with_page`] pins under the pool lock, then runs the
//! caller's closure *in place* under the frame latch with the pool lock
//! released. Concurrent accesses to the same page therefore serialize
//! on that page only, and mutations can never be lost: before this
//! design the page was cloned out, mutated lock-free, and installed
//! back, so two concurrent mutators of one page would silently drop one
//! of the two updates (last install wins).
//!
//! Lock order: a frame latch is only ever acquired *after* releasing or
//! while holding the pool lock, and no code path acquires the pool lock
//! while holding a frame latch — closures run under a frame latch alone
//! and must not touch the pool. Eviction and flush lock victim latches
//! while holding the pool lock; that cannot deadlock because latch
//! holders never wait on the pool lock.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::DiskManager;
use crate::page::{Page, PageId};

/// The latched part of a frame: the page bytes plus the write-back flag.
struct PageSlot {
    page: Page,
    dirty: bool,
}

struct Frame {
    /// Shared handle to the page contents; `with_page` clones the `Arc`
    /// under the pool lock and latches it after releasing the lock.
    slot: Arc<Mutex<PageSlot>>,
    pins: u32,
    /// LRU clock: larger = more recently used.
    last_used: u64,
}

struct PoolState {
    frames: HashMap<PageId, Frame>,
    /// Pages currently being read from disk with the state lock
    /// *released*, so concurrent misses on other pages overlap their
    /// I/O. A second requester of an in-flight page waits for the
    /// loader instead of issuing a duplicate read.
    loading: HashSet<PageId>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    capacity: usize,
    state: Mutex<PoolState>,
}

impl BufferPool {
    /// Create a pool caching at most `capacity` pages.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            state: Mutex::new(PoolState {
                frames: HashMap::new(),
                loading: HashSet::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Allocate a fresh page on disk and cache it (empty, dirty,
    /// unpinned) in the pool.
    pub fn allocate(&self) -> PageId {
        let id = self.disk.allocate();
        let mut st = self.state.lock();
        Self::make_room(&self.disk, &mut st, self.capacity);
        st.tick += 1;
        let tick = st.tick;
        st.frames.insert(
            id,
            Frame {
                slot: Arc::new(Mutex::new(PageSlot {
                    page: Page::new(),
                    dirty: true,
                })),
                pins: 0,
                last_used: tick,
            },
        );
        id
    }

    /// Pin a page, reading it from disk on a miss, and pass it to `f`.
    /// The pin is released when `f` returns. `f` receives the cached
    /// page *in place* under the frame latch, plus a flag it sets to
    /// mark the page dirty (schedule write-back). Mutations always land
    /// in the cached page — concurrent accesses to the same page
    /// serialize on its latch — so `f` must not mutate unless it also
    /// sets the flag. `f` must not re-enter the pool (lock order).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&mut Page, &mut bool) -> R) -> R {
        // Pin. On a miss the disk read happens with the lock released
        // (the page is marked in `loading` so no one duplicates the
        // read), which lets concurrent workers overlap their I/O — the
        // difference between serialized and parallel scans.
        let slot = {
            let mut st = self.state.lock();
            loop {
                st.tick += 1;
                let tick = st.tick;
                if let Some(fr) = st.frames.get_mut(&id) {
                    fr.pins += 1;
                    fr.last_used = tick;
                    let slot = fr.slot.clone();
                    st.hits += 1;
                    break slot;
                }
                if st.loading.contains(&id) {
                    // Another thread is reading this very page; retry
                    // once it lands in the frame table.
                    drop(st);
                    std::thread::yield_now();
                    st = self.state.lock();
                    continue;
                }
                st.misses += 1;
                st.loading.insert(id);
                drop(st);
                let page = self.disk.read(id);
                st = self.state.lock();
                st.loading.remove(&id);
                // A missed page is not in the frame table, so disk was
                // authoritative during the unlocked window (a dirty copy
                // can only exist *in* the table, pinned or evicted under
                // this lock with write-back).
                Self::make_room(&self.disk, &mut st, self.capacity);
                st.tick += 1;
                let tick = st.tick;
                let slot = Arc::new(Mutex::new(PageSlot { page, dirty: false }));
                st.frames.insert(
                    id,
                    Frame {
                        slot: slot.clone(),
                        pins: 1,
                        last_used: tick,
                    },
                );
                break slot;
            }
        };
        // Use, in place, under the frame latch only. The frame stays
        // pinned so it cannot be evicted.
        let r = {
            let mut guard = slot.lock();
            let mut dirty = false;
            let r = f(&mut guard.page, &mut dirty);
            if dirty {
                guard.dirty = true;
            }
            r
        };
        // Unpin (after the latch is released — never hold a frame latch
        // while taking the pool lock).
        {
            let mut st = self.state.lock();
            let fr = st.frames.get_mut(&id).expect("pinned frame present");
            fr.pins -= 1;
        }
        r
    }

    /// Evict the least-recently-used unpinned frame if at capacity.
    ///
    /// The victim's latch is taken under the pool lock; with zero pins
    /// no thread can hold or re-acquire it (a holder is pinned for the
    /// whole latched window), so the lock is uncontended and write-back
    /// stays atomic with removal from the table.
    fn make_room(disk: &Arc<dyn DiskManager>, st: &mut PoolState, capacity: usize) {
        while st.frames.len() >= capacity {
            let victim = st
                .frames
                .iter()
                .filter(|(_, fr)| fr.pins == 0)
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(&id, _)| id);
            match victim {
                None => panic!(
                    "buffer pool exhausted: all {} frames pinned",
                    st.frames.len()
                ),
                Some(id) => {
                    let fr = st.frames.remove(&id).expect("victim exists");
                    let slot = fr.slot.lock();
                    if slot.dirty {
                        disk.write(id, &slot.page);
                    }
                    st.evictions += 1;
                }
            }
        }
    }

    /// Write all dirty pages back to disk (frames stay cached).
    pub fn flush_all(&self) {
        let st = self.state.lock();
        for (&id, fr) in st.frames.iter() {
            let mut slot = fr.slot.lock();
            if slot.dirty {
                self.disk.write(id, &slot.page);
                slot.dirty = false;
            }
        }
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.hits, st.misses, st.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemDisk::new()), cap)
    }

    #[test]
    fn cached_page_hits() {
        let p = pool(4);
        let id = p.allocate();
        p.with_page(id, |pg, dirty| {
            pg.insert(b"x").unwrap();
            *dirty = true;
        });
        p.with_page(id, |pg, _| assert_eq!(pg.get(0), Some(&b"x"[..])));
        let (hits, misses, _) = p.stats();
        assert!(hits >= 2);
        assert_eq!(misses, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let ids: Vec<_> = (0..4)
            .map(|i| {
                let id = p.allocate();
                p.with_page(id, |pg, dirty| {
                    pg.insert(format!("rec{i}").as_bytes()).unwrap();
                    *dirty = true;
                });
                id
            })
            .collect();
        // Earlier pages were evicted; reading them again must recover the
        // written data from disk.
        p.with_page(ids[0], |pg, _| {
            assert_eq!(pg.get(0), Some(&b"rec0"[..]));
        });
        let (_, misses, evictions) = p.stats();
        assert!(evictions >= 2, "evictions: {evictions}");
        assert!(misses >= 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(disk.clone(), 8);
        let id = p.allocate();
        p.with_page(id, |pg, dirty| {
            pg.insert(b"durable").unwrap();
            *dirty = true;
        });
        p.flush_all();
        // Read straight from disk, bypassing the pool.
        let raw = disk.read(id);
        assert_eq!(raw.get(0), Some(&b"durable"[..]));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }

    /// Regression: two threads mutating the *same* page concurrently
    /// must both have their updates survive. The old clone-out /
    /// install-back `with_page` lost one of the two (last install
    /// wins); the per-frame latch serializes them in place.
    #[test]
    fn concurrent_same_page_mutations_are_not_lost() {
        let p = Arc::new(pool(4));
        let id = p.allocate();
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        p.with_page(id, |pg, dirty| {
                            pg.insert(format!("t{t}-{i:02}").as_bytes()).unwrap();
                            *dirty = true;
                        });
                    }
                });
            }
        });
        let n = p.with_page(id, |pg, _| pg.records().count());
        assert_eq!(n, threads * per_thread, "lost page updates");
    }
}
