//! Heap files: unordered files of variable-length records, the storage
//! structure behind the cost model's `file_scan`.
//!
//! A heap file is a chain of slotted pages; inserts go to the tail page,
//! allocating a new page when full. Scans walk the chain in order, which
//! is what makes file scans sequential.
//!
//! # Concurrency
//!
//! Inserts serialize on the tail (`last`) mutex; scans take no file
//! lock. A scan concurrent with inserts sees a *prefix-consistent*
//! snapshot: every record that was fully inserted before the scan
//! reached its page is observed, appended pages become visible only
//! once populated (the record is written before the page is linked),
//! and records appended behind the scan's position may or may not be
//! seen — the usual read-committed contract for an unordered heap.
//! [`HeapFile::pages`] returns a point-in-time snapshot of the chain
//! under the same contract.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::page::{PageId, NO_PAGE};

/// Address of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// The page holding the record.
    pub page: PageId,
    /// The slot within the page.
    pub slot: usize,
}

/// An unordered file of records over a buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    first: PageId,
    last: Mutex<PageId>,
    /// The page chain in scan order, maintained incrementally: pages are
    /// only ever appended (deletes never unlink a page), so the list is
    /// exact once built. Keeping it here makes [`HeapFile::pages`] and
    /// [`HeapFile::num_pages`] free of disk reads — a chain walk through
    /// an undersized buffer pool would otherwise serialize on I/O before
    /// a scan even starts, which matters for parallel scans that
    /// partition the page list across workers.
    chain: Mutex<Vec<PageId>>,
}

impl HeapFile {
    /// Create an empty heap file.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        let first = pool.allocate();
        HeapFile {
            pool,
            first,
            last: Mutex::new(first),
            chain: Mutex::new(vec![first]),
        }
    }

    /// Re-open an existing heap file given its first page.
    pub fn open(pool: Arc<BufferPool>, first: PageId) -> Self {
        // Walk the chain once to find the tail (so inserts append) and
        // to seed the cached page list.
        let mut chain = vec![first];
        let mut last = first;
        loop {
            let next = pool.with_page(last, |p, _| p.next_page());
            if next == NO_PAGE {
                break;
            }
            last = PageId(next);
            chain.push(last);
        }
        HeapFile {
            pool,
            first,
            last: Mutex::new(last),
            chain: Mutex::new(chain),
        }
    }

    /// The first page (persist this to re-open the file).
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// Append a record; returns its id.
    pub fn insert(&self, record: &[u8]) -> RecordId {
        let mut last = self.last.lock();
        let slot = self.pool.with_page(*last, |p, dirty| {
            let s = p.insert(record);
            if s.is_some() {
                *dirty = true;
            }
            s
        });
        if let Some(slot) = slot {
            return RecordId { page: *last, slot };
        }
        // Tail full: chain a new page. The record is written into the
        // fresh page *before* the old tail's next-pointer (and the
        // chain cache) publish it, so a concurrent chain-walking scan
        // either stops at the old tail or sees the new page already
        // populated — never a linked-but-empty tail whose record
        // appears after the scan passed it.
        let new_page = self.pool.allocate();
        let slot = self
            .pool
            .with_page(new_page, |p, dirty| {
                let s = p.insert(record);
                if s.is_some() {
                    *dirty = true;
                }
                s
            })
            .unwrap_or_else(|| panic!("record of {} bytes larger than a page", record.len()));
        self.pool.with_page(*last, |p, dirty| {
            p.set_next_page(new_page.0);
            *dirty = true;
        });
        *last = new_page;
        self.chain.lock().push(new_page);
        RecordId {
            page: new_page,
            slot,
        }
    }

    /// Read one record.
    pub fn get(&self, id: RecordId) -> Option<Vec<u8>> {
        self.pool
            .with_page(id.page, |p, _| p.get(id.slot).map(|r| r.to_vec()))
    }

    /// Delete one record.
    pub fn delete(&self, id: RecordId) -> bool {
        self.pool.with_page(id.page, |p, dirty| {
            let deleted = p.delete(id.slot);
            if deleted {
                *dirty = true;
            }
            deleted
        })
    }

    /// Sequentially scan all live records, invoking `f` per record.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8])) {
        let mut page = self.first;
        loop {
            let next = self.pool.with_page(page, |p, _| {
                for (slot, rec) in p.records() {
                    f(RecordId { page, slot }, rec);
                }
                p.next_page()
            });
            if next == NO_PAGE {
                break;
            }
            page = PageId(next);
        }
    }

    /// Collect all live records (convenience for tests and small scans).
    pub fn scan_all(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.scan(|_, r| out.push(r.to_vec()));
        out
    }

    /// The page ids of the chain, in scan order. Useful for demand-driven
    /// page-at-a-time scans (the execution engine's table scan). Served
    /// from the maintained chain cache — no disk reads.
    pub fn pages(&self) -> Vec<PageId> {
        self.chain.lock().clone()
    }

    /// All live records of one page (copied out; the pin is released on
    /// return).
    pub fn page_records(&self, page: PageId) -> Vec<Vec<u8>> {
        self.pool
            .with_page(page, |p, _| p.records().map(|(_, r)| r.to_vec()).collect())
    }

    /// All live records of one page, bulk-copied into a caller-owned
    /// arena; `spans` records each record's `(offset, len)` within it.
    ///
    /// One `extend_from_slice` per record into a reused buffer instead
    /// of one heap allocation per record ([`HeapFile::page_records`]):
    /// callers that recycle `arena` and `spans` across pages read in an
    /// allocation-free steady state. Both buffers are cleared first.
    pub fn page_records_into(
        &self,
        page: PageId,
        arena: &mut Vec<u8>,
        spans: &mut Vec<(u32, u32)>,
    ) {
        arena.clear();
        spans.clear();
        self.pool.with_page(page, |p, _| {
            for (_, rec) in p.records() {
                spans.push((arena.len() as u32, rec.len() as u32));
                arena.extend_from_slice(rec);
            }
        });
    }

    /// Visit every record of `page` in slot order while the page is
    /// pinned in the pool: the caller decodes straight from page
    /// memory, with no staging copy of the record bytes.
    pub fn for_page_records(&self, page: PageId, mut f: impl FnMut(&[u8])) {
        self.pool.with_page(page, |p, _| {
            for (_, rec) in p.records() {
                f(rec);
            }
        });
    }

    /// Number of pages in the chain.
    pub fn num_pages(&self) -> usize {
        self.chain.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn heap(cap: usize) -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), cap));
        HeapFile::create(pool)
    }

    #[test]
    fn insert_scan_roundtrip() {
        let h = heap(8);
        for i in 0..100 {
            h.insert(format!("record-{i:03}").as_bytes());
        }
        let all = h.scan_all();
        assert_eq!(all.len(), 100);
        assert_eq!(all[0], b"record-000");
        assert_eq!(all[99], b"record-099");
    }

    #[test]
    fn arena_page_read_matches_per_record_read() {
        let h = heap(8);
        for i in 0..100 {
            h.insert(format!("record-{i:03}").as_bytes());
        }
        let mut arena = Vec::new();
        let mut spans = Vec::new();
        for page in h.pages() {
            let individual = h.page_records(page);
            h.page_records_into(page, &mut arena, &mut spans);
            assert_eq!(spans.len(), individual.len());
            for (rec, &(off, len)) in individual.iter().zip(&spans) {
                assert_eq!(&arena[off as usize..(off + len) as usize], &rec[..]);
            }
        }
    }

    #[test]
    fn spills_across_pages() {
        let h = heap(16);
        let big = vec![42u8; 1000];
        for _ in 0..20 {
            h.insert(&big);
        }
        assert!(h.num_pages() > 1);
        assert_eq!(h.scan_all().len(), 20);
    }

    #[test]
    fn get_and_delete() {
        let h = heap(8);
        let id = h.insert(b"target");
        assert_eq!(h.get(id), Some(b"target".to_vec()));
        assert!(h.delete(id));
        assert_eq!(h.get(id), None);
        assert!(!h.delete(id));
        assert_eq!(h.scan_all().len(), 0);
    }

    #[test]
    fn works_through_tiny_buffer_pool() {
        // Pool smaller than the file forces eviction + re-read during the
        // scan.
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2));
        let h = HeapFile::create(pool.clone());
        let big = vec![7u8; 1500];
        for _ in 0..12 {
            h.insert(&big);
        }
        assert!(h.num_pages() >= 6);
        assert_eq!(h.scan_all().len(), 12);
        let (_, misses, evictions) = pool.stats();
        assert!(misses > 0);
        assert!(evictions > 0);
    }

    /// Regression for the append-vs-scan race: writer threads hammer
    /// `insert` while reader threads repeatedly `scan` and read pages
    /// through the chain cache. Every scan must observe a
    /// prefix-consistent snapshot (no torn records, no phantom empty
    /// tail pages hiding earlier records), and once the writers finish
    /// a final scan must see every record exactly once.
    #[test]
    fn concurrent_insert_and_scan() {
        // Undersized pool: eviction + re-read race with the appenders.
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4));
        let h = Arc::new(HeapFile::create(pool));
        let writers = 4;
        let per_writer = 200;
        std::thread::scope(|s| {
            for w in 0..writers {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per_writer {
                        // ~40-byte records so the chain grows during the
                        // run and scans race page appends.
                        h.insert(format!("writer-{w}-record-{i:05}-{}", "x".repeat(16)).as_bytes());
                    }
                });
            }
            for _ in 0..2 {
                let h = h.clone();
                s.spawn(move || {
                    let mut last_seen = 0usize;
                    for _ in 0..50 {
                        let mut seen = 0usize;
                        h.scan(|_, rec| {
                            assert!(
                                rec.starts_with(b"writer-"),
                                "torn or corrupt record observed mid-scan"
                            );
                            seen += 1;
                        });
                        // The heap is append-only, so consecutive scans
                        // can never shrink.
                        assert!(
                            seen >= last_seen,
                            "scan went backwards: {seen} < {last_seen}"
                        );
                        last_seen = seen;
                        // Page-at-a-time path (chain-cache snapshot).
                        let mut via_pages = 0usize;
                        for page in h.pages() {
                            via_pages += h.page_records(page).len();
                        }
                        assert!(via_pages >= 1, "chain snapshot lost the first page");
                    }
                });
            }
        });
        let all = h.scan_all();
        assert_eq!(
            all.len(),
            writers * per_writer,
            "records lost or duplicated"
        );
    }

    #[test]
    fn reopen_appends_at_tail() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 8));
        let h = HeapFile::create(pool.clone());
        let big = vec![1u8; 1500];
        for _ in 0..5 {
            h.insert(&big);
        }
        let first = h.first_page();
        let reopened = HeapFile::open(pool, first);
        reopened.insert(b"tail record");
        let all = reopened.scan_all();
        assert_eq!(all.len(), 6);
        assert_eq!(all.last().unwrap(), b"tail record");
    }
}
