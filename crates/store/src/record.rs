//! Record serialization: a compact, self-describing byte encoding for
//! rows of typed values, independent of any schema registry.
//!
//! Encoding per field: 1 tag byte, then
//! * `0` NULL — nothing
//! * `1` Bool — 1 byte
//! * `2` Int — 8 bytes little-endian
//! * `3` Float — 8 bytes IEEE-754 little-endian
//! * `4` Str — u32 length + UTF-8 bytes

use bytes::{Buf, BufMut, BytesMut};

/// A field value as stored on a page. Mirrors `volcano_rel::Value`
/// structurally without depending on it (the storage crate stays below
/// the model crates in the dependency graph).
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

/// Errors from [`decode_record`].
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// String field is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown field tag {t}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a row into bytes.
pub fn encode_record(fields: &[Field]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(fields.len() * 9);
    buf.put_u16_le(fields.len() as u16);
    for f in fields {
        match f {
            Field::Null => buf.put_u8(0),
            Field::Bool(b) => {
                buf.put_u8(1);
                buf.put_u8(*b as u8);
            }
            Field::Int(i) => {
                buf.put_u8(2);
                buf.put_i64_le(*i);
            }
            Field::Float(x) => {
                buf.put_u8(3);
                buf.put_f64_le(*x);
            }
            Field::Str(s) => {
                buf.put_u8(4);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
    buf.to_vec()
}

/// Decode a row from bytes.
pub fn decode_record(bytes: &[u8]) -> Result<Vec<Field>, DecodeError> {
    let mut out = Vec::new();
    decode_record_fields(bytes, |f| out.push(f))?;
    Ok(out)
}

/// Decode a row field by field, invoking `emit` once per field in
/// position order, and return the field count.
///
/// This is the allocation-free entry point for columnar consumers: a
/// caller that routes each field straight into a typed column vector
/// never materializes the intermediate `Vec<Field>` row that
/// [`decode_record`] builds.
pub fn decode_record_fields(
    mut bytes: &[u8],
    mut emit: impl FnMut(Field),
) -> Result<usize, DecodeError> {
    if bytes.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n = bytes.get_u16_le() as usize;
    for _ in 0..n {
        if bytes.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = bytes.get_u8();
        let field = match tag {
            0 => Field::Null,
            1 => {
                if bytes.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                Field::Bool(bytes.get_u8() != 0)
            }
            2 => {
                if bytes.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                Field::Int(bytes.get_i64_le())
            }
            3 => {
                if bytes.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                Field::Float(bytes.get_f64_le())
            }
            4 => {
                if bytes.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let len = bytes.get_u32_le() as usize;
                if bytes.remaining() < len {
                    return Err(DecodeError::Truncated);
                }
                let s = std::str::from_utf8(&bytes[..len])
                    .map_err(|_| DecodeError::BadUtf8)?
                    .to_string();
                bytes.advance(len);
                Field::Str(s)
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        emit(field);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = vec![
            Field::Null,
            Field::Bool(true),
            Field::Int(-42),
            Field::Float(2.5),
            Field::Str("héllo".to_string()),
        ];
        let bytes = encode_record(&row);
        assert_eq!(decode_record(&bytes).unwrap(), row);
    }

    #[test]
    fn streaming_decode_matches_vec_decode() {
        let row = vec![
            Field::Int(5),
            Field::Null,
            Field::Str("abc".to_string()),
            Field::Float(-1.5),
        ];
        let bytes = encode_record(&row);
        let mut streamed = Vec::new();
        let n = decode_record_fields(&bytes, |f| streamed.push(f)).unwrap();
        assert_eq!(n, row.len());
        assert_eq!(streamed, row);
        assert!(decode_record_fields(&bytes[..1], |_| {}).is_err());
    }

    #[test]
    fn empty_row() {
        let bytes = encode_record(&[]);
        assert_eq!(decode_record(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn truncated_fails() {
        let bytes = encode_record(&[Field::Int(1)]);
        assert_eq!(
            decode_record(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode_record(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_tag_fails() {
        let mut bytes = encode_record(&[Field::Int(1)]);
        bytes[2] = 99;
        assert_eq!(decode_record(&bytes), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn bad_utf8_fails() {
        let mut bytes = encode_record(&[Field::Str("ab".into())]);
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert_eq!(decode_record(&bytes), Err(DecodeError::BadUtf8));
    }
}
