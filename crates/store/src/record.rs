//! Record serialization: a compact, self-describing byte encoding for
//! rows of typed values, independent of any schema registry.
//!
//! Encoding per field: 1 tag byte, then
//! * `0` NULL — nothing
//! * `1` Bool — 1 byte
//! * `2` Int — 8 bytes little-endian
//! * `3` Float — 8 bytes IEEE-754 little-endian
//! * `4` Str — u32 length + UTF-8 bytes

use bytes::{Buf, BufMut, BytesMut};

/// A field value as stored on a page. Mirrors `volcano_rel::Value`
/// structurally without depending on it (the storage crate stays below
/// the model crates in the dependency graph).
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

/// Errors from [`decode_record`].
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// String field is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown field tag {t}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a row into bytes.
pub fn encode_record(fields: &[Field]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(fields.len() * 9);
    buf.put_u16_le(fields.len() as u16);
    for f in fields {
        match f {
            Field::Null => buf.put_u8(0),
            Field::Bool(b) => {
                buf.put_u8(1);
                buf.put_u8(*b as u8);
            }
            Field::Int(i) => {
                buf.put_u8(2);
                buf.put_i64_le(*i);
            }
            Field::Float(x) => {
                buf.put_u8(3);
                buf.put_f64_le(*x);
            }
            Field::Str(s) => {
                buf.put_u8(4);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
    buf.to_vec()
}

/// Decode a row from bytes.
pub fn decode_record(bytes: &[u8]) -> Result<Vec<Field>, DecodeError> {
    let mut out = Vec::new();
    decode_record_fields(bytes, |f| out.push(f))?;
    Ok(out)
}

/// Decode a row field by field, invoking `emit` once per field in
/// position order, and return the field count.
///
/// This is the allocation-free entry point for columnar consumers: a
/// caller that routes each field straight into a typed column vector
/// never materializes the intermediate `Vec<Field>` row that
/// [`decode_record`] builds.
pub fn decode_record_fields(
    mut bytes: &[u8],
    mut emit: impl FnMut(Field),
) -> Result<usize, DecodeError> {
    if bytes.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n = bytes.get_u16_le() as usize;
    for _ in 0..n {
        if bytes.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = bytes.get_u8();
        let field = match tag {
            0 => Field::Null,
            1 => {
                if bytes.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                Field::Bool(bytes.get_u8() != 0)
            }
            2 => {
                if bytes.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                Field::Int(bytes.get_i64_le())
            }
            3 => {
                if bytes.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                Field::Float(bytes.get_f64_le())
            }
            4 => {
                if bytes.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let len = bytes.get_u32_le() as usize;
                if bytes.remaining() < len {
                    return Err(DecodeError::Truncated);
                }
                let s = std::str::from_utf8(&bytes[..len])
                    .map_err(|_| DecodeError::BadUtf8)?
                    .to_string();
                bytes.advance(len);
                Field::Str(s)
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        emit(field);
    }
    Ok(n)
}

/// Decode only the fields selected by `keep`, invoking `emit` once per
/// kept field in position order, and return the total field count.
///
/// Fields whose position is `false` in `keep` (or beyond its length)
/// are *skipped*, not decoded: the cursor advances past their payload
/// without materializing a value — in particular a skipped string is
/// never UTF-8 validated or copied. Fields past the *last* kept
/// position are not even walked — the decoder returns as soon as the
/// final kept field is emitted, so their bytes are never validated at
/// all. This is the projection-pushdown entry point for the fused
/// scan: a query touching 2 of 8 columns pays tag-walk and decode cost
/// for a prefix ending at its last kept column.
pub fn decode_record_projected(
    mut bytes: &[u8],
    keep: &[bool],
    mut emit: impl FnMut(Field),
) -> Result<usize, DecodeError> {
    if bytes.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n = bytes.get_u16_le() as usize;
    let Some(last) = keep.iter().rposition(|&k| k) else {
        return Ok(n);
    };
    for pos in 0..n.min(last + 1) {
        if bytes.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = bytes.get_u8();
        let wanted = keep.get(pos).copied().unwrap_or(false);
        match tag {
            0 => {
                if wanted {
                    emit(Field::Null);
                }
            }
            1 => {
                if bytes.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let b = bytes.get_u8();
                if wanted {
                    emit(Field::Bool(b != 0));
                }
            }
            2 => {
                if bytes.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                if wanted {
                    emit(Field::Int(bytes.get_i64_le()));
                } else {
                    bytes.advance(8);
                }
            }
            3 => {
                if bytes.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                if wanted {
                    emit(Field::Float(bytes.get_f64_le()));
                } else {
                    bytes.advance(8);
                }
            }
            4 => {
                if bytes.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let len = bytes.get_u32_le() as usize;
                if bytes.remaining() < len {
                    return Err(DecodeError::Truncated);
                }
                if wanted {
                    let s = std::str::from_utf8(&bytes[..len])
                        .map_err(|_| DecodeError::BadUtf8)?
                        .to_string();
                    emit(Field::Str(s));
                }
                bytes.advance(len);
            }
            t => return Err(DecodeError::BadTag(t)),
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = vec![
            Field::Null,
            Field::Bool(true),
            Field::Int(-42),
            Field::Float(2.5),
            Field::Str("héllo".to_string()),
        ];
        let bytes = encode_record(&row);
        assert_eq!(decode_record(&bytes).unwrap(), row);
    }

    #[test]
    fn streaming_decode_matches_vec_decode() {
        let row = vec![
            Field::Int(5),
            Field::Null,
            Field::Str("abc".to_string()),
            Field::Float(-1.5),
        ];
        let bytes = encode_record(&row);
        let mut streamed = Vec::new();
        let n = decode_record_fields(&bytes, |f| streamed.push(f)).unwrap();
        assert_eq!(n, row.len());
        assert_eq!(streamed, row);
        assert!(decode_record_fields(&bytes[..1], |_| {}).is_err());
    }

    #[test]
    fn projected_decode_skips_unkept_fields() {
        let row = vec![
            Field::Int(5),
            Field::Str("skip me".to_string()),
            Field::Null,
            Field::Float(-1.5),
            Field::Bool(true),
        ];
        let bytes = encode_record(&row);
        let keep = [true, false, true, false, true];
        let mut kept = Vec::new();
        let n = decode_record_projected(&bytes, &keep, |f| kept.push(f)).unwrap();
        assert_eq!(n, row.len());
        assert_eq!(kept, vec![Field::Int(5), Field::Null, Field::Bool(true)]);

        // A short mask drops the tail fields.
        let mut head = Vec::new();
        decode_record_projected(&bytes, &[true], |f| head.push(f)).unwrap();
        assert_eq!(head, vec![Field::Int(5)]);

        // Keeping everything matches the full decoder.
        let all = vec![true; row.len()];
        let mut full = Vec::new();
        decode_record_projected(&bytes, &all, |f| full.push(f)).unwrap();
        assert_eq!(full, row);
    }

    #[test]
    fn projected_decode_skips_invalid_utf8_without_error() {
        // A skipped string is never validated: corrupt bytes in an
        // unkept field must not fail the row.
        let mut bytes = encode_record(&[Field::Str("ab".into()), Field::Int(7)]);
        bytes[7] = 0xFF; // corrupt the string payload
        let mut kept = Vec::new();
        decode_record_projected(&bytes, &[false, true], |f| kept.push(f)).unwrap();
        assert_eq!(kept, vec![Field::Int(7)]);
        // But a *kept* corrupt string still fails.
        assert_eq!(
            decode_record_projected(&bytes, &[true, true], |_| {}),
            Err(DecodeError::BadUtf8)
        );
    }

    #[test]
    fn projected_decode_truncation_fails_only_before_last_kept_field() {
        let bytes = encode_record(&[Field::Int(1), Field::Int(2)]);
        // Truncation inside a kept field (or a skipped one before it)
        // still fails.
        assert_eq!(
            decode_record_projected(&bytes[..bytes.len() - 1], &[false, true], |_| {}),
            Err(DecodeError::Truncated)
        );
        // But bytes past the last kept field are never walked: the same
        // truncated record decodes cleanly under a shorter mask.
        let mut kept = Vec::new();
        let n =
            decode_record_projected(&bytes[..bytes.len() - 1], &[true, false], |f| kept.push(f));
        assert_eq!(n, Ok(2));
        assert_eq!(kept, vec![Field::Int(1)]);
        // An all-false mask walks nothing at all.
        assert_eq!(
            decode_record_projected(&bytes[..2], &[false, false], |_| {}),
            Ok(2)
        );
    }

    #[test]
    fn empty_row() {
        let bytes = encode_record(&[]);
        assert_eq!(decode_record(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn truncated_fails() {
        let bytes = encode_record(&[Field::Int(1)]);
        assert_eq!(
            decode_record(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode_record(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_tag_fails() {
        let mut bytes = encode_record(&[Field::Int(1)]);
        bytes[2] = 99;
        assert_eq!(decode_record(&bytes), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn bad_utf8_fails() {
        let mut bytes = encode_record(&[Field::Str("ab".into())]);
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert_eq!(decode_record(&bytes), Err(DecodeError::BadUtf8));
    }
}
