//! A B+tree index over pages: fixed-size `i64` keys mapping to record
//! ids, with duplicates allowed. Supports insertion and ordered
//! (range-)scans — exactly what an index scan needs to deliver a sort
//! order as a physical property.
//!
//! Layout (within one 4 KiB page, reusing the slotted-page machinery
//! would waste space; index pages use their own fixed layout):
//!
//! ```text
//! header: kind (1 B: 0 leaf, 1 internal), count (2 B), next_leaf (4 B)
//! leaf entries:     key (8 B) + page (4 B) + slot (2 B)   = 14 B
//! internal entries: key (8 B) + child page (4 B)          = 12 B
//!                   (child[i] covers keys <= key[i]; the last child
//!                    pointer is stored with key = i64::MAX)
//! ```

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::buffer::BufferPool;
use crate::heap::RecordId;
use crate::page::{Page, PageId, PAGE_SIZE};

const HDR: usize = 7;
const LEAF_ENTRY: usize = 14;
const INTERNAL_ENTRY: usize = 12;
const LEAF_CAP: usize = (PAGE_SIZE - HDR) / LEAF_ENTRY;
const INTERNAL_CAP: usize = (PAGE_SIZE - HDR) / INTERNAL_ENTRY;
/// Sentinel for "no next leaf".
const NO_LEAF: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Leaf,
    Internal,
}

/// Typed view over a raw page used as a B+tree node.
struct Node {
    page: Page,
}

impl Node {
    fn new_leaf() -> Self {
        let mut n = Node { page: Page::new() };
        n.raw_mut()[0] = 0;
        n.set_count(0);
        n.set_next_leaf(NO_LEAF);
        n
    }

    fn new_internal() -> Self {
        let mut n = Node { page: Page::new() };
        n.raw_mut()[0] = 1;
        n.set_count(0);
        n.set_next_leaf(NO_LEAF);
        n
    }

    fn from_page(page: Page) -> Self {
        Node { page }
    }

    fn raw(&self) -> &[u8; PAGE_SIZE] {
        self.page.bytes()
    }

    fn raw_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        self.page.bytes_mut()
    }

    fn kind(&self) -> Kind {
        if self.raw()[0] == 0 {
            Kind::Leaf
        } else {
            Kind::Internal
        }
    }

    fn count(&self) -> usize {
        u16::from_le_bytes([self.raw()[1], self.raw()[2]]) as usize
    }

    fn set_count(&mut self, c: usize) {
        let b = (c as u16).to_le_bytes();
        self.raw_mut()[1] = b[0];
        self.raw_mut()[2] = b[1];
    }

    fn next_leaf(&self) -> u32 {
        u32::from_le_bytes([self.raw()[3], self.raw()[4], self.raw()[5], self.raw()[6]])
    }

    fn set_next_leaf(&mut self, p: u32) {
        self.raw_mut()[3..7].copy_from_slice(&p.to_le_bytes());
    }

    // ----- leaf entries -----

    fn leaf_key(&self, i: usize) -> i64 {
        let off = HDR + i * LEAF_ENTRY;
        i64::from_le_bytes(self.raw()[off..off + 8].try_into().expect("8 bytes"))
    }

    fn leaf_rid(&self, i: usize) -> RecordId {
        let off = HDR + i * LEAF_ENTRY + 8;
        let page = u32::from_le_bytes(self.raw()[off..off + 4].try_into().expect("4 bytes"));
        let slot = u16::from_le_bytes(self.raw()[off + 4..off + 6].try_into().expect("2 bytes"));
        RecordId {
            page: PageId(page),
            slot: slot as usize,
        }
    }

    fn leaf_insert_at(&mut self, i: usize, key: i64, rid: RecordId) {
        let count = self.count();
        assert!(count < LEAF_CAP);
        let start = HDR + i * LEAF_ENTRY;
        let end = HDR + count * LEAF_ENTRY;
        self.raw_mut().copy_within(start..end, start + LEAF_ENTRY);
        self.raw_mut()[start..start + 8].copy_from_slice(&key.to_le_bytes());
        self.raw_mut()[start + 8..start + 12].copy_from_slice(&rid.page.0.to_le_bytes());
        self.raw_mut()[start + 12..start + 14].copy_from_slice(&(rid.slot as u16).to_le_bytes());
        self.set_count(count + 1);
    }

    // ----- internal entries -----

    fn int_key(&self, i: usize) -> i64 {
        let off = HDR + i * INTERNAL_ENTRY;
        i64::from_le_bytes(self.raw()[off..off + 8].try_into().expect("8 bytes"))
    }

    fn int_child(&self, i: usize) -> PageId {
        let off = HDR + i * INTERNAL_ENTRY + 8;
        PageId(u32::from_le_bytes(
            self.raw()[off..off + 4].try_into().expect("4 bytes"),
        ))
    }

    fn int_insert_at(&mut self, i: usize, key: i64, child: PageId) {
        let count = self.count();
        assert!(count < INTERNAL_CAP);
        let start = HDR + i * INTERNAL_ENTRY;
        let end = HDR + count * INTERNAL_ENTRY;
        self.raw_mut()
            .copy_within(start..end, start + INTERNAL_ENTRY);
        self.raw_mut()[start..start + 8].copy_from_slice(&key.to_le_bytes());
        self.raw_mut()[start + 8..start + 12].copy_from_slice(&child.0.to_le_bytes());
        self.set_count(count + 1);
    }

    /// Position of the child covering `key`.
    fn int_child_for(&self, key: i64) -> usize {
        let n = self.count();
        for i in 0..n {
            if key <= self.int_key(i) {
                return i;
            }
        }
        n - 1
    }
}

/// A B+tree index mapping `i64` keys to [`RecordId`]s (duplicates
/// allowed).
pub struct BTree {
    pool: Arc<BufferPool>,
    root: Mutex<PageId>,
    /// Tree-level latch: an insert may restructure several pages (leaf
    /// and internal splits, root replacement), so it holds the latch
    /// exclusively; scans hold it shared for the whole descent + leaf
    /// walk and therefore always observe a structurally consistent
    /// tree. Coarse, but correct — per-node latch coupling is a later
    /// optimization. Never acquired while holding a buffer-pool frame
    /// latch (all page access goes through `with_page`, which returns
    /// before the next tree-level operation).
    latch: RwLock<()>,
}

impl BTree {
    /// Create an empty index.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        let root = pool.allocate();
        let leaf = Node::new_leaf();
        pool.with_page(root, |p, dirty| {
            *p = leaf.page.clone();
            *dirty = true;
        });
        BTree {
            pool,
            root: Mutex::new(root),
            latch: RwLock::new(()),
        }
    }

    /// The current root page (persist to re-open).
    pub fn root_page(&self) -> PageId {
        *self.root.lock()
    }

    fn read(&self, id: PageId) -> Node {
        self.pool.with_page(id, |p, _| Node::from_page(p.clone()))
    }

    fn write(&self, id: PageId, node: &Node) {
        self.pool.with_page(id, |p, dirty| {
            *p = node.page.clone();
            *dirty = true;
        });
    }

    /// Insert a key → record mapping.
    pub fn insert(&self, key: i64, rid: RecordId) {
        // Exclusive: splits rewrite multiple pages and must not be
        // observed half-done (see the `latch` field docs).
        let _w = self.latch.write();
        let root_id = *self.root.lock();
        if let Some((sep, new_right)) = self.insert_rec(root_id, key, rid) {
            // Root split: create a new internal root.
            let new_root_id = self.pool.allocate();
            let mut new_root = Node::new_internal();
            new_root.int_insert_at(0, sep, root_id);
            new_root.int_insert_at(1, i64::MAX, new_right);
            self.write(new_root_id, &new_root);
            *self.root.lock() = new_root_id;
        }
    }

    /// Recursive insert; returns `(separator, new right sibling)` when
    /// the child split.
    fn insert_rec(&self, node_id: PageId, key: i64, rid: RecordId) -> Option<(i64, PageId)> {
        let mut node = self.read(node_id);
        match node.kind() {
            Kind::Leaf => {
                let n = node.count();
                let mut pos = n;
                for i in 0..n {
                    if key < node.leaf_key(i) {
                        pos = i;
                        break;
                    }
                }
                node.leaf_insert_at(pos, key, rid);
                if node.count() < LEAF_CAP {
                    self.write(node_id, &node);
                    return None;
                }
                // Split the full leaf.
                let mid = node.count() / 2;
                let mut right = Node::new_leaf();
                for i in mid..node.count() {
                    right.leaf_insert_at(i - mid, node.leaf_key(i), node.leaf_rid(i));
                }
                right.set_next_leaf(node.next_leaf());
                let right_id = self.pool.allocate();
                node.set_count(mid);
                node.set_next_leaf(right_id.0);
                let sep = node.leaf_key(mid - 1);
                self.write(node_id, &node);
                self.write(right_id, &right);
                Some((sep, right_id))
            }
            Kind::Internal => {
                let ci = node.int_child_for(key);
                let child = node.int_child(ci);
                let split = self.insert_rec(child, key, rid)?;
                let (sep, new_right) = split;
                // The child split: its old slot keeps the right half's
                // upper bound; insert the left half with the separator.
                // The left half keeps the old slot's position with the
                // separator as its upper bound; the displaced entry (now
                // at ci+1) keeps its key but must point at the new right
                // sibling.
                node.int_insert_at(ci, sep, child);
                let off = HDR + (ci + 1) * INTERNAL_ENTRY + 8;
                node.raw_mut()[off..off + 4].copy_from_slice(&new_right.0.to_le_bytes());
                if node.count() < INTERNAL_CAP {
                    self.write(node_id, &node);
                    return None;
                }
                // Split the internal node.
                let mid = node.count() / 2;
                let mut right = Node::new_internal();
                for i in mid..node.count() {
                    right.int_insert_at(i - mid, node.int_key(i), node.int_child(i));
                }
                let right_id = self.pool.allocate();
                let sep_up = node.int_key(mid - 1);
                node.set_count(mid);
                self.write(node_id, &node);
                self.write(right_id, &right);
                Some((sep_up, right_id))
            }
        }
    }

    /// Visit all entries with `key >= low` in key order; stop when `f`
    /// returns `false`.
    pub fn scan_from(&self, low: i64, mut f: impl FnMut(i64, RecordId) -> bool) {
        // Shared: excludes structural changes for the whole walk.
        // Concurrent scans proceed together. `f` must not call back
        // into a mutating method of the same tree.
        let _r = self.latch.read();
        // Descend to the leaf covering `low`.
        let mut id = *self.root.lock();
        loop {
            let node = self.read(id);
            match node.kind() {
                Kind::Internal => {
                    id = node.int_child(node.int_child_for(low));
                }
                Kind::Leaf => break,
            }
        }
        // Walk the leaf chain.
        loop {
            let node = self.read(id);
            for i in 0..node.count() {
                let k = node.leaf_key(i);
                if k < low {
                    continue;
                }
                if !f(k, node.leaf_rid(i)) {
                    return;
                }
            }
            let next = node.next_leaf();
            if next == NO_LEAF {
                return;
            }
            id = PageId(next);
        }
    }

    /// All entries in key order.
    pub fn scan_all(&self) -> Vec<(i64, RecordId)> {
        let mut out = Vec::new();
        self.scan_from(i64::MIN, |k, r| {
            out.push((k, r));
            true
        });
        out
    }

    /// Entries with keys in `[low, high]`.
    pub fn range(&self, low: i64, high: i64) -> Vec<(i64, RecordId)> {
        let mut out = Vec::new();
        self.scan_from(low, |k, r| {
            if k > high {
                false
            } else {
                out.push((k, r));
                true
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        BTree::create(pool)
    }

    fn rid(n: u32) -> RecordId {
        RecordId {
            page: PageId(n),
            slot: (n % 7) as usize,
        }
    }

    #[test]
    fn sorted_scan_small() {
        let t = tree();
        for k in [5i64, 1, 9, 3, 7] {
            t.insert(k, rid(k as u32));
        }
        let keys: Vec<i64> = t.scan_all().iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn many_keys_split_leaves_and_internals() {
        let t = tree();
        // Insert a few thousand keys in pseudo-random order: forces
        // multiple levels (leaf cap ≈ 292).
        let mut keys: Vec<i64> = (0..5000).collect();
        let mut s = 12345u64;
        for i in (1..keys.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 16) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(k, rid(k as u32));
        }
        let scanned = t.scan_all();
        assert_eq!(scanned.len(), 5000);
        for (i, &(k, r)) in scanned.iter().enumerate() {
            assert_eq!(k, i as i64, "keys in order");
            assert_eq!(r, rid(k as u32), "record ids preserved");
        }
    }

    #[test]
    fn duplicates_are_kept() {
        let t = tree();
        for i in 0..10 {
            t.insert(42, rid(i));
        }
        t.insert(41, rid(100));
        t.insert(43, rid(101));
        let hits = t.range(42, 42);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn range_scans() {
        let t = tree();
        for k in 0..1000 {
            t.insert(k, rid(k as u32));
        }
        let r = t.range(100, 199);
        assert_eq!(r.len(), 100);
        assert_eq!(r[0].0, 100);
        assert_eq!(r[99].0, 199);
        assert!(t.range(2000, 3000).is_empty());
        // scan_from with early stop.
        let mut seen = 0;
        t.scan_from(990, |_, _| {
            seen += 1;
            seen < 5
        });
        assert_eq!(seen, 5);
    }

    /// Regression: concurrent inserters (forcing leaf/internal splits)
    /// racing ordered scans. Without the tree-level latch a scan could
    /// descend through a half-applied split and miss or duplicate
    /// keys; with it, every scan sees a consistent tree and the final
    /// scan sees every key exactly once, in order.
    #[test]
    fn concurrent_inserts_and_scans() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        let t = Arc::new(BTree::create(pool));
        let writers = 4;
        let per_writer = 1000usize;
        std::thread::scope(|s| {
            for w in 0..writers as i64 {
                let t = t.clone();
                s.spawn(move || {
                    // Disjoint interleaved key ranges per writer.
                    for i in 0..per_writer as i64 {
                        let k = i * writers as i64 + w;
                        t.insert(k, rid(k as u32));
                    }
                });
            }
            for _ in 0..2 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..30 {
                        let scanned = t.scan_all();
                        // Keys must be strictly ordered (all keys are
                        // distinct here): an unordered or duplicated
                        // sequence means a torn split was observed.
                        for pair in scanned.windows(2) {
                            assert!(
                                pair[0].0 < pair[1].0,
                                "scan saw out-of-order/duplicate keys {} >= {}",
                                pair[0].0,
                                pair[1].0
                            );
                        }
                    }
                });
            }
        });
        let scanned = t.scan_all();
        assert_eq!(scanned.len(), writers * per_writer);
        for (i, &(k, r)) in scanned.iter().enumerate() {
            assert_eq!(k, i as i64);
            assert_eq!(r, rid(k as u32));
        }
    }

    #[test]
    fn negative_and_extreme_keys() {
        let t = tree();
        for k in [-5i64, 0, 5, i64::MIN + 1, 1_000_000] {
            t.insert(k, rid(1));
        }
        let keys: Vec<i64> = t.scan_all().iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![i64::MIN + 1, -5, 0, 5, 1_000_000]);
    }
}
