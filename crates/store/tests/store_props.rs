//! Property-based tests of the storage layer: pages and heap files
//! behave like their obvious in-memory models under arbitrary operation
//! sequences, and records survive arbitrary round trips.

use proptest::prelude::*;
use std::sync::Arc;
use volcano_store::record::{decode_record, encode_record, Field};
use volcano_store::{BufferPool, HeapFile, MemDisk, Page};

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        Just(Field::Null),
        any::<bool>().prop_map(Field::Bool),
        any::<i64>().prop_map(Field::Int),
        (-1e300f64..1e300).prop_map(Field::Float),
        "[a-zA-Z0-9 _-]{0,40}".prop_map(Field::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Record encoding round-trips arbitrary rows.
    #[test]
    fn record_roundtrip(row in proptest::collection::vec(arb_field(), 0..12)) {
        let bytes = encode_record(&row);
        prop_assert_eq!(decode_record(&bytes).unwrap(), row);
    }

    /// Truncating an encoded record never panics and never succeeds with
    /// wrong data of the same arity.
    #[test]
    fn record_truncation_is_detected(
        row in proptest::collection::vec(arb_field(), 1..8),
        cut in 1usize..64,
    ) {
        let bytes = encode_record(&row);
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            match decode_record(truncated) {
                Err(_) => {}
                Ok(decoded) => {
                    // Decoding may stop early only if the cut removed
                    // whole trailing fields — it must never fabricate
                    // values (and the declared arity makes that
                    // impossible: fewer bytes, same field count → error).
                    prop_assert_eq!(decoded, row);
                }
            }
        }
    }

    /// A page behaves like a Vec<Option<Vec<u8>>> under insert/delete.
    #[test]
    fn page_matches_model(ops in proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..120).prop_map(Some),
            (0usize..30).prop_map(|_| None),
        ],
        1..60,
    ), delete_seed in any::<u64>()) {
        let mut page = Page::new();
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        let mut seed = delete_seed;
        for op in ops {
            match op {
                Some(rec) => {
                    match page.insert(&rec) {
                        Some(slot) => {
                            prop_assert_eq!(slot, model.len());
                            model.push(Some(rec));
                        }
                        None => {
                            // Page full for this record size; the model
                            // is unchanged.
                        }
                    }
                }
                None if !model.is_empty() => {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let idx = (seed >> 16) as usize % model.len();
                    let expect = model[idx].is_some();
                    prop_assert_eq!(page.delete(idx), expect);
                    model[idx] = None;
                }
                None => {}
            }
        }
        // Full comparison.
        prop_assert_eq!(page.slot_count(), model.len());
        for (i, rec) in model.iter().enumerate() {
            prop_assert_eq!(page.get(i), rec.as_deref());
        }
        let live: Vec<Vec<u8>> = page.records().map(|(_, r)| r.to_vec()).collect();
        let model_live: Vec<Vec<u8>> = model.iter().flatten().cloned().collect();
        prop_assert_eq!(live, model_live);
    }

    /// Heap files preserve insertion order across pages and arbitrary
    /// buffer-pool sizes.
    #[test]
    fn heap_scan_order(
        recs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..400), 1..80),
        pool_pages in 2usize..16,
    ) {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), pool_pages));
        let heap = HeapFile::create(pool);
        for r in &recs {
            heap.insert(r);
        }
        prop_assert_eq!(heap.scan_all(), recs);
    }
}
