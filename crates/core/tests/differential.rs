//! Differential tests: serial and parallel exploration must be
//! indistinguishable — identical memos and identical statistics on the
//! same input — and a panicking rule inside a parallel worker must
//! surface as an [`OptimizeError::RulePanicked`], not abort the process.

use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
use volcano_core::{
    Binding, ExprTree, OptimizeError, Optimizer, Pattern, PhysicalProps, RuleCtx, SearchOptions,
    SubstExpr, TransformationRule,
};

type Tree = ExprTree<ToyModel>;

fn chain(n: usize) -> (ToyModel, Tree) {
    let tables: Vec<(String, u64)> = (0..n)
        .map(|i| (format!("t{i}"), 100 + 211 * i as u64))
        .collect();
    let refs: Vec<(&str, u64)> = tables.iter().map(|(s, c)| (s.as_str(), *c)).collect();
    let model = ToyModel::with_tables(&refs);
    let mut e = Tree::leaf(ToyOp::Get("t0".into()));
    for i in 1..n {
        e = Tree::new(
            ToyOp::Join,
            vec![e, Tree::leaf(ToyOp::Get(format!("t{i}")))],
        );
    }
    (model, e)
}

/// Serial and parallel exploration run the same snapshot-pass algorithm,
/// so the resulting memos and *every* statistic (not just live contents)
/// must agree, for any thread count and either goal.
#[test]
fn parallel_exploration_stats_match_serial_exactly() {
    for n in [3usize, 4, 5, 6] {
        for sorted in [false, true] {
            let goal = if sorted {
                ToyProps::sorted()
            } else {
                ToyProps::any()
            };
            let (model, query) = chain(n);

            let mut seq = Optimizer::new(&model, SearchOptions::default());
            let sroot = seq.insert_tree(&query);
            seq.explore();
            let splan = seq.find_best_plan(sroot, goal, None).unwrap();

            for threads in [1usize, 2, 4, 8] {
                let (model, query) = chain(n);
                let mut par = Optimizer::new(&model, SearchOptions::default());
                let proot = par.insert_tree(&query);
                par.explore_parallel(threads).unwrap();
                let pplan = par.find_best_plan(proot, goal, None).unwrap();

                assert_eq!(
                    splan.compact(),
                    pplan.compact(),
                    "n={n} threads={threads} sorted={sorted}: plans diverged"
                );
                assert!(
                    (splan.cost - pplan.cost).abs() < 1e-12,
                    "n={n} threads={threads} sorted={sorted}: costs diverged"
                );
                assert_eq!(seq.memo().num_exprs(), par.memo().num_exprs());
                assert_eq!(seq.memo().num_groups(), par.memo().num_groups());
                assert_eq!(seq.memo().dead_expr_count(), par.memo().dead_expr_count());
                assert!(
                    seq.stats().counters_eq(par.stats()),
                    "n={n} threads={threads} sorted={sorted}: stats diverged\n\
                     serial:   {:?}\nparallel: {:?}",
                    seq.stats(),
                    par.stats()
                );
            }
        }
    }
}

/// A transformation rule whose condition or apply code panics, injected
/// into the toy model to exercise worker panic handling.
struct PanicOnJoin {
    pattern: Pattern<ToyModel>,
    in_condition: bool,
}

impl PanicOnJoin {
    fn new(in_condition: bool) -> Self {
        PanicOnJoin {
            pattern: Pattern::op(
                "join",
                |op: &ToyOp| matches!(op, ToyOp::Join),
                vec![Pattern::Any, Pattern::Any],
            ),
            in_condition,
        }
    }
}

impl TransformationRule<ToyModel> for PanicOnJoin {
    fn name(&self) -> &'static str {
        "panic_on_join"
    }

    fn pattern(&self) -> &Pattern<ToyModel> {
        &self.pattern
    }

    fn condition(&self, _b: &Binding<ToyModel>, _ctx: &RuleCtx<'_, ToyModel>) -> bool {
        if self.in_condition {
            panic!("deliberate panic in condition code");
        }
        true
    }

    fn apply(
        &self,
        _b: &Binding<ToyModel>,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<SubstExpr<ToyModel>> {
        panic!("deliberate panic in apply code");
    }
}

#[test]
fn worker_panic_in_apply_becomes_error() {
    let (mut model, query) = chain(4);
    model.push_transformation(Box::new(PanicOnJoin::new(false)));
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    opt.insert_tree(&query);
    match opt.explore_parallel(4) {
        Err(OptimizeError::RulePanicked { rule, message }) => {
            assert_eq!(rule, "panic_on_join");
            assert!(message.contains("deliberate panic in apply"), "{message}");
        }
        other => panic!("expected RulePanicked, got {other:?}"),
    }
}

#[test]
fn worker_panic_in_condition_becomes_error() {
    let (mut model, query) = chain(3);
    model.push_transformation(Box::new(PanicOnJoin::new(true)));
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    opt.insert_tree(&query);
    let err = opt.explore_parallel(2).unwrap_err();
    assert!(
        matches!(&err, OptimizeError::RulePanicked { rule, .. } if rule == "panic_on_join"),
        "expected RulePanicked, got {err:?}"
    );
    assert!(err.to_string().contains("panicked during exploration"));
}

/// After a caught worker panic the process — and the optimizer's memo —
/// must remain usable: a healthy optimizer on the same model still plans.
#[test]
fn process_survives_worker_panic() {
    let (mut model, query) = chain(3);
    model.push_transformation(Box::new(PanicOnJoin::new(false)));
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    opt.insert_tree(&query);
    assert!(opt.explore_parallel(2).is_err());

    let (clean_model, clean_query) = chain(3);
    let mut clean = Optimizer::new(&clean_model, SearchOptions::default());
    let root = clean.insert_tree(&clean_query);
    let plan = clean.find_best_plan(root, ToyProps::any(), None).unwrap();
    assert!(plan.cost > 0.0);
}
