//! Parallel exploration (§6 "parallel search on shared-memory machines"):
//! same memo, same optimum, any thread count.

use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
use volcano_core::{ExprTree, Optimizer, PhysicalProps, SearchOptions};

type Tree = ExprTree<ToyModel>;

fn chain(n: usize) -> (ToyModel, Tree) {
    let tables: Vec<(String, u64)> = (0..n)
        .map(|i| (format!("t{i}"), 100 + 211 * i as u64))
        .collect();
    let refs: Vec<(&str, u64)> = tables.iter().map(|(s, c)| (s.as_str(), *c)).collect();
    let model = ToyModel::with_tables(&refs);
    let mut e = Tree::leaf(ToyOp::Get("t0".into()));
    for i in 1..n {
        e = Tree::new(
            ToyOp::Join,
            vec![e, Tree::leaf(ToyOp::Get(format!("t{i}")))],
        );
    }
    (model, e)
}

#[test]
fn parallel_explore_matches_sequential() {
    for n in [3usize, 5, 7] {
        let (model, query) = chain(n);

        let mut seq = Optimizer::new(&model, SearchOptions::default());
        let sroot = seq.insert_tree(&query);
        seq.explore();
        let scost = seq
            .find_best_plan(sroot, ToyProps::any(), None)
            .unwrap()
            .cost;

        for threads in [1usize, 2, 4, 8] {
            let mut par = Optimizer::new(&model, SearchOptions::default());
            let proot = par.insert_tree(&query);
            par.explore_parallel(threads).unwrap();
            let pcost = par
                .find_best_plan(proot, ToyProps::any(), None)
                .unwrap()
                .cost;
            assert!(
                (scost - pcost).abs() < 1e-9,
                "n={n} threads={threads}: {scost} vs {pcost}"
            );
            assert_eq!(
                seq.memo().num_groups(),
                par.memo().num_groups(),
                "n={n} threads={threads}: group counts diverged"
            );
            // Both paths install per-pass snapshots in task order, so not
            // just the live contents but the raw allocation counts agree.
            assert_eq!(
                seq.memo().num_exprs(),
                par.memo().num_exprs(),
                "n={n} threads={threads}: expression counts diverged"
            );
            assert_eq!(
                seq.memo().dead_expr_count(),
                par.memo().dead_expr_count(),
                "n={n} threads={threads}: dead expression counts diverged"
            );
        }
    }
}

#[test]
fn parallel_explore_then_optimize_sorted_goal() {
    let (model, query) = chain(5);
    let mut par = Optimizer::new(&model, SearchOptions::default());
    let root = par.insert_tree(&query);
    par.explore_parallel(4).unwrap();
    let plan = par.find_best_plan(root, ToyProps::sorted(), None).unwrap();
    assert!(plan.delivered.satisfies(&ToyProps::sorted()));

    let mut seq = Optimizer::new(&model, SearchOptions::default());
    let sroot = seq.insert_tree(&query);
    let splan = seq.find_best_plan(sroot, ToyProps::sorted(), None).unwrap();
    assert!((plan.cost - splan.cost).abs() < 1e-9);
}

#[test]
fn parallel_explore_is_idempotent() {
    let (model, query) = chain(4);
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    opt.explore_parallel(4).unwrap();
    let exprs = opt.memo().num_exprs();
    opt.explore_parallel(4).unwrap();
    opt.explore();
    assert_eq!(opt.memo().num_exprs(), exprs, "fixpoint reached once");
    let _ = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
}
