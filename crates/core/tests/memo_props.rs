//! Property-based tests of the memo and the search engine's invariants,
//! using the toy model over randomly shaped join trees.

use proptest::prelude::*;
use volcano_core::cost::Limit;
use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
use volcano_core::trace::MetricsTracer;
use volcano_core::{ExprTree, Optimizer, PhysicalProps, Plan, SearchOptions};

type Tree = ExprTree<ToyModel>;

/// Strategy: a random binary join tree over tables t0..t{n-1}, each leaf
/// used exactly once (no repeated relations, like real join queries).
fn join_tree(n: usize) -> impl Strategy<Value = Tree> {
    // Random permutation + random shape via split points.
    (proptest::collection::vec(any::<u8>(), n - 1), Just(n)).prop_map(|(splits, n)| {
        fn build(leaves: &[usize], splits: &mut impl Iterator<Item = u8>) -> Tree {
            if leaves.len() == 1 {
                return Tree::leaf(ToyOp::Get(format!("t{}", leaves[0])));
            }
            let s = (splits.next().unwrap_or(0) as usize % (leaves.len() - 1)) + 1;
            let (l, r) = leaves.split_at(s);
            Tree::new(ToyOp::Join, vec![build(l, splits), build(r, splits)])
        }
        let leaves: Vec<usize> = (0..n).collect();
        build(&leaves, &mut splits.into_iter())
    })
}

fn model(n: usize) -> ToyModel {
    let tables: Vec<(String, u64)> = (0..n)
        .map(|i| (format!("t{i}"), 100 + 137 * i as u64))
        .collect();
    let refs: Vec<(&str, u64)> = tables.iter().map(|(s, c)| (s.as_str(), *c)).collect();
    ToyModel::with_tables(&refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every initial tree shape of the same relations lands in the same
    /// explored memo: same group count, same optimal cost (the essence
    /// of dynamic programming over equivalence classes).
    #[test]
    fn optimum_is_shape_independent(n in 2usize..5, t1 in join_tree(4), t2 in join_tree(4)) {
        let _ = n;
        let m = model(4);
        let mut o1 = Optimizer::new(&m, SearchOptions::default());
        let r1 = o1.insert_tree(&t1);
        let c1 = o1.find_best_plan(r1, ToyProps::any(), None).unwrap().cost;
        let mut o2 = Optimizer::new(&m, SearchOptions::default());
        let r2 = o2.insert_tree(&t2);
        let c2 = o2.find_best_plan(r2, ToyProps::any(), None).unwrap().cost;
        prop_assert!((c1 - c2).abs() < 1e-9, "{c1} vs {c2}");
        prop_assert_eq!(o1.memo().num_groups(), o2.memo().num_groups());
    }

    /// Inserting the same tree twice is a no-op: full structural sharing.
    #[test]
    fn reinsertion_is_idempotent(t in join_tree(4)) {
        let m = model(4);
        let mut opt = Optimizer::new(&m, SearchOptions::default());
        let r1 = opt.insert_tree(&t);
        let before = opt.memo().num_exprs();
        let r2 = opt.insert_tree(&t);
        prop_assert_eq!(opt.memo().repr(r1), opt.memo().repr(r2));
        prop_assert_eq!(opt.memo().num_exprs(), before);
    }

    /// Exploration is confluent: exploring before or during costing gives
    /// identical memo contents.
    #[test]
    fn explore_then_optimize_matches_direct(t in join_tree(4)) {
        let m = model(4);
        let mut o1 = Optimizer::new(&m, SearchOptions::default());
        let r1 = o1.insert_tree(&t);
        o1.explore();
        let c1 = o1.find_best_plan(r1, ToyProps::any(), None).unwrap().cost;

        let mut o2 = Optimizer::new(&m, SearchOptions::default());
        let r2 = o2.insert_tree(&t);
        let c2 = o2.find_best_plan(r2, ToyProps::any(), None).unwrap().cost;
        prop_assert!((c1 - c2).abs() < 1e-9);
        prop_assert_eq!(o1.memo().num_exprs(), o2.memo().num_exprs());
    }

    /// The sorted-goal optimum is never cheaper than the unconstrained
    /// optimum, and both are stable under re-query (memo hits).
    #[test]
    fn goals_are_monotone_and_memoized(t in join_tree(3)) {
        let m = model(3);
        let mut opt = Optimizer::new(&m, SearchOptions::default());
        let root = opt.insert_tree(&t);
        let free = opt.find_best_plan(root, ToyProps::any(), None).unwrap().cost;
        let sorted = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap().cost;
        prop_assert!(sorted + 1e-9 >= free);
        let hits_before = opt.stats().winner_hits;
        let free2 = opt.find_best_plan(root, ToyProps::any(), None).unwrap().cost;
        prop_assert!((free - free2).abs() < 1e-12);
        prop_assert!(opt.stats().winner_hits > hits_before, "second query must hit the memo");
    }

    /// Limit algebra laws (the branch-and-bound arithmetic).
    #[test]
    fn limit_laws(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let la = Limit::at_most(a);
        // tighten is idempotent and commutes with min.
        prop_assert_eq!(la.tighten(&b), Limit::at_most(a.min(b)));
        // spend then admit: spending the full budget leaves nothing.
        let rest = la.spend(&a);
        prop_assert!(rest.admits(&0.0));
        prop_assert!(!rest.admits(&1e-9) || a == 0.0 || rest == Limit::at_most(0.0));
        // permissiveness is a total preorder consistent with the value.
        let lb = Limit::at_most(b);
        prop_assert_eq!(la.at_least_as_permissive_as(&lb), a >= b);
        prop_assert!(Limit::<f64>::unlimited().at_least_as_permissive_as(&la));
    }

    /// The winner's reported cost is exactly the cost of the plan it
    /// hands back: recomputing bottom-up from per-node local costs
    /// reproduces `plan.cost` at every node. A drift here would mean the
    /// search compared plans on different numbers than it returns.
    #[test]
    fn winner_cost_equals_bottom_up_recomputation(t in join_tree(4), sorted in any::<bool>()) {
        fn recompute(p: &Plan<ToyModel>) -> f64 {
            p.local_cost + p.inputs.iter().map(recompute).sum::<f64>()
        }
        fn check_node(p: &Plan<ToyModel>) {
            let r = recompute(p);
            assert!(
                (p.cost - r).abs() <= 1e-9 * p.cost.abs().max(1.0),
                "node {:?}: reported {} != recomputed {}",
                p.alg, p.cost, r
            );
            for i in &p.inputs {
                check_node(i);
            }
        }
        let m = model(4);
        let mut opt = Optimizer::new(&m, SearchOptions::default());
        let root = opt.insert_tree(&t);
        let goal = if sorted { ToyProps::sorted() } else { ToyProps::any() };
        let plan = opt.find_best_plan(root, goal, None).unwrap();
        check_node(&plan);
    }

    /// The aggregating tracer and the engine's own statistics are two
    /// independent observers of the same search; their totals must agree
    /// on every shared counter, for any tree shape and either goal.
    #[test]
    fn metrics_tracer_totals_reconcile_with_stats(t in join_tree(4), sorted in any::<bool>()) {
        let m = model(4);
        let tracer = std::rc::Rc::new(MetricsTracer::new());
        let mut opt = Optimizer::new(&m, SearchOptions::default());
        opt.set_tracer(Box::new(tracer.clone()));
        let root = opt.insert_tree(&t);
        let goal = if sorted { ToyProps::sorted() } else { ToyProps::any() };
        let _ = opt.find_best_plan(root, goal, None).unwrap();
        let snap = tracer.snapshot();
        let s = opt.stats();
        prop_assert_eq!(snap.totals.goals, s.goals_optimized);
        prop_assert_eq!(snap.totals.memo_hits, s.winner_hits + s.failure_hits);
        prop_assert_eq!(snap.totals.moves_costed, s.alg_moves + s.enforcer_moves);
        prop_assert_eq!(snap.totals.moves_pruned, s.moves_pruned);
        prop_assert_eq!(snap.totals.moves_excluded, s.moves_excluded);
        prop_assert_eq!(snap.totals.rules_fired, s.transform_fired);
        prop_assert_eq!(snap.totals.substitutes, s.substitutes_produced);
        prop_assert_eq!(snap.goal_latency.count(), s.goals_optimized);
        let per_group: u64 = snap.per_group.values().map(|g| g.goals).sum();
        prop_assert_eq!(per_group, s.goals_optimized);
    }

    /// Cost-limit boundary on the toy model: limits strictly below the
    /// optimum fail, and at/above succeed.
    #[test]
    fn limit_boundary(t in join_tree(3)) {
        let m = model(3);
        let mut opt = Optimizer::new(&m, SearchOptions::default());
        let root = opt.insert_tree(&t);
        let best = opt.find_best_plan(root, ToyProps::any(), None).unwrap().cost;
        let mut o2 = Optimizer::new(&m, SearchOptions::default());
        let r2 = o2.insert_tree(&t);
        prop_assert!(o2.find_best_plan(r2, ToyProps::any(), Some(best * 0.999)).is_err());
        prop_assert!(o2.find_best_plan(r2, ToyProps::any(), Some(best * 1.001)).is_ok());
    }
}

// ToyProps laws required by the PhysicalProps contract.
proptest! {
    #[test]
    fn props_laws(a in any::<bool>(), b in any::<bool>()) {
        let pa = ToyProps { sorted: a };
        let pb = ToyProps { sorted: b };
        // Reflexive.
        prop_assert!(pa.satisfies(&pa));
        // Everything satisfies `any`.
        prop_assert!(pa.satisfies(&ToyProps::any()));
        // Equality implies satisfaction.
        if pa == pb {
            prop_assert!(pa.satisfies(&pb) && pb.satisfies(&pa));
        }
        // Transitivity over the two-point lattice.
        let pc = ToyProps { sorted: a && b };
        if pa.satisfies(&pb) && pb.satisfies(&pc) {
            prop_assert!(pa.satisfies(&pc));
        }
    }
}
