//! Integration tests of the span-based tracing subsystem against real
//! searches over the toy model: span nesting mirrors the goal recursion
//! of Figure 2, the aggregating tracer reconciles exactly with
//! `SearchStats`, and the default `NullTracer` observes nothing while
//! changing nothing.

use std::rc::Rc;

use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
use volcano_core::trace::{
    build_span_tree, CollectingTracer, MetricsTracer, NullTracer, Span, TraceEvent, Tracer,
};
use volcano_core::{ExprTree, Optimizer, PhysicalProps, SearchOptions};

type Tree = ExprTree<ToyModel>;

fn get(name: &str) -> Tree {
    Tree::leaf(ToyOp::Get(name.into()))
}

fn join(l: Tree, r: Tree) -> Tree {
    Tree::new(ToyOp::Join, vec![l, r])
}

fn model3() -> ToyModel {
    ToyModel::with_tables(&[("A", 100), ("B", 200), ("C", 300)])
}

fn three_way() -> Tree {
    join(join(get("A"), get("B")), get("C"))
}

/// Walk a span tree, applying `f` to every span.
fn walk(spans: &[Span], f: &mut impl FnMut(&Span)) {
    for s in spans {
        f(s);
        walk(&s.children, f);
    }
}

#[test]
fn span_nesting_matches_goal_recursion() {
    let model = model3();
    let tracer = Rc::new(CollectingTracer::new());
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    opt.set_tracer(Box::new(tracer.clone()));
    let root = opt.insert_tree(&three_way());
    let _ = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();
    let events = tracer.take();

    // Every goal entered was closed, and the engine entered exactly as
    // many goals as the stats report.
    let begins = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::GoalBegin { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::GoalEnd { .. }))
        .count();
    assert_eq!(begins, ends, "every opened goal must close");
    assert_eq!(begins as u64, opt.stats().goals_optimized);

    // The reconstructed span tree has one span per goal, and its first
    // top-level span is the root group's goal.
    let tree = build_span_tree(&events);
    assert_eq!(tree.size(), begins);
    assert_eq!(tree.roots[0].group, opt.memo().repr(root));
    // A three-way join recurses at least root -> join -> leaf.
    assert!(tree.depth() >= 3, "depth {}", tree.depth());

    // Per-span bookkeeping mirrors the goal that produced it: the costed
    // moves attributed to a span are exactly the moves it pursued, and
    // every span carries an outcome.
    walk(&tree.roots, &mut |s: &Span| {
        let costed = s
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MoveCosted { .. }))
            .count() as u64;
        assert_eq!(
            costed, s.moves,
            "span for {:?} pursued {} moves but costed {}",
            s.group, s.moves, costed
        );
        assert!(!s.outcome.is_empty());
        // Move events belong to this span's group. (MemoHit events may
        // name a *different* group: an input goal answered from the
        // winner table opens no span of its own, so its hit lands in the
        // requesting goal's span.)
        for e in &s.events {
            match e {
                TraceEvent::MoveCosted { group, .. }
                | TraceEvent::MovePruned { group, .. }
                | TraceEvent::MoveExcluded { group, .. } => assert_eq!(*group, s.group),
                _ => {}
            }
        }
    });

    // Span elapsed times are inclusive: a parent's wall-clock covers its
    // children's.
    walk(&tree.roots, &mut |s: &Span| {
        let child_sum: std::time::Duration = s.children.iter().map(|c| c.elapsed).sum();
        assert!(
            s.elapsed >= child_sum,
            "span {:?} elapsed {:?} < children {:?}",
            s.group,
            s.elapsed,
            child_sum
        );
    });
}

#[test]
fn null_tracer_is_disabled_and_observation_free() {
    assert!(!NullTracer.enabled());
    // NullTracer's event sink is a no-op; a collecting tracer attached to
    // an identical search sees plenty. Either way the search result and
    // the stats are identical: tracing is observation only.
    let run = |trace: bool| {
        let model = model3();
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let tracer = Rc::new(CollectingTracer::new());
        if trace {
            opt.set_tracer(Box::new(tracer.clone()));
        } // else: the default NullTracer stays in place
        let root = opt.insert_tree(&three_way());
        let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
        let s = opt.stats().clone();
        (plan.cost, s, tracer.take().len())
    };
    let (traced_cost, traced_stats, traced_events) = run(true);
    let (null_cost, null_stats, null_events) = run(false);
    assert!(traced_events > 0, "collecting tracer must see events");
    assert_eq!(null_events, 0, "a NullTracer run must add zero events");
    assert_eq!(traced_cost, null_cost);
    assert_eq!(traced_stats.goals_optimized, null_stats.goals_optimized);
    assert_eq!(traced_stats.alg_moves, null_stats.alg_moves);
    assert_eq!(traced_stats.enforcer_moves, null_stats.enforcer_moves);
    assert_eq!(traced_stats.moves_pruned, null_stats.moves_pruned);
    assert_eq!(traced_stats.transform_fired, null_stats.transform_fired);
    assert_eq!(traced_stats.exprs_created, null_stats.exprs_created);
}

#[test]
fn metrics_tracer_reconciles_with_search_stats() {
    let model = model3();
    let tracer = Rc::new(MetricsTracer::new());
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    opt.set_tracer(Box::new(tracer.clone()));
    let root = opt.insert_tree(&three_way());
    let _ = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();
    // A second query reuses the memo: the winner hits must show up as
    // memo hits in the metrics too.
    let _ = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();

    let snap = tracer.snapshot();
    let s = opt.stats();
    assert_eq!(snap.totals.goals, s.goals_optimized);
    assert_eq!(snap.totals.memo_hits, s.winner_hits + s.failure_hits);
    assert_eq!(snap.totals.moves_costed, s.alg_moves + s.enforcer_moves);
    assert_eq!(snap.totals.moves_pruned, s.moves_pruned);
    assert_eq!(snap.totals.moves_excluded, s.moves_excluded);
    assert_eq!(snap.totals.rules_fired, s.transform_fired);
    assert_eq!(snap.totals.substitutes, s.substitutes_produced);
    // One latency sample per goal; per-group goals sum to the total.
    assert_eq!(snap.goal_latency.count(), s.goals_optimized);
    let per_group_goals: u64 = snap.per_group.values().map(|m| m.goals).sum();
    assert_eq!(per_group_goals, s.goals_optimized);
    assert!(snap.max_depth >= 2);
    // The report is renderable and mentions the headline counters.
    let report = snap.report();
    assert!(report.contains("goals:"), "{report}");
    assert!(report.contains("moves:"), "{report}");
}
