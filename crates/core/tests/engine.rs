//! Direct tests of engine machinery that the toy model alone does not
//! reach: group merging triggered by rules that prove whole classes
//! equal, tracers, heuristic move selection, and rewrite-only use.

use volcano_core::expr::SubstExpr;
use volcano_core::model::{Algorithm, Model, Operator};
use volcano_core::pattern::{Binding, Pattern};
use volcano_core::props::NoProps;
use volcano_core::rules::{
    AlgApplication, Enforcer, ImplementationRule, RuleCtx, TransformationRule,
};
use volcano_core::trace::{CollectingTracer, TraceEvent};
use volcano_core::{ExprTree, Optimizer, SearchOptions};

/// A minimal algebra: leaves, a unary `Wrap` (semantically the identity,
/// with an elimination rule), and a binary `Pair` with commutativity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MOp {
    Leaf(u32),
    Wrap,
    Pair,
}

impl Operator for MOp {
    fn arity(&self) -> usize {
        match self {
            MOp::Leaf(_) => 0,
            MOp::Wrap => 1,
            MOp::Pair => 2,
        }
    }

    fn name(&self) -> &str {
        match self {
            MOp::Leaf(_) => "leaf",
            MOp::Wrap => "wrap",
            MOp::Pair => "pair",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MAlg {
    Scan,
    Id,
    Combine,
}

impl Algorithm for MAlg {
    fn name(&self) -> &str {
        match self {
            MAlg::Scan => "scan",
            MAlg::Id => "id",
            MAlg::Combine => "combine",
        }
    }
}

/// `wrap(X) ≡ X`: the rule's substitute is a bare group reference, which
/// forces the engine to *merge* the wrap-group with its input group.
struct WrapElim {
    pattern: Pattern<MModel>,
}

impl TransformationRule<MModel> for WrapElim {
    fn name(&self) -> &'static str {
        "wrap_elim"
    }

    fn pattern(&self) -> &Pattern<MModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<MModel>, _ctx: &RuleCtx<'_, MModel>) -> Vec<SubstExpr<MModel>> {
        vec![SubstExpr::group(b.input_group(0))]
    }
}

struct PairCommute {
    pattern: Pattern<MModel>,
}

impl TransformationRule<MModel> for PairCommute {
    fn name(&self) -> &'static str {
        "pair_commute"
    }

    fn pattern(&self) -> &Pattern<MModel> {
        &self.pattern
    }

    fn apply(&self, b: &Binding<MModel>, _ctx: &RuleCtx<'_, MModel>) -> Vec<SubstExpr<MModel>> {
        vec![SubstExpr::node(
            MOp::Pair,
            vec![
                SubstExpr::group(b.input_group(1)),
                SubstExpr::group(b.input_group(0)),
            ],
        )]
    }

    fn promise(&self, _b: &Binding<MModel>, _ctx: &RuleCtx<'_, MModel>) -> f64 {
        2.0
    }
}

struct ImplAll {
    leaf_pat: Pattern<MModel>,
    wrap_pat: Pattern<MModel>,
    pair_pat: Pattern<MModel>,
    which: u8,
}

impl ImplementationRule<MModel> for ImplAll {
    fn name(&self) -> &'static str {
        match self.which {
            0 => "leaf_to_scan",
            1 => "wrap_to_id",
            _ => "pair_to_combine",
        }
    }

    fn pattern(&self) -> &Pattern<MModel> {
        match self.which {
            0 => &self.leaf_pat,
            1 => &self.wrap_pat,
            _ => &self.pair_pat,
        }
    }

    fn applies(
        &self,
        _b: &Binding<MModel>,
        _required: &NoProps,
        _ctx: &RuleCtx<'_, MModel>,
    ) -> Vec<AlgApplication<MModel>> {
        let (alg, n) = match self.which {
            0 => (MAlg::Scan, 0),
            1 => (MAlg::Id, 1),
            _ => (MAlg::Combine, 2),
        };
        vec![AlgApplication {
            alg,
            input_props: vec![NoProps; n],
            delivers: NoProps,
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<MModel>,
        b: &Binding<MModel>,
        ctx: &RuleCtx<'_, MModel>,
    ) -> f64 {
        match self.which {
            0 => 1.0,
            1 => 5.0, // identity costs something: elimination should win
            _ => ctx.logical_props(b.input_group(0)).0 + ctx.logical_props(b.input_group(1)).0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct MLogical(f64);

struct MModel {
    transforms: Vec<Box<dyn TransformationRule<MModel>>>,
    impls: Vec<Box<dyn ImplementationRule<MModel>>>,
    enforcers: Vec<Box<dyn Enforcer<MModel>>>,
}

impl MModel {
    fn new() -> Self {
        let wrap_pat = || {
            Pattern::op(
                "wrap",
                |op: &MOp| matches!(op, MOp::Wrap),
                vec![Pattern::Any],
            )
        };
        let pair_pat = || {
            Pattern::op(
                "pair",
                |op: &MOp| matches!(op, MOp::Pair),
                vec![Pattern::Any, Pattern::Any],
            )
        };
        let leaf_pat = || Pattern::op("leaf", |op: &MOp| matches!(op, MOp::Leaf(_)), vec![]);
        MModel {
            transforms: vec![
                Box::new(WrapElim {
                    pattern: wrap_pat(),
                }),
                Box::new(PairCommute {
                    pattern: pair_pat(),
                }),
            ],
            impls: vec![
                Box::new(ImplAll {
                    leaf_pat: leaf_pat(),
                    wrap_pat: wrap_pat(),
                    pair_pat: pair_pat(),
                    which: 0,
                }),
                Box::new(ImplAll {
                    leaf_pat: leaf_pat(),
                    wrap_pat: wrap_pat(),
                    pair_pat: pair_pat(),
                    which: 1,
                }),
                Box::new(ImplAll {
                    leaf_pat: leaf_pat(),
                    wrap_pat: wrap_pat(),
                    pair_pat: pair_pat(),
                    which: 2,
                }),
            ],
            enforcers: vec![],
        }
    }
}

impl Model for MModel {
    type Op = MOp;
    type Alg = MAlg;
    type LogicalProps = MLogical;
    type PhysProps = NoProps;
    type Cost = f64;

    fn derive_logical_props(&self, op: &MOp, inputs: &[&MLogical]) -> MLogical {
        match op {
            MOp::Leaf(n) => MLogical(*n as f64),
            MOp::Wrap => *inputs[0],
            MOp::Pair => MLogical(inputs[0].0 + inputs[1].0),
        }
    }

    fn transformations(&self) -> &[Box<dyn TransformationRule<Self>>] {
        &self.transforms
    }

    fn implementations(&self) -> &[Box<dyn ImplementationRule<Self>>] {
        &self.impls
    }

    fn enforcers(&self) -> &[Box<dyn Enforcer<Self>>] {
        &self.enforcers
    }
}

type Tree = ExprTree<MModel>;

fn leaf(n: u32) -> Tree {
    Tree::leaf(MOp::Leaf(n))
}

fn wrap(x: Tree) -> Tree {
    Tree::new(MOp::Wrap, vec![x])
}

fn pair(l: Tree, r: Tree) -> Tree {
    Tree::new(MOp::Pair, vec![l, r])
}

#[test]
fn group_reference_substitute_merges_classes() {
    // wrap(leaf) ≡ leaf: after exploration the two classes are one.
    let model = MModel::new();
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&wrap(leaf(7)));
    assert_eq!(opt.memo().num_groups(), 2);
    opt.explore();
    assert_eq!(
        opt.memo().num_groups(),
        1,
        "wrap_elim must merge the classes"
    );
    assert!(opt.memo().merge_count() >= 1);
    // The optimal plan skips the identity operator entirely.
    let plan = opt.find_best_plan(root, NoProps, None).unwrap();
    assert_eq!(plan.alg, MAlg::Scan);
    assert_eq!(plan.cost, 1.0);
}

#[test]
fn cascading_merges_retire_duplicate_expressions() {
    // pair(wrap(a), b) and pair(a, b): once wrap(a) merges with a, the
    // two pair expressions become structurally identical and one must be
    // retired as a duplicate.
    let model = MModel::new();
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let r1 = opt.insert_tree(&pair(wrap(leaf(1)), leaf(2)));
    let r2 = opt.insert_tree(&pair(leaf(1), leaf(2)));
    assert_ne!(opt.memo().repr(r1), opt.memo().repr(r2));
    opt.explore();
    assert_eq!(
        opt.memo().repr(r1),
        opt.memo().repr(r2),
        "merging wrap(a)≡a must identify the two pair classes"
    );
    assert!(opt.memo().dead_expr_count() >= 1);
    let c1 = opt.find_best_plan(r1, NoProps, None).unwrap().cost;
    let c2 = opt.find_best_plan(r2, NoProps, None).unwrap().cost;
    assert_eq!(c1, c2);
    assert_eq!(c1, 1.0 + 1.0 + 3.0); // scans + combine(1+2)
}

#[test]
fn tracer_sees_rule_firings_and_goals() {
    let model = MModel::new();
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    opt.set_tracer(Box::new(CollectingTracer::new()));
    let root = opt.insert_tree(&pair(leaf(1), leaf(2)));
    let _ = opt.find_best_plan(root, NoProps, None).unwrap();
    // Replace the tracer to take ownership of the events.
    // (CollectingTracer::take works through &self, but we boxed it; use a
    // fresh optimizer with a shared tracer instead.)
    let tracer = std::sync::Arc::new(SharedTracer::default());
    let mut opt2 = Optimizer::new(&model, SearchOptions::default());
    opt2.set_tracer(Box::new(ArcTracer(tracer.clone())));
    let root2 = opt2.insert_tree(&pair(leaf(3), leaf(4)));
    let _ = opt2.find_best_plan(root2, NoProps, None).unwrap();
    let events = tracer.events.lock().unwrap();
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::RuleFired {
            rule: "pair_commute",
            ..
        }
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::GoalBegin { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::MoveCosted { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::GoalEnd { outcome, .. } if outcome.contains("optimal"))));
}

#[derive(Default)]
struct SharedTracer {
    events: std::sync::Mutex<Vec<TraceEvent>>,
}

struct ArcTracer(std::sync::Arc<SharedTracer>);

impl volcano_core::trace::Tracer for ArcTracer {
    fn event(&self, e: TraceEvent) {
        self.0.events.lock().unwrap().push(e);
    }
}

#[test]
fn move_limit_heuristic_still_produces_plans() {
    let model = MModel::new();
    let opts = SearchOptions {
        move_limit: Some(1),
        ..SearchOptions::default()
    };
    let mut opt = Optimizer::new(&model, opts);
    let root = opt.insert_tree(&pair(pair(leaf(1), leaf(2)), leaf(3)));
    // With only the single most promising move pursued per goal the
    // search stays complete enough here (every group has at least one
    // implementation), though optimality is no longer guaranteed.
    let plan = opt.find_best_plan(root, NoProps, None).unwrap();
    assert!(plan.cost > 0.0);
}

#[test]
fn stats_reflect_merges_and_dead_exprs() {
    let model = MModel::new();
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&pair(wrap(leaf(1)), wrap(leaf(2))));
    let _ = opt.find_best_plan(root, NoProps, None).unwrap();
    let s = opt.stats();
    assert!(
        s.group_merges >= 2,
        "two wrap eliminations: {}",
        s.group_merges
    );
    assert!(s.transform_fired >= 3);
    assert!(s.memo_bytes > 0);
    // Display smoke test.
    let text = s.to_string();
    assert!(text.contains("merges"));
}

#[test]
fn partial_results_survive_across_queries() {
    // The paper notes partial optimization results were "reinitialized
    // for each query" and flags longer-lived results as future work (§3).
    // Keeping one Optimizer instance across queries provides exactly
    // that: a second query sharing a subexpression reuses its winners.
    let model = MModel::new();
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let shared = pair(leaf(10), leaf(20));
    let q1 = pair(shared.clone(), leaf(30));
    let root1 = opt.insert_tree(&q1);
    let _ = opt.find_best_plan(root1, NoProps, None).unwrap();
    let hits_before = opt.stats().winner_hits;
    let goals_before = opt.stats().goals_optimized;

    // A *different* query over the same shared subexpression.
    let q2 = pair(leaf(40), shared);
    let root2 = opt.insert_tree(&q2);
    let p2 = opt.find_best_plan(root2, NoProps, None).unwrap();
    assert!(p2.cost > 0.0);
    assert!(
        opt.stats().winner_hits > hits_before,
        "the shared subplan must come from the memo"
    );
    // Only the new groups needed optimization.
    let new_goals = opt.stats().goals_optimized - goals_before;
    assert!(
        new_goals <= 3,
        "shared work must not be redone: {new_goals}"
    );
}
