//! The anytime layer: budgets trip, the search degrades to greedy
//! completion, and `find_best_plan` still returns a valid plan whose cost
//! is an upper bound on the unbudgeted optimum.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
use volcano_core::trace::TraceEvent;
use volcano_core::{
    BudgetOutcome, CancelToken, ExprTree, Optimizer, PhysicalProps, Plan, SearchBudget,
    SearchOptions, TripReason,
};

type Tree = ExprTree<ToyModel>;

fn chain(n: usize) -> (ToyModel, Tree) {
    let tables: Vec<(String, u64)> = (0..n)
        .map(|i| (format!("t{i}"), 100 + 137 * i as u64))
        .collect();
    let refs: Vec<(&str, u64)> = tables.iter().map(|(s, c)| (s.as_str(), *c)).collect();
    let model = ToyModel::with_tables(&refs);
    let mut e = Tree::leaf(ToyOp::Get("t0".into()));
    for i in 1..n {
        e = Tree::new(
            ToyOp::Join,
            vec![e, Tree::leaf(ToyOp::Get(format!("t{i}")))],
        );
    }
    (model, e)
}

fn budgeted(budget: SearchBudget) -> SearchOptions {
    SearchOptions {
        budget,
        ..SearchOptions::default()
    }
}

/// Reported plan cost must equal the bottom-up sum of local costs at
/// every node — greedy or not.
fn assert_costs_consistent(p: &Plan<ToyModel>) {
    fn recompute(p: &Plan<ToyModel>) -> f64 {
        p.local_cost + p.inputs.iter().map(recompute).sum::<f64>()
    }
    let r = recompute(p);
    assert!(
        (p.cost - r).abs() <= 1e-9 * p.cost.abs().max(1.0),
        "node {:?}: reported {} != recomputed {}",
        p.alg,
        p.cost,
        r
    );
    for i in &p.inputs {
        assert_costs_consistent(i);
    }
}

fn unbudgeted_optimum(n: usize) -> f64 {
    let (model, query) = chain(n);
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    opt.find_best_plan(root, ToyProps::any(), None)
        .unwrap()
        .cost
}

#[test]
fn unlimited_budget_is_exhaustive() {
    let (model, query) = chain(5);
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    let _ = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    assert_eq!(opt.stats().outcome, BudgetOutcome::Exhaustive);
    assert_eq!(opt.stats().greedy_goals, 0);
    assert_eq!(opt.tripped(), None);
}

#[test]
fn goal_cap_degrades_but_still_plans() {
    let optimum = unbudgeted_optimum(7);
    let (model, query) = chain(7);
    let mut opt = Optimizer::new(&model, budgeted(SearchBudget::default().with_max_goals(3)));
    let root = opt.insert_tree(&query);
    let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    assert_eq!(
        opt.stats().outcome,
        BudgetOutcome::Degraded(TripReason::GoalLimit)
    );
    assert!(opt.stats().greedy_goals > 0);
    assert_costs_consistent(&plan);
    assert!(
        plan.cost + 1e-9 >= optimum,
        "greedy plan {} cheaper than the optimum {optimum}",
        plan.cost
    );
}

#[test]
fn expr_cap_degrades_but_still_plans() {
    let (model, query) = chain(6);
    let mut opt = Optimizer::new(&model, budgeted(SearchBudget::default().with_max_exprs(15)));
    let root = opt.insert_tree(&query);
    let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    assert_eq!(
        opt.stats().outcome,
        BudgetOutcome::Degraded(TripReason::ExprLimit)
    );
    assert_costs_consistent(&plan);
}

#[test]
fn group_cap_degrades_but_still_plans() {
    let (model, query) = chain(6);
    let mut opt = Optimizer::new(&model, budgeted(SearchBudget::default().with_max_groups(8)));
    let root = opt.insert_tree(&query);
    let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    assert_eq!(
        opt.stats().outcome,
        BudgetOutcome::Degraded(TripReason::GroupLimit)
    );
    assert_costs_consistent(&plan);
}

#[test]
fn zero_deadline_trips_immediately_and_returns_fast() {
    let (model, query) = chain(8);
    let mut opt = Optimizer::new(
        &model,
        budgeted(SearchBudget::default().with_deadline(Duration::ZERO)),
    );
    let root = opt.insert_tree(&query);
    let start = Instant::now();
    let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    let took = start.elapsed();
    assert_eq!(
        opt.stats().outcome,
        BudgetOutcome::Degraded(TripReason::Deadline)
    );
    assert_costs_consistent(&plan);
    // The acceptance bar: a tripped deadline is honored within 50 ms —
    // greedy completion must not enumerate.
    assert!(
        took < Duration::from_millis(50),
        "greedy completion took {took:?}"
    );
}

#[test]
fn short_deadline_on_long_chain_is_honored_within_50ms() {
    let deadline = Duration::from_millis(5);
    let (model, query) = chain(9);
    let mut opt = Optimizer::new(
        &model,
        budgeted(SearchBudget::default().with_deadline(deadline)),
    );
    let root = opt.insert_tree(&query);
    let start = Instant::now();
    let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    let took = start.elapsed();
    assert_costs_consistent(&plan);
    if opt.stats().outcome.is_degraded() {
        assert!(
            took < deadline + Duration::from_millis(50),
            "deadline {deadline:?} overshot: {took:?}"
        );
    }
}

#[test]
fn cancellation_degrades_search() {
    let token = CancelToken::new();
    token.cancel();
    let (model, query) = chain(6);
    let mut opt = Optimizer::new(
        &model,
        budgeted(SearchBudget::default().with_cancel(token.clone())),
    );
    let root = opt.insert_tree(&query);
    let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    assert_eq!(
        opt.stats().outcome,
        BudgetOutcome::Degraded(TripReason::Cancelled)
    );
    assert_costs_consistent(&plan);
}

#[test]
fn budget_trip_emits_trace_event() {
    let tracer = std::rc::Rc::new(volcano_core::CollectingTracer::new());
    let (model, query) = chain(6);
    let mut opt = Optimizer::new(&model, budgeted(SearchBudget::default().with_max_goals(2)));
    opt.set_tracer(Box::new(tracer.clone()));
    let root = opt.insert_tree(&query);
    let _ = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    let events = tracer.take();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::BudgetTripped { reason } if *reason == "goal-limit")),
        "no BudgetTripped event in {} events",
        events.len()
    );
}

/// Degraded searches must satisfy required physical properties exactly
/// like exhaustive ones: the greedy pass picks the first *feasible* move,
/// never an infeasible shortcut.
#[test]
fn degraded_plan_still_satisfies_sorted_goal() {
    let (model, query) = chain(6);
    let mut opt = Optimizer::new(&model, budgeted(SearchBudget::default().with_max_goals(2)));
    let root = opt.insert_tree(&query);
    let plan = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();
    assert!(plan.delivered.satisfies(&ToyProps::sorted()));
    assert!(opt.stats().outcome.is_degraded());
}

/// Budget aborts must not leak "in progress" cycle marks: the same
/// optimizer answers a *different* goal afterwards (a leaked mark would
/// surface as a spurious cycle failure).
#[test]
fn no_cycle_mark_leak_after_degraded_search() {
    let (model, query) = chain(6);
    let mut opt = Optimizer::new(&model, budgeted(SearchBudget::default().with_max_goals(2)));
    let root = opt.insert_tree(&query);
    let _ = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
    let sorted = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();
    assert!(sorted.delivered.satisfies(&ToyProps::sorted()));
}

fn join_tree(n: usize) -> impl Strategy<Value = Tree> {
    (proptest::collection::vec(any::<u8>(), n - 1), Just(n)).prop_map(|(splits, n)| {
        fn build(leaves: &[usize], splits: &mut impl Iterator<Item = u8>) -> Tree {
            if leaves.len() == 1 {
                return Tree::leaf(ToyOp::Get(format!("t{}", leaves[0])));
            }
            let s = (splits.next().unwrap_or(0) as usize % (leaves.len() - 1)) + 1;
            let (l, r) = leaves.split_at(s);
            Tree::new(ToyOp::Join, vec![build(l, splits), build(r, splits)])
        }
        let leaves: Vec<usize> = (0..n).collect();
        build(&leaves, &mut splits.into_iter())
    })
}

fn model(n: usize) -> ToyModel {
    let tables: Vec<(String, u64)> = (0..n)
        .map(|i| (format!("t{i}"), 100 + 137 * i as u64))
        .collect();
    let refs: Vec<(&str, u64)> = tables.iter().map(|(s, c)| (s.as_str(), *c)).collect();
    ToyModel::with_tables(&refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The anytime property, for any tree shape and any trip point: the
    /// budgeted plan is structurally valid (costs recompute bottom-up),
    /// satisfies its goal, and never beats the unbudgeted optimum.
    #[test]
    fn anytime_property(t in join_tree(5), cap in 1u64..40, sorted in any::<bool>()) {
        let goal = if sorted { ToyProps::sorted() } else { ToyProps::any() };
        let m = model(5);

        let mut base = Optimizer::new(&m, SearchOptions::default());
        let broot = base.insert_tree(&t);
        let optimum = base.find_best_plan(broot, goal, None).unwrap().cost;

        let mut opt = Optimizer::new(&m, budgeted(SearchBudget::default().with_max_goals(cap)));
        let root = opt.insert_tree(&t);
        let plan = opt.find_best_plan(root, goal, None).unwrap();

        assert_costs_consistent(&plan);
        prop_assert!(plan.delivered.satisfies(&goal));
        prop_assert!(
            plan.cost + 1e-9 >= optimum,
            "budgeted plan {} cheaper than optimum {}", plan.cost, optimum
        );
        match opt.stats().outcome {
            BudgetOutcome::Exhaustive => {
                prop_assert!((plan.cost - optimum).abs() < 1e-9);
                prop_assert_eq!(opt.stats().greedy_goals, 0);
            }
            BudgetOutcome::Degraded(r) => prop_assert_eq!(r, TripReason::GoalLimit),
        }
    }

    /// Budgeted search is deterministic: the same query under the same
    /// goal cap yields the identical plan and identical counters.
    #[test]
    fn budgeted_search_is_deterministic(t in join_tree(5), cap in 1u64..30) {
        let m = model(5);
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut opt =
                Optimizer::new(&m, budgeted(SearchBudget::default().with_max_goals(cap)));
            let root = opt.insert_tree(&t);
            let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
            runs.push((plan.compact(), plan.cost, opt.stats().clone()));
        }
        prop_assert_eq!(&runs[0].0, &runs[1].0, "plans diverged across identical runs");
        prop_assert_eq!(runs[0].1, runs[1].1);
        prop_assert!(
            runs[0].2.counters_eq(&runs[1].2),
            "stats diverged across identical runs:\n{:?}\n{:?}", runs[0].2, runs[1].2
        );
    }
}
