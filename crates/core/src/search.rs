//! The search engine: directed dynamic programming (§3, Figure 2).
//!
//! `FindBestPlan` is split exactly as the paper describes: first the
//! winner table (plans *and* memoized failures) is consulted; if actual
//! optimization is required, the possible *moves* — applicable
//! transformations, algorithms that give the required physical properties,
//! and enforcers for required physical properties — are generated, ordered
//! by promise, and pursued under a branch-and-bound cost limit.
//!
//! Transformations are exhausted in an up-front *exploration* fixpoint
//! (each (expression, rule) pair fires once, with re-matching when a
//! multi-level pattern's input classes grow). With exhaustive search this
//! is equivalent to interleaving transformation moves — every logical
//! expression is derived either way and the memo collapses duplicate
//! derivations — while keeping the costing recursion strictly goal-driven:
//! plans are derived "only for those partial queries that are considered
//! as parts of larger subqueries, not all equivalent expressions and plans
//! that are feasible or seem interesting by their sort order".
//!
//! ## Resource governance
//!
//! The search honors a [`SearchBudget`] (wall-clock deadline, memo caps,
//! goal cap, cancellation), polled at goal entries, move boundaries, and
//! exploration tasks. When the budget trips the engine does **not** error
//! out: exploration stops, and every in-flight goal completes *greedily* —
//! the first feasible move in promise order wins, with no further
//! enumeration — so `find_best_plan` still returns a valid plan whose cost
//! is an upper bound on the optimum. Failures observed while degraded are
//! never memoized (they may be artifacts of greedy completion, not proven
//! facts). The outcome is reported via [`crate::SearchStats::outcome`] and
//! a [`TraceEvent::BudgetTripped`] event.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::budget::{BudgetOutcome, CancelToken, SearchBudget, TripReason};
use crate::cost::{Cost, Limit};
use crate::error::OptimizeError;
use crate::expr::{ExprTree, SubstExpr};
use crate::fxhash::FxHashSet;
use crate::ids::{ExprId, GoalId, GroupId};
use crate::memo::{InputGoal, Memo, Winner, WinnerPlan};
use crate::model::Model;
use crate::pattern::{match_pattern_with, Binding};
use crate::plan::Plan;
use crate::props::PhysicalProps;
use crate::rule_index::RuleIndex;
use crate::rules::{AlgApplication, EnforcerApplication, RuleCtx, TransformationRule};
use crate::stats::SearchStats;
use crate::trace::{MemoHitKind, NullTracer, TraceEvent, Tracer};

/// Version sentinel for "this (expression, rule) pair has never matched".
const NEVER: u64 = u64::MAX;

/// One unit of exploration output: everything a single (expression,
/// transformation rule) match task produced, ready for serial installation.
struct ExploreProduct<M: Model> {
    /// The matched expression.
    expr: ExprId,
    /// Index of the transformation rule that matched.
    rule_idx: usize,
    /// Whether the expression's root operator satisfied the rule's root
    /// matcher. Drives the `transform_matches` counter, which is defined
    /// over root-matcher hits precisely so it is invariant under the
    /// operator-indexed dispatch (a sound index only skips tasks whose
    /// root matcher would have rejected the operator).
    root_matched: bool,
    /// Substitute count per fired binding, in binding order (drives one
    /// `RuleFired` event per firing, matching the serial path).
    firings: Vec<u64>,
    /// All substitutes produced, concatenated in binding order.
    subs: Vec<SubstExpr<M>>,
}

/// Goals currently being optimized, shared with RAII cycle guards. Keys
/// are `(group, interned goal)` — two `u32`s, no property hashing.
type InProgressSet = Rc<RefCell<FxHashSet<(GroupId, GoalId)>>>;

/// Knobs controlling the search strategy.
///
/// The defaults reproduce the paper's engine (exhaustive, pruned,
/// memoizing). The toggles exist because "pursuing all moves or only a
/// selected few is a major heuristic placed into the hands of the
/// optimizer implementor" (§3) — and because the ablation benchmarks need
/// to quantify each mechanism's contribution.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Branch-and-bound pruning: pass tightened cost limits into input
    /// optimizations and abandon moves whose accumulated cost crosses the
    /// bound. Disabling reverts to plain exhaustive dynamic programming.
    pub pruning: bool,
    /// Memoize optimization *failures* so a later request with the same
    /// or a lower cost limit fails without search.
    pub failure_memo: bool,
    /// Order moves by descending promise before pursuing them.
    pub promise_ordering: bool,
    /// Pursue only the `k` most promising moves per goal (heuristic,
    /// sacrifices optimality). `None` = exhaustive.
    pub move_limit: Option<usize>,
    /// Resource budget. The default is unlimited (the paper's exhaustive
    /// search); any finite axis makes the search *anytime* — see the
    /// module documentation.
    pub budget: SearchBudget,
    /// Consult the operator-indexed [`RuleIndex`] when collecting
    /// exploration tasks and generating moves, skipping rules whose root
    /// matcher cannot accept the expression's operator. Sound indexes do
    /// not change plans, costs, or statistics; the flag exists as an
    /// ablation/debug escape hatch (the differential test runs both ways).
    pub rule_index: bool,
    /// Use interned [`GoalId`]s directly. When disabled, every goal entry
    /// re-derives its id from freshly cloned property vectors — the
    /// legacy clone + full-hash cost profile — with provably identical
    /// results. Ablation/debug escape hatch, matching `rule_index`.
    pub goal_interning: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            pruning: true,
            failure_memo: true,
            promise_ordering: true,
            move_limit: None,
            budget: SearchBudget::default(),
            rule_index: true,
            goal_interning: true,
        }
    }
}

/// Why a goal could not be satisfied (internal).
struct GoalFailure {
    /// `true` when the failure is a proven fact for this goal and limit
    /// (safe to memoize); `false` when it is an artifact of cycle
    /// breaking ("in progress" marks) or of greedy completion under a
    /// tripped budget, and must not poison the memo.
    memoizable: bool,
}

/// One move the engine may pursue for a goal (§3: "three sets of possible
/// moves"; transformations are exhausted during exploration).
enum Move<M: Model> {
    Alg {
        rule_idx: usize,
        /// Index into the per-goal binding arena built alongside the move
        /// list — bindings are stored once and shared, never cloned per
        /// move.
        binding: u32,
        app: AlgApplication<M>,
        promise: f64,
    },
    Enf {
        enf_idx: usize,
        app: EnforcerApplication<M>,
        promise: f64,
    },
}

impl<M: Model> Move<M> {
    fn promise(&self) -> f64 {
        match self {
            Move::Alg { promise, .. } | Move::Enf { promise, .. } => *promise,
        }
    }
}

/// RAII "in progress" mark: inserts the (group, goal) key on construction
/// and removes it on drop, so *every* exit path — straight-line returns,
/// `?` propagation, and budget-degraded early breaks — unwinds the mark.
/// A leaked mark would permanently poison its key: all later requests for
/// that goal would report a (non-memoizable) cycle failure.
struct CycleGuard {
    set: InProgressSet,
    key: (GroupId, GoalId),
}

impl CycleGuard {
    fn mark(set: &InProgressSet, key: (GroupId, GoalId)) -> Self {
        set.borrow_mut().insert(key);
        CycleGuard {
            set: Rc::clone(set),
            key,
        }
    }
}

impl Drop for CycleGuard {
    fn drop(&mut self) {
        self.set.borrow_mut().remove(&self.key);
    }
}

/// Match one (expression, transformation rule) task against a memo
/// snapshot and collect its products. Read-only over the memo; both the
/// serial and the parallel exploration run exactly this per task, so the
/// two paths produce identical memos and statistics by construction.
fn run_explore_task<M: Model>(
    memo: &Memo<M>,
    rule: &dyn TransformationRule<M>,
    e: ExprId,
    ri: usize,
) -> ExploreProduct<M> {
    let ctx = RuleCtx::new(memo);
    let pattern = rule.pattern();
    let root_matched = pattern.root_matches(memo.expr(e).0);
    let mut firings = Vec::new();
    let mut subs = Vec::new();
    if root_matched {
        match_pattern_with(memo, pattern, e, &mut |b| {
            if rule.condition(&b, &ctx) {
                let s = rule.apply(&b, &ctx);
                firings.push(s.len() as u64);
                subs.extend(s);
            }
        });
    }
    ExploreProduct {
        expr: e,
        rule_idx: ri,
        root_matched,
        firings,
        subs,
    }
}

/// Render a caught panic payload (rule condition/apply code) for an error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A generated optimizer: the search engine instantiated for one model.
pub struct Optimizer<'m, M: Model> {
    model: &'m M,
    memo: Memo<M>,
    opts: SearchOptions,
    stats: SearchStats,
    /// Goals currently being optimized, for cycle detection among
    /// mutually inverse transformation derivations. Shared (`Rc`) with
    /// the RAII guards that unwind the marks.
    in_progress: InProgressSet,
    /// Operator-discriminant → candidate-rule dispatch index, built once
    /// from the model's rule sets.
    rule_index: RuleIndex,
    /// Per-expression, per-transformation-rule memo version at the last
    /// pattern match (`NEVER` = not yet matched).
    watermarks: Vec<Vec<u64>>,
    /// Transformation pattern depths, cached from the model.
    rule_depths: Vec<usize>,
    /// Absolute deadline, armed from the budget at each public entry
    /// point (`find_best_plan`, `explore`, `explore_parallel`).
    deadline: Option<Instant>,
    /// First budget trip, if any. Sticky: once a budget trips, this
    /// optimizer stays in greedy mode (its memo may hold greedy winners,
    /// which are upper bounds, not optima). Use a fresh optimizer for a
    /// fresh budget.
    tripped: Option<TripReason>,
    tracer: Box<dyn Tracer>,
}

impl<'m, M: Model> Optimizer<'m, M> {
    /// Create an optimizer for `model` with the given search options.
    pub fn new(model: &'m M, opts: SearchOptions) -> Self {
        let rule_depths = model
            .transformations()
            .iter()
            .map(|r| r.pattern().depth())
            .collect();
        Optimizer {
            model,
            memo: Memo::new(),
            opts,
            stats: SearchStats::default(),
            in_progress: Rc::new(RefCell::new(FxHashSet::default())),
            rule_index: RuleIndex::new(model),
            watermarks: Vec::new(),
            rule_depths,
            deadline: None,
            tripped: None,
            tracer: Box::new(NullTracer),
        }
    }

    /// Attach a tracer receiving structured search events.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// Insert a query (logical algebra expression) and return its root
    /// equivalence class.
    pub fn insert_tree(&mut self, tree: &ExprTree<M>) -> GroupId {
        self.memo.insert_tree(self.model, tree)
    }

    /// The memo, for inspection and testing.
    pub fn memo(&self) -> &Memo<M> {
        &self.memo
    }

    /// The operator-indexed rule dispatch table, for inspection and the
    /// completeness proptest.
    pub fn rule_index(&self) -> &RuleIndex {
        &self.rule_index
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// The first budget trip, if the budget has tripped.
    pub fn tripped(&self) -> Option<TripReason> {
        self.tripped
    }

    /// Arm the wall-clock deadline for a fresh top-level call.
    fn arm_deadline(&mut self) {
        self.deadline = self.opts.budget.deadline.map(|d| Instant::now() + d);
    }

    /// Poll the budget; on the first violation, record the trip (sticky)
    /// and emit a [`TraceEvent::BudgetTripped`]. An unlimited budget
    /// costs one branch.
    fn check_budget(&mut self) {
        if self.tripped.is_some() {
            return;
        }
        let b = &self.opts.budget;
        if b.is_unlimited() {
            return;
        }
        let reason = if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(TripReason::Deadline)
        } else if b.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            Some(TripReason::Cancelled)
        } else if b.max_exprs.is_some_and(|m| self.memo.num_exprs() > m) {
            Some(TripReason::ExprLimit)
        } else if b
            .max_groups
            .is_some_and(|m| self.memo.num_allocated_groups() > m)
        {
            Some(TripReason::GroupLimit)
        } else if b.max_goals.is_some_and(|m| self.stats.goals_optimized > m) {
            Some(TripReason::GoalLimit)
        } else {
            None
        };
        if let Some(r) = reason {
            self.trip(r);
        }
    }

    fn trip(&mut self, reason: TripReason) {
        self.tripped = Some(reason);
        self.stats.outcome = BudgetOutcome::Degraded(reason);
        if self.tracer.enabled() {
            self.tracer.event(TraceEvent::BudgetTripped {
                reason: reason.as_str(),
            });
        }
    }

    /// Run the transformation exploration fixpoint without any costing —
    /// the paper's "extreme case" where "a logical expression is
    /// transformed on the logical algebra level without optimizing its
    /// subexpressions and without performing algorithm selection and cost
    /// analysis" (§4.1): Starburst's query-rewrite level as a *choice*,
    /// not a mandatory layer.
    pub fn explore(&mut self) {
        self.arm_deadline();
        self.explore_fixpoint();
    }

    /// The serial exploration fixpoint. Each pass snapshots the pending
    /// (expression, rule) tasks, matches them all against the frozen
    /// memo, then installs the products — the same pass structure the
    /// parallel path uses, so both produce identical memos and stats.
    fn explore_fixpoint(&mut self) {
        let model = self.model;
        let rules = model.transformations();
        loop {
            self.check_budget();
            if self.tripped.is_some() {
                break;
            }
            self.stats.explore_passes += 1;
            let tasks = self.collect_explore_tasks();
            if tasks.is_empty() {
                break;
            }
            let version_before = self.memo.version();
            let mut products = Vec::with_capacity(tasks.len());
            for &(e, ri) in &tasks {
                self.check_budget();
                if self.tripped.is_some() {
                    break;
                }
                products.push(run_explore_task(&self.memo, rules[ri].as_ref(), e, ri));
            }
            let changed = self.install_products(version_before, products);
            if !changed {
                break;
            }
        }
    }

    /// Parallel transformation exploration on shared memory — one of the
    /// paper's stated research directions for the search engine (§6:
    /// "parallel search (on shared-memory machines)").
    ///
    /// Each fixpoint pass fans the pattern matching, condition code, and
    /// substitute construction — all read-only over the memo — across
    /// `threads` scoped threads; the produced substitutes are installed
    /// serially in task order (the memo's hash table and union–find stay
    /// single-writer). Identical to [`Optimizer::explore`] in resulting
    /// memo *and statistics*; call it explicitly before
    /// [`Optimizer::find_best_plan`] to front-load the exploration in
    /// parallel.
    ///
    /// A panic in a rule's condition/apply code is caught per task and
    /// surfaced as [`OptimizeError::RulePanicked`] instead of aborting
    /// the process; the pass that panicked installs nothing, so the memo
    /// retains only fully-installed passes.
    pub fn explore_parallel(&mut self, threads: usize) -> Result<(), OptimizeError>
    where
        M: Sync,
        M::Op: Send + Sync,
        M::Alg: Sync,
        M::LogicalProps: Sync,
        M::PhysProps: Send + Sync,
        M::Cost: Sync,
    {
        self.arm_deadline();
        let threads = threads.max(1);
        let model = self.model;
        let rules = model.transformations();
        loop {
            self.check_budget();
            if self.tripped.is_some() {
                break;
            }
            self.stats.explore_passes += 1;
            let tasks = self.collect_explore_tasks();
            if tasks.is_empty() {
                break;
            }
            let version_before = self.memo.version();
            let deadline = self.deadline;
            let cancel: Option<CancelToken> = self.opts.budget.cancel.clone();

            // Fan the read-only work out over scoped threads. Workers
            // poll the deadline and cancellation token between tasks so a
            // budgeted exploration stops promptly; completed products are
            // still returned and installed.
            let memo = &self.memo;
            let chunk = tasks.len().div_ceil(threads).max(1);
            let mut products: Vec<ExploreProduct<M>> = Vec::with_capacity(tasks.len());
            let mut worker_error: Option<OptimizeError> = None;
            std::thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .chunks(chunk)
                    .map(|chunk_tasks| {
                        let cancel = cancel.clone();
                        scope.spawn(move || -> Result<Vec<ExploreProduct<M>>, OptimizeError> {
                            let mut out = Vec::with_capacity(chunk_tasks.len());
                            for &(e, ri) in chunk_tasks {
                                if deadline.is_some_and(|d| Instant::now() >= d)
                                    || cancel.as_ref().is_some_and(|c| c.is_cancelled())
                                {
                                    break;
                                }
                                let rule = rules[ri].as_ref();
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_explore_task(memo, rule, e, ri)
                                })) {
                                    Ok(p) => out.push(p),
                                    Err(payload) => {
                                        return Err(OptimizeError::RulePanicked {
                                            rule: rule.name().to_string(),
                                            message: panic_message(payload.as_ref()),
                                        })
                                    }
                                }
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(Ok(chunk_products)) => products.extend(chunk_products),
                        Ok(Err(e)) => {
                            worker_error.get_or_insert(e);
                        }
                        Err(payload) => {
                            worker_error.get_or_insert(OptimizeError::RulePanicked {
                                rule: "<worker>".to_string(),
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
            });
            if let Some(e) = worker_error {
                return Err(e);
            }
            let changed = self.install_products(version_before, products);
            if !changed {
                break;
            }
        }
        Ok(())
    }

    /// Collect the (expression, rule) pairs whose watermarks require a
    /// (re-)match in this pass. Depth-1 patterns see only the
    /// expression's own operator, so matching them once is exhaustive;
    /// deeper patterns must re-match whenever the memo has grown, because
    /// input classes may have gained members.
    fn collect_explore_tasks(&mut self) -> Vec<(ExprId, usize)> {
        let version = self.memo.version();
        let mut tasks = Vec::new();
        for i in 0..self.memo.num_exprs() {
            let e = ExprId::from_index(i);
            if !self.memo.is_live(e) {
                continue;
            }
            self.ensure_watermarks(e);
            // Candidate rules for this operator: the full list without
            // the index (disc `None` maps to "all"), the indexed subset —
            // same rules in the same ascending order minus guaranteed
            // root-matcher rejections — with it.
            let disc = if self.opts.rule_index {
                self.model.op_discriminant(self.memo.expr(e).0)
            } else {
                None
            };
            for &ri in self.rule_index.transform_candidates(disc) {
                let wm = self.watermarks[e.index()][ri];
                if wm == NEVER || (self.rule_depths[ri] > 1 && version > wm) {
                    tasks.push((e, ri));
                }
            }
        }
        tasks
    }

    /// Serial install phase shared by both exploration paths: count,
    /// trace, stamp watermarks, and insert substitutes, in task order.
    /// Expressions retired by a group merge earlier in the same install
    /// phase are skipped entirely — no counts, no events, no watermark —
    /// because their live twin (same operator, same canonical inputs)
    /// yields the same substitutes.
    fn install_products(&mut self, version_before: u64, products: Vec<ExploreProduct<M>>) -> bool {
        let model = self.model;
        let rules = model.transformations();
        let traced = self.tracer.enabled();
        let mut changed = false;
        for p in products {
            self.check_budget();
            if self.tripped.is_some() {
                // Stop growing the memo; unstamped tasks simply never ran.
                break;
            }
            if !self.memo.is_live(p.expr) {
                continue;
            }
            if p.root_matched {
                self.stats.transform_matches += 1;
            }
            self.stats.transform_fired += p.firings.len() as u64;
            if traced {
                for &n in &p.firings {
                    self.tracer.event(TraceEvent::RuleFired {
                        rule: rules[p.rule_idx].name(),
                        expr: p.expr,
                        substitutes: n,
                    });
                }
            }
            self.ensure_watermarks(p.expr);
            // Pass-start version: conservative for a snapshot match — the
            // pass may install expressions this task never saw, so a
            // deeper pattern must be allowed to re-match against them.
            self.watermarks[p.expr.index()][p.rule_idx] = version_before;
            if !p.subs.is_empty() {
                let target = self.memo.group_of(p.expr);
                for s in &p.subs {
                    self.stats.substitutes_produced += 1;
                    changed |= self.memo.insert_subst(model, s, target);
                }
            }
        }
        changed
    }

    fn ensure_watermarks(&mut self, e: ExprId) {
        let nrules = self.rule_depths.len();
        while self.watermarks.len() <= e.index() {
            self.watermarks.push(vec![NEVER; nrules]);
        }
    }

    /// Optimize `root` for the required physical properties under an
    /// optional cost limit ("typically infinity for a user query, but the
    /// user interface may permit users to set their own limits to 'catch'
    /// unreasonable queries", §3) and return the optimal plan — or, when
    /// the [`SearchBudget`] trips mid-search, the best plan greedy
    /// completion produced (a valid upper bound; see the module docs).
    pub fn find_best_plan(
        &mut self,
        root: GroupId,
        required: M::PhysProps,
        limit: Option<M::Cost>,
    ) -> Result<Plan<M>, OptimizeError> {
        let start = Instant::now();
        self.arm_deadline();
        self.explore_fixpoint();
        let goal = self.memo.intern_goal(&required, &M::PhysProps::any());
        let had_limit = limit.is_some();
        let res = self.optimize_goal(root, goal, Limit(limit));
        self.stats.elapsed += start.elapsed();
        self.stats.exprs_created = self.memo.num_exprs();
        self.stats.groups_created = self.memo.num_allocated_groups();
        self.stats.group_merges = self.memo.merge_count();
        self.stats.dead_exprs = self.memo.dead_expr_count();
        self.stats.memo_bytes = self.memo.memory_estimate();
        self.stats.outcome = match self.tripped {
            None => BudgetOutcome::Exhaustive,
            Some(r) => BudgetOutcome::Degraded(r),
        };
        match res {
            Ok(_) => Ok(self
                .extract_plan(root, goal)
                .expect("winner recorded for successful goal")),
            Err(_) => {
                // With an unlimited budget the failure is structural (the
                // model cannot implement the expression); with a finite
                // budget the plan may simply be too expensive.
                if had_limit {
                    Err(OptimizeError::LimitExceeded)
                } else {
                    Err(OptimizeError::NoPlan)
                }
            }
        }
    }

    /// The optimal cost memoized for a goal, if any. Read-only: probes
    /// the goal interner without cloning the property vectors (a goal
    /// that was never interned was never optimized, so it has no winner).
    pub fn best_cost(&self, group: GroupId, required: &M::PhysProps) -> Option<M::Cost> {
        let goal = self.memo.find_goal(required, &M::PhysProps::any())?;
        match self.memo.winner(self.memo.repr(group), goal) {
            Some(Winner::Optimal(p)) => Some(p.total_cost.clone()),
            _ => None,
        }
    }

    /// The recursive heart of Figure 2.
    fn optimize_goal(
        &mut self,
        group: GroupId,
        goal: GoalId,
        limit: Limit<M::Cost>,
    ) -> Result<M::Cost, GoalFailure> {
        let group = self.memo.repr(group);
        // Ablation escape hatch: with interning disabled, re-derive the
        // goal id from freshly cloned property vectors on every entry —
        // the legacy clone + full-hash cost profile, identical results.
        let goal = if self.opts.goal_interning {
            goal
        } else {
            let g = self.memo.goal(goal).clone();
            self.memo.intern_goal(&g.required, &g.excluded)
        };

        // "if the pair LogExpr and PhysProp is in the look-up table ..."
        if let Some(w) = self.memo.winner(group, goal) {
            match w {
                Winner::Optimal(p) => {
                    // Optimal entries are true optima (branch-and-bound
                    // returns optimal completions), so the limit check is
                    // definitive either way.
                    return if limit.admits(&p.total_cost) {
                        self.stats.winner_hits += 1;
                        let cost = p.total_cost.clone();
                        if self.tracer.enabled() {
                            self.tracer.event(TraceEvent::MemoHit {
                                group,
                                kind: MemoHitKind::Winner,
                            });
                        }
                        Ok(cost)
                    } else {
                        self.stats.failure_hits += 1;
                        if self.tracer.enabled() {
                            self.tracer.event(TraceEvent::MemoHit {
                                group,
                                kind: MemoHitKind::Failure,
                            });
                        }
                        Err(GoalFailure { memoizable: true })
                    };
                }
                Winner::Failure { tried } => {
                    if tried.at_least_as_permissive_as(&limit) {
                        self.stats.failure_hits += 1;
                        if self.tracer.enabled() {
                            self.tracer.event(TraceEvent::MemoHit {
                                group,
                                kind: MemoHitKind::Failure,
                            });
                        }
                        return Err(GoalFailure { memoizable: true });
                    }
                    // A more permissive budget than any tried before:
                    // actual (re-)optimization is required.
                }
            }
        }

        // "the current expression and physical property vector is marked
        // as 'in progress'" — cycle breaking for inverse rules. The RAII
        // guard removes the mark on every exit path.
        let key = (group, goal);
        if self.in_progress.borrow().contains(&key) {
            return Err(GoalFailure { memoizable: false });
        }
        let _cycle_mark = CycleGuard::mark(&self.in_progress, key);
        self.stats.goals_optimized += 1;
        self.check_budget();
        let traced = self.tracer.enabled();
        let goal_start = traced.then(Instant::now);
        if traced {
            self.tracer.event(TraceEvent::GoalBegin {
                group,
                required: format!("{:?}", self.memo.goal(goal).required),
            });
        }

        let (mut moves, bindings) = self.generate_moves(group, goal);
        if self.opts.promise_ordering {
            // Stable sort by descending promise: "order the set of moves
            // by promise". `total_cmp` gives NaN a fixed position (after
            // every finite promise in descending order), so a NaN promise
            // can no longer scramble move order between runs.
            moves.sort_by(|a, b| b.promise().total_cmp(&a.promise()));
        }
        if let Some(k) = self.opts.move_limit {
            // "for the most promising moves": heuristic move selection.
            moves.truncate(k);
        }
        let moves_pursued = moves.len() as u64;

        let mut best: Option<WinnerPlan<M>> = None;
        let mut bound = limit.clone();
        let mut nonmemoizable_failure = false;

        for mv in moves {
            self.check_budget();
            if self.tripped.is_some() && best.is_some() {
                // Greedy completion: the budget is exhausted and a
                // feasible plan is in hand — take the first success in
                // promise order instead of enumerating the rest.
                break;
            }
            match mv {
                Move::Alg {
                    rule_idx,
                    binding,
                    app,
                    ..
                } => {
                    if let Err(nm) = self.pursue_alg(
                        group,
                        rule_idx,
                        &bindings[binding as usize],
                        app,
                        &mut best,
                        &mut bound,
                    ) {
                        nonmemoizable_failure |= nm;
                    }
                }
                Move::Enf { enf_idx, app, .. } => {
                    if let Err(nm) = self.pursue_enf(group, enf_idx, app, &mut best, &mut bound) {
                        nonmemoizable_failure |= nm;
                    }
                }
            }
        }

        let outcome = match best {
            Some(plan) => {
                let cost = plan.total_cost.clone();
                debug_assert!(
                    plan.delivered.satisfies(&self.memo.goal(goal).required),
                    "chosen plan's physical properties {:?} do not satisfy the goal {:?}",
                    plan.delivered,
                    self.memo.goal(goal).required
                );
                self.stats.winners_recorded += 1;
                if self.tripped.is_some() {
                    self.stats.greedy_goals += 1;
                }
                self.memo.set_winner(group, goal, Winner::Optimal(plan));
                if limit.admits(&cost) {
                    Ok(cost)
                } else {
                    Err(GoalFailure { memoizable: true })
                }
            }
            None => {
                // A failure observed while the budget is tripped may be
                // an artifact of greedy completion (an input's greedy
                // plan overshooting a limit an optimal plan would meet),
                // not a proven fact — never memoize it.
                let memoizable = !nonmemoizable_failure && self.tripped.is_none();
                if memoizable && self.opts.failure_memo {
                    self.stats.failures_recorded += 1;
                    self.memo.set_winner(
                        group,
                        goal,
                        Winner::Failure {
                            tried: limit.clone(),
                        },
                    );
                }
                Err(GoalFailure { memoizable })
            }
        };

        if traced {
            self.tracer.event(TraceEvent::GoalEnd {
                group,
                outcome: match &outcome {
                    Ok(c) => format!("optimal cost {c:?}"),
                    Err(_) => "failure".to_string(),
                },
                elapsed: goal_start.map(|s| s.elapsed()).unwrap_or_default(),
                moves: moves_pursued,
            });
        }
        outcome
    }

    /// Generate the algorithm and enforcer moves for a goal, plus the
    /// binding arena `Move::Alg` entries index into. Bindings stream
    /// straight out of the matcher into the arena — no intermediate
    /// `Vec<Binding>` per (expression, rule) pair, no per-move clones; a
    /// binding is stored only if at least one move uses it, and shared by
    /// all of that binding's applications.
    fn generate_moves(&mut self, group: GroupId, goal: GoalId) -> (Vec<Move<M>>, Vec<Binding<M>>) {
        // Disjoint field borrows: the matcher callback reads `memo` while
        // mutating the tracer, move list, and arena.
        let Optimizer {
            ref memo,
            model,
            ref mut tracer,
            ref opts,
            ref rule_index,
            ..
        } = *self;
        let mut moves: Vec<Move<M>> = Vec::new();
        let mut bindings: Vec<Binding<M>> = Vec::new();
        let goal = memo.goal(goal);
        let exclude_active = !goal.excluded.is_any();
        let mut excluded_count = 0u64;
        let traced = tracer.enabled();

        let ctx = RuleCtx::new(memo);
        // "there might be some algorithms that can deliver the logical
        // expression with the desired physical properties".
        for expr in memo.group_exprs(group) {
            let disc = if opts.rule_index {
                model.op_discriminant(memo.expr(expr).0)
            } else {
                None
            };
            for &ri in rule_index.impl_candidates(disc) {
                let rule = &model.implementations()[ri];
                match_pattern_with(memo, rule.pattern(), expr, &mut |binding| {
                    if !rule.condition(&binding, &ctx) {
                        return;
                    }
                    let mut used = false;
                    for app in rule.applies(&binding, &goal.required, &ctx) {
                        debug_assert!(
                            app.delivers.satisfies(&goal.required),
                            "applicability function of {} produced properties {:?} that \
                             do not satisfy {:?}",
                            rule.name(),
                            app.delivers,
                            goal.required
                        );
                        // "algorithms that already applied before
                        // relaxing the physical properties must not be
                        // explored again" below an enforcer.
                        if exclude_active && app.delivers.satisfies(&goal.excluded) {
                            excluded_count += 1;
                            if traced {
                                tracer.event(TraceEvent::MoveExcluded {
                                    group,
                                    reason: format!(
                                        "{} delivers {:?}, already enforced",
                                        rule.name(),
                                        app.delivers
                                    ),
                                });
                            }
                            continue;
                        }
                        let promise = rule.promise(&app, &binding, &ctx);
                        moves.push(Move::Alg {
                            rule_idx: ri,
                            binding: bindings.len() as u32,
                            app,
                            promise,
                        });
                        used = true;
                    }
                    if used {
                        bindings.push(binding);
                    }
                });
            }
        }
        // "an enforcer might be useful to permit additional algorithm
        // choices".
        for (ei, enf) in model.enforcers().iter().enumerate() {
            for app in enf.applies(&goal.required, group, &ctx) {
                if exclude_active && app.delivers.satisfies(&goal.excluded) {
                    excluded_count += 1;
                    if traced {
                        tracer.event(TraceEvent::MoveExcluded {
                            group,
                            reason: format!(
                                "enforcer {} delivers {:?}, already enforced",
                                enf.name(),
                                app.delivers
                            ),
                        });
                    }
                    continue;
                }
                let promise = enf.promise(&app, group, &ctx);
                moves.push(Move::Enf {
                    enf_idx: ei,
                    app,
                    promise,
                });
            }
        }
        self.stats.moves_excluded += excluded_count;
        (moves, bindings)
    }

    /// Pursue an algorithm move: cost the algorithm, then optimize each
    /// input for its required properties while the accumulated cost stays
    /// under the bound. Returns `Err(nonmemoizable)` when abandoned.
    fn pursue_alg(
        &mut self,
        group: GroupId,
        rule_idx: usize,
        binding: &Binding<M>,
        app: AlgApplication<M>,
        best: &mut Option<WinnerPlan<M>>,
        bound: &mut Limit<M::Cost>,
    ) -> Result<(), bool> {
        self.stats.alg_moves += 1;
        let model = self.model;
        let rule = &model.implementations()[rule_idx];
        let local = {
            let ctx = RuleCtx::new(&self.memo);
            rule.cost(&app, binding, &ctx)
        };
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.event(TraceEvent::MoveCosted {
                group,
                description: format!("{} via {:?}", rule.name(), app.alg),
            });
        }

        let leaves = binding.leaf_groups();
        assert_eq!(
            leaves.len(),
            app.input_props.len(),
            "rule {} produced {} input property vectors for {} bound input groups",
            rule.name(),
            app.input_props.len(),
            leaves.len()
        );

        // "TotalCost := cost of the algorithm; for each input I while
        // TotalCost < Limit ..."
        let any = M::PhysProps::any();
        let mut total = local.clone();
        let mut input_goals = Vec::with_capacity(leaves.len());
        for (g, props) in leaves.iter().zip(app.input_props.iter()) {
            if self.opts.pruning && !bound.admits(&total) {
                self.stats.moves_pruned += 1;
                if traced {
                    self.tracer.event(TraceEvent::MovePruned {
                        group,
                        reason: format!(
                            "{} via {:?}: accumulated cost {:?} over limit",
                            rule.name(),
                            app.alg,
                            total
                        ),
                    });
                }
                return Err(false);
            }
            // Interning clones the property vector only the first time
            // this (required, any) combination is ever requested.
            let child_goal = self.memo.intern_goal(props, &any);
            let child_limit = if self.opts.pruning {
                bound.spend(&total)
            } else {
                Limit::unlimited()
            };
            match self.optimize_goal(*g, child_goal, child_limit) {
                Ok(c) => {
                    total = total.add(&c);
                    input_goals.push(InputGoal {
                        group: *g,
                        goal: child_goal,
                    });
                }
                Err(f) => return Err(!f.memoizable),
            }
        }

        self.consider_candidate(
            WinnerPlan {
                alg: app.alg,
                delivered: app.delivers,
                local_cost: local,
                total_cost: total,
                inputs: input_goals,
                expr: Some(binding.expr),
            },
            best,
            bound,
        );
        Ok(())
    }

    /// Pursue an enforcer move: cost the enforcer, subtract its cost from
    /// the bound (§6), and optimize the *same* group for the relaxed
    /// property vector with the enforced properties excluded.
    fn pursue_enf(
        &mut self,
        group: GroupId,
        enf_idx: usize,
        app: EnforcerApplication<M>,
        best: &mut Option<WinnerPlan<M>>,
        bound: &mut Limit<M::Cost>,
    ) -> Result<(), bool> {
        self.stats.enforcer_moves += 1;
        let model = self.model;
        let enf = &model.enforcers()[enf_idx];
        let local = {
            let ctx = RuleCtx::new(&self.memo);
            enf.cost(&app, group, &ctx)
        };
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.event(TraceEvent::MoveCosted {
                group,
                description: format!("enforcer {} as {:?}", enf.name(), app.alg),
            });
        }

        if self.opts.pruning && !bound.admits(&local) {
            self.stats.moves_pruned += 1;
            if traced {
                self.tracer.event(TraceEvent::MovePruned {
                    group,
                    reason: format!(
                        "enforcer {} as {:?}: local cost {:?} over limit",
                        enf.name(),
                        app.alg,
                        local
                    ),
                });
            }
            return Err(false);
        }
        let child_goal = self.memo.intern_goal(&app.relaxed, &app.excluded);
        let child_limit = if self.opts.pruning {
            bound.spend(&local)
        } else {
            Limit::unlimited()
        };
        match self.optimize_goal(group, child_goal, child_limit) {
            Ok(c) => {
                self.consider_candidate(
                    WinnerPlan {
                        alg: app.alg,
                        delivered: app.delivers,
                        local_cost: local.clone(),
                        total_cost: local.add(&c),
                        inputs: vec![InputGoal {
                            group,
                            goal: child_goal,
                        }],
                        expr: None,
                    },
                    best,
                    bound,
                );
                Ok(())
            }
            Err(f) => Err(!f.memoizable),
        }
    }

    /// Accept a completed candidate if it beats the best plan so far,
    /// tightening the branch-and-bound limit: "once a complete plan is
    /// known ... no other plan or partial plan with higher cost can be
    /// part of the optimal query evaluation plan".
    fn consider_candidate(
        &mut self,
        candidate: WinnerPlan<M>,
        best: &mut Option<WinnerPlan<M>>,
        bound: &mut Limit<M::Cost>,
    ) {
        let better = match best {
            None => !self.opts.pruning || bound.admits(&candidate.total_cost),
            Some(b) => candidate.total_cost.cheaper_than(&b.total_cost),
        };
        if better {
            if self.opts.pruning {
                *bound = bound.tighten(&candidate.total_cost);
            }
            *best = Some(candidate);
        }
    }

    /// Materialize the memoized optimal plan for a goal.
    fn extract_plan(&self, group: GroupId, goal: GoalId) -> Option<Plan<M>> {
        let group = self.memo.repr(group);
        match self.memo.winner(group, goal)? {
            Winner::Failure { .. } => None,
            Winner::Optimal(p) => {
                // The paper's consistency check: "generated optimizers
                // verify that the physical properties of a chosen plan
                // really do satisfy the physical property vector given as
                // part of the optimization goal" (§2.2).
                assert!(
                    p.delivered.satisfies(&self.memo.goal(goal).required),
                    "plan properties {:?} violate goal {:?}",
                    p.delivered,
                    self.memo.goal(goal).required
                );
                let inputs = p
                    .inputs
                    .iter()
                    .map(|ig| {
                        self.extract_plan(ig.group, ig.goal)
                            .expect("input goal of a winner must itself have a winner")
                    })
                    .collect();
                Some(Plan {
                    alg: p.alg.clone(),
                    delivered: p.delivered.clone(),
                    local_cost: p.local_cost.clone(),
                    cost: p.total_cost.clone(),
                    group,
                    inputs,
                })
            }
        }
    }
}
