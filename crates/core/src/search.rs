//! The search engine: directed dynamic programming (§3, Figure 2).
//!
//! `FindBestPlan` is split exactly as the paper describes: first the
//! winner table (plans *and* memoized failures) is consulted; if actual
//! optimization is required, the possible *moves* — applicable
//! transformations, algorithms that give the required physical properties,
//! and enforcers for required physical properties — are generated, ordered
//! by promise, and pursued under a branch-and-bound cost limit.
//!
//! Transformations are exhausted in an up-front *exploration* fixpoint
//! (each (expression, rule) pair fires once, with re-matching when a
//! multi-level pattern's input classes grow). With exhaustive search this
//! is equivalent to interleaving transformation moves — every logical
//! expression is derived either way and the memo collapses duplicate
//! derivations — while keeping the costing recursion strictly goal-driven:
//! plans are derived "only for those partial queries that are considered
//! as parts of larger subqueries, not all equivalent expressions and plans
//! that are feasible or seem interesting by their sort order".

use std::collections::HashSet;
use std::time::Instant;

use crate::cost::{Cost, Limit};
use crate::error::OptimizeError;
use crate::expr::{ExprTree, SubstExpr};
use crate::ids::{ExprId, GroupId};
use crate::memo::{Goal, InputGoal, Memo, Winner, WinnerPlan};
use crate::model::Model;
use crate::pattern::{match_pattern, Binding};
use crate::plan::Plan;
use crate::props::PhysicalProps;
use crate::rules::{AlgApplication, EnforcerApplication, RuleCtx};
use crate::stats::SearchStats;
use crate::trace::{MemoHitKind, NullTracer, TraceEvent, Tracer};

/// Version sentinel for "this (expression, rule) pair has never matched".
const NEVER: u64 = u64::MAX;

/// One unit of parallel exploration output: the matched expression, the
/// rule index, the substitutes produced, and the fired/produced counts.
type ExploreProduct<M> = (ExprId, usize, Vec<SubstExpr<M>>, u64, u64);

/// Knobs controlling the search strategy.
///
/// The defaults reproduce the paper's engine (exhaustive, pruned,
/// memoizing). The toggles exist because "pursuing all moves or only a
/// selected few is a major heuristic placed into the hands of the
/// optimizer implementor" (§3) — and because the ablation benchmarks need
/// to quantify each mechanism's contribution.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Branch-and-bound pruning: pass tightened cost limits into input
    /// optimizations and abandon moves whose accumulated cost crosses the
    /// bound. Disabling reverts to plain exhaustive dynamic programming.
    pub pruning: bool,
    /// Memoize optimization *failures* so a later request with the same
    /// or a lower cost limit fails without search.
    pub failure_memo: bool,
    /// Order moves by descending promise before pursuing them.
    pub promise_ordering: bool,
    /// Pursue only the `k` most promising moves per goal (heuristic,
    /// sacrifices optimality). `None` = exhaustive.
    pub move_limit: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            pruning: true,
            failure_memo: true,
            promise_ordering: true,
            move_limit: None,
        }
    }
}

/// Why a goal could not be satisfied (internal).
struct GoalFailure {
    /// `true` when the failure is a proven fact for this goal and limit
    /// (safe to memoize); `false` when it is an artifact of cycle
    /// breaking ("in progress" marks) and must not poison the memo.
    memoizable: bool,
}

/// One move the engine may pursue for a goal (§3: "three sets of possible
/// moves"; transformations are exhausted during exploration).
enum Move<M: Model> {
    Alg {
        rule_idx: usize,
        binding: Binding<M>,
        app: AlgApplication<M>,
        promise: f64,
    },
    Enf {
        enf_idx: usize,
        app: EnforcerApplication<M>,
        promise: f64,
    },
}

impl<M: Model> Move<M> {
    fn promise(&self) -> f64 {
        match self {
            Move::Alg { promise, .. } | Move::Enf { promise, .. } => *promise,
        }
    }
}

/// A generated optimizer: the search engine instantiated for one model.
pub struct Optimizer<'m, M: Model> {
    model: &'m M,
    memo: Memo<M>,
    opts: SearchOptions,
    stats: SearchStats,
    /// Goals currently being optimized, for cycle detection among
    /// mutually inverse transformation derivations.
    in_progress: HashSet<(GroupId, Goal<M>)>,
    /// Per-expression, per-transformation-rule memo version at the last
    /// pattern match (`NEVER` = not yet matched).
    watermarks: Vec<Vec<u64>>,
    /// Transformation pattern depths, cached from the model.
    rule_depths: Vec<usize>,
    tracer: Box<dyn Tracer>,
}

impl<'m, M: Model> Optimizer<'m, M> {
    /// Create an optimizer for `model` with the given search options.
    pub fn new(model: &'m M, opts: SearchOptions) -> Self {
        let rule_depths = model
            .transformations()
            .iter()
            .map(|r| r.pattern().depth())
            .collect();
        Optimizer {
            model,
            memo: Memo::new(),
            opts,
            stats: SearchStats::default(),
            in_progress: HashSet::new(),
            watermarks: Vec::new(),
            rule_depths,
            tracer: Box::new(NullTracer),
        }
    }

    /// Attach a tracer receiving structured search events.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// Insert a query (logical algebra expression) and return its root
    /// equivalence class.
    pub fn insert_tree(&mut self, tree: &ExprTree<M>) -> GroupId {
        self.memo.insert_tree(self.model, tree)
    }

    /// The memo, for inspection and testing.
    pub fn memo(&self) -> &Memo<M> {
        &self.memo
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Run the transformation exploration fixpoint without any costing —
    /// the paper's "extreme case" where "a logical expression is
    /// transformed on the logical algebra level without optimizing its
    /// subexpressions and without performing algorithm selection and cost
    /// analysis" (§4.1): Starburst's query-rewrite level as a *choice*,
    /// not a mandatory layer.
    pub fn explore(&mut self) {
        let model = self.model;
        let rules = model.transformations();
        let traced = self.tracer.enabled();
        loop {
            self.stats.explore_passes += 1;
            let mut changed = false;
            let mut i = 0;
            while i < self.memo.num_exprs() {
                let e = ExprId::from_index(i);
                i += 1;
                if !self.memo.is_live(e) {
                    continue;
                }
                for (ri, rule) in rules.iter().enumerate() {
                    self.ensure_watermarks(e);
                    let wm = self.watermarks[e.index()][ri];
                    // Depth-1 patterns see only this expression's own
                    // operator: matching them once is exhaustive. Deeper
                    // patterns must be re-matched when the memo grows,
                    // because input classes may have gained members.
                    let needs_match =
                        wm == NEVER || (self.rule_depths[ri] > 1 && self.memo.version() > wm);
                    if !needs_match {
                        continue;
                    }
                    let version_before = self.memo.version();
                    self.stats.transform_matches += 1;
                    let bindings = match_pattern(&self.memo, rule.pattern(), e);
                    let mut products = Vec::new();
                    {
                        let ctx = RuleCtx::new(&self.memo);
                        for b in &bindings {
                            if rule.condition(b, &ctx) {
                                self.stats.transform_fired += 1;
                                let subs = rule.apply(b, &ctx);
                                if traced {
                                    self.tracer.event(TraceEvent::RuleFired {
                                        rule: rule.name(),
                                        expr: e,
                                        substitutes: subs.len() as u64,
                                    });
                                }
                                products.extend(subs);
                            }
                        }
                    }
                    self.watermarks[e.index()][ri] = version_before;
                    if !products.is_empty() {
                        let target = self.memo.group_of(e);
                        for p in &products {
                            self.stats.substitutes_produced += 1;
                            changed |= self.memo.insert_subst(model, p, target);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Parallel transformation exploration on shared memory — one of the
    /// paper's stated research directions for the search engine (§6:
    /// "parallel search (on shared-memory machines)").
    ///
    /// Each fixpoint pass fans the pattern matching, condition code, and
    /// substitute construction — all read-only over the memo — across
    /// `threads` scoped threads; the produced substitutes are installed
    /// serially (the memo's hash table and union–find stay
    /// single-writer). Equivalent to [`Optimizer::explore`] in outcome;
    /// call it explicitly before [`Optimizer::find_best_plan`] to
    /// front-load the exploration in parallel.
    pub fn explore_parallel(&mut self, threads: usize)
    where
        M: Sync,
        M::Op: Send + Sync,
        M::Alg: Sync,
        M::LogicalProps: Sync,
        M::PhysProps: Send + Sync,
        M::Cost: Sync,
    {
        let threads = threads.max(1);
        let model = self.model;
        let rules = model.transformations();
        loop {
            self.stats.explore_passes += 1;

            // Collect the (expression, rule) pairs that need matching in
            // this pass.
            let mut tasks: Vec<(ExprId, usize)> = Vec::new();
            for i in 0..self.memo.num_exprs() {
                let e = ExprId::from_index(i);
                if !self.memo.is_live(e) {
                    continue;
                }
                self.ensure_watermarks(e);
                for ri in 0..rules.len() {
                    let wm = self.watermarks[e.index()][ri];
                    let needs =
                        wm == NEVER || (self.rule_depths[ri] > 1 && self.memo.version() > wm);
                    if needs {
                        tasks.push((e, ri));
                    }
                }
            }
            if tasks.is_empty() {
                break;
            }
            let version_before = self.memo.version();

            // Fan the read-only work out over scoped threads.
            let memo = &self.memo;
            let chunk = tasks.len().div_ceil(threads);
            let mut products: Vec<ExploreProduct<M>> = std::thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .chunks(chunk.max(1))
                    .map(|chunk_tasks| {
                        scope.spawn(move || {
                            let ctx = RuleCtx::new(memo);
                            let mut out = Vec::with_capacity(chunk_tasks.len());
                            for &(e, ri) in chunk_tasks {
                                let rule = &rules[ri];
                                let mut fired = 0u64;
                                let mut subs = Vec::new();
                                for b in match_pattern(memo, rule.pattern(), e) {
                                    if rule.condition(&b, &ctx) {
                                        fired += 1;
                                        subs.extend(rule.apply(&b, &ctx));
                                    }
                                }
                                let produced = subs.len() as u64;
                                out.push((e, ri, subs, fired, produced));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("exploration worker panicked"))
                    .collect()
            });

            // Serial install phase.
            let mut changed = false;
            for (e, ri, subs, fired, produced) in products.drain(..) {
                self.stats.transform_matches += 1;
                self.stats.transform_fired += fired;
                self.stats.substitutes_produced += produced;
                if fired > 0 && self.tracer.enabled() {
                    // One event per (expression, rule) batch: the parallel
                    // workers don't stream per-binding events.
                    self.tracer.event(TraceEvent::RuleFired {
                        rule: rules[ri].name(),
                        expr: e,
                        substitutes: produced,
                    });
                }
                self.watermarks[e.index()][ri] = version_before;
                if !subs.is_empty() && self.memo.is_live(e) {
                    let target = self.memo.group_of(e);
                    for p in &subs {
                        changed |= self.memo.insert_subst(model, p, target);
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn ensure_watermarks(&mut self, e: ExprId) {
        let nrules = self.rule_depths.len();
        while self.watermarks.len() <= e.index() {
            self.watermarks.push(vec![NEVER; nrules]);
        }
    }

    /// Optimize `root` for the required physical properties under an
    /// optional cost limit ("typically infinity for a user query, but the
    /// user interface may permit users to set their own limits to 'catch'
    /// unreasonable queries", §3) and return the optimal plan.
    pub fn find_best_plan(
        &mut self,
        root: GroupId,
        required: M::PhysProps,
        limit: Option<M::Cost>,
    ) -> Result<Plan<M>, OptimizeError> {
        let start = Instant::now();
        self.explore();
        let goal = Goal {
            required,
            excluded: M::PhysProps::any(),
        };
        let had_limit = limit.is_some();
        let res = self.optimize_goal(root, goal.clone(), Limit(limit));
        self.stats.elapsed += start.elapsed();
        self.stats.exprs_created = self.memo.num_exprs();
        self.stats.groups_created = self.memo.num_allocated_groups();
        self.stats.group_merges = self.memo.merge_count();
        self.stats.dead_exprs = self.memo.dead_expr_count();
        self.stats.memo_bytes = self.memo.memory_estimate();
        match res {
            Ok(_) => Ok(self
                .extract_plan(root, &goal)
                .expect("winner recorded for successful goal")),
            Err(_) => {
                // With an unlimited budget the failure is structural (the
                // model cannot implement the expression); with a finite
                // budget the plan may simply be too expensive.
                if had_limit {
                    Err(OptimizeError::LimitExceeded)
                } else {
                    Err(OptimizeError::NoPlan)
                }
            }
        }
    }

    /// The optimal cost memoized for a goal, if any.
    pub fn best_cost(&self, group: GroupId, required: &M::PhysProps) -> Option<M::Cost> {
        let goal = Goal {
            required: required.clone(),
            excluded: M::PhysProps::any(),
        };
        match self.memo.winner(self.memo.repr(group), &goal) {
            Some(Winner::Optimal(p)) => Some(p.total_cost.clone()),
            _ => None,
        }
    }

    /// The recursive heart of Figure 2.
    fn optimize_goal(
        &mut self,
        group: GroupId,
        goal: Goal<M>,
        limit: Limit<M::Cost>,
    ) -> Result<M::Cost, GoalFailure> {
        let group = self.memo.repr(group);

        // "if the pair LogExpr and PhysProp is in the look-up table ..."
        if let Some(w) = self.memo.winner(group, &goal) {
            match w {
                Winner::Optimal(p) => {
                    // Optimal entries are true optima (branch-and-bound
                    // returns optimal completions), so the limit check is
                    // definitive either way.
                    return if limit.admits(&p.total_cost) {
                        self.stats.winner_hits += 1;
                        let cost = p.total_cost.clone();
                        if self.tracer.enabled() {
                            self.tracer.event(TraceEvent::MemoHit {
                                group,
                                kind: MemoHitKind::Winner,
                            });
                        }
                        Ok(cost)
                    } else {
                        self.stats.failure_hits += 1;
                        if self.tracer.enabled() {
                            self.tracer.event(TraceEvent::MemoHit {
                                group,
                                kind: MemoHitKind::Failure,
                            });
                        }
                        Err(GoalFailure { memoizable: true })
                    };
                }
                Winner::Failure { tried } => {
                    if tried.at_least_as_permissive_as(&limit) {
                        self.stats.failure_hits += 1;
                        if self.tracer.enabled() {
                            self.tracer.event(TraceEvent::MemoHit {
                                group,
                                kind: MemoHitKind::Failure,
                            });
                        }
                        return Err(GoalFailure { memoizable: true });
                    }
                    // A more permissive budget than any tried before:
                    // actual (re-)optimization is required.
                }
            }
        }

        // "the current expression and physical property vector is marked
        // as 'in progress'" — cycle breaking for inverse rules.
        let key = (group, goal.clone());
        if self.in_progress.contains(&key) {
            return Err(GoalFailure { memoizable: false });
        }
        self.in_progress.insert(key.clone());
        self.stats.goals_optimized += 1;
        let traced = self.tracer.enabled();
        let goal_start = traced.then(Instant::now);
        if traced {
            self.tracer.event(TraceEvent::GoalBegin {
                group,
                required: format!("{:?}", goal.required),
            });
        }

        let mut moves = self.generate_moves(group, &goal);
        if self.opts.promise_ordering {
            // Stable sort by descending promise: "order the set of moves
            // by promise".
            moves.sort_by(|a, b| {
                b.promise()
                    .partial_cmp(&a.promise())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        if let Some(k) = self.opts.move_limit {
            // "for the most promising moves": heuristic move selection.
            moves.truncate(k);
        }
        let moves_pursued = moves.len() as u64;

        let mut best: Option<WinnerPlan<M>> = None;
        let mut bound = limit.clone();
        let mut nonmemoizable_failure = false;

        for mv in moves {
            match mv {
                Move::Alg {
                    rule_idx,
                    binding,
                    app,
                    ..
                } => {
                    if let Err(nm) =
                        self.pursue_alg(group, rule_idx, &binding, app, &mut best, &mut bound)
                    {
                        nonmemoizable_failure |= nm;
                    }
                }
                Move::Enf { enf_idx, app, .. } => {
                    if let Err(nm) = self.pursue_enf(group, enf_idx, app, &mut best, &mut bound) {
                        nonmemoizable_failure |= nm;
                    }
                }
            }
        }

        self.in_progress.remove(&key);

        let outcome = match best {
            Some(plan) => {
                let cost = plan.total_cost.clone();
                debug_assert!(
                    plan.delivered.satisfies(&goal.required),
                    "chosen plan's physical properties {:?} do not satisfy the goal {:?}",
                    plan.delivered,
                    goal.required
                );
                self.stats.winners_recorded += 1;
                self.memo
                    .set_winner(group, goal.clone(), Winner::Optimal(plan));
                if limit.admits(&cost) {
                    Ok(cost)
                } else {
                    Err(GoalFailure { memoizable: true })
                }
            }
            None => {
                if !nonmemoizable_failure && self.opts.failure_memo {
                    self.stats.failures_recorded += 1;
                    self.memo.set_winner(
                        group,
                        goal.clone(),
                        Winner::Failure {
                            tried: limit.clone(),
                        },
                    );
                }
                Err(GoalFailure {
                    memoizable: !nonmemoizable_failure,
                })
            }
        };

        if traced {
            self.tracer.event(TraceEvent::GoalEnd {
                group,
                outcome: match &outcome {
                    Ok(c) => format!("optimal cost {c:?}"),
                    Err(_) => "failure".to_string(),
                },
                elapsed: goal_start.map(|s| s.elapsed()).unwrap_or_default(),
                moves: moves_pursued,
            });
        }
        outcome
    }

    /// Generate the algorithm and enforcer moves for a goal.
    fn generate_moves(&mut self, group: GroupId, goal: &Goal<M>) -> Vec<Move<M>> {
        let model = self.model;
        let mut moves = Vec::new();
        let exclude_active = !goal.excluded.is_any();
        let mut excluded_count = 0u64;
        let traced = self.tracer.enabled();

        {
            let ctx = RuleCtx::new(&self.memo);
            // "there might be some algorithms that can deliver the logical
            // expression with the desired physical properties".
            for expr in self.memo.group_exprs(group) {
                for (ri, rule) in model.implementations().iter().enumerate() {
                    for binding in match_pattern(&self.memo, rule.pattern(), expr) {
                        if !rule.condition(&binding, &ctx) {
                            continue;
                        }
                        for app in rule.applies(&binding, &goal.required, &ctx) {
                            debug_assert!(
                                app.delivers.satisfies(&goal.required),
                                "applicability function of {} produced properties {:?} that \
                                 do not satisfy {:?}",
                                rule.name(),
                                app.delivers,
                                goal.required
                            );
                            // "algorithms that already applied before
                            // relaxing the physical properties must not be
                            // explored again" below an enforcer.
                            if exclude_active && app.delivers.satisfies(&goal.excluded) {
                                excluded_count += 1;
                                if traced {
                                    self.tracer.event(TraceEvent::MoveExcluded {
                                        group,
                                        reason: format!(
                                            "{} delivers {:?}, already enforced",
                                            rule.name(),
                                            app.delivers
                                        ),
                                    });
                                }
                                continue;
                            }
                            let promise = rule.promise(&app, &binding, &ctx);
                            moves.push(Move::Alg {
                                rule_idx: ri,
                                binding: binding.clone(),
                                app,
                                promise,
                            });
                        }
                    }
                }
            }
            // "an enforcer might be useful to permit additional algorithm
            // choices".
            for (ei, enf) in model.enforcers().iter().enumerate() {
                for app in enf.applies(&goal.required, group, &ctx) {
                    if exclude_active && app.delivers.satisfies(&goal.excluded) {
                        excluded_count += 1;
                        if traced {
                            self.tracer.event(TraceEvent::MoveExcluded {
                                group,
                                reason: format!(
                                    "enforcer {} delivers {:?}, already enforced",
                                    enf.name(),
                                    app.delivers
                                ),
                            });
                        }
                        continue;
                    }
                    let promise = enf.promise(&app, group, &ctx);
                    moves.push(Move::Enf {
                        enf_idx: ei,
                        app,
                        promise,
                    });
                }
            }
        }
        self.stats.moves_excluded += excluded_count;
        moves
    }

    /// Pursue an algorithm move: cost the algorithm, then optimize each
    /// input for its required properties while the accumulated cost stays
    /// under the bound. Returns `Err(nonmemoizable)` when abandoned.
    fn pursue_alg(
        &mut self,
        group: GroupId,
        rule_idx: usize,
        binding: &Binding<M>,
        app: AlgApplication<M>,
        best: &mut Option<WinnerPlan<M>>,
        bound: &mut Limit<M::Cost>,
    ) -> Result<(), bool> {
        self.stats.alg_moves += 1;
        let model = self.model;
        let rule = &model.implementations()[rule_idx];
        let local = {
            let ctx = RuleCtx::new(&self.memo);
            rule.cost(&app, binding, &ctx)
        };
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.event(TraceEvent::MoveCosted {
                group,
                description: format!("{} via {:?}", rule.name(), app.alg),
            });
        }

        let leaves = binding.leaf_groups();
        assert_eq!(
            leaves.len(),
            app.input_props.len(),
            "rule {} produced {} input property vectors for {} bound input groups",
            rule.name(),
            app.input_props.len(),
            leaves.len()
        );

        // "TotalCost := cost of the algorithm; for each input I while
        // TotalCost < Limit ..."
        let mut total = local.clone();
        let mut input_goals = Vec::with_capacity(leaves.len());
        for (g, props) in leaves.iter().zip(app.input_props.iter()) {
            if self.opts.pruning && !bound.admits(&total) {
                self.stats.moves_pruned += 1;
                if traced {
                    self.tracer.event(TraceEvent::MovePruned {
                        group,
                        reason: format!(
                            "{} via {:?}: accumulated cost {:?} over limit",
                            rule.name(),
                            app.alg,
                            total
                        ),
                    });
                }
                return Err(false);
            }
            let child_goal = Goal {
                required: props.clone(),
                excluded: M::PhysProps::any(),
            };
            let child_limit = if self.opts.pruning {
                bound.spend(&total)
            } else {
                Limit::unlimited()
            };
            match self.optimize_goal(*g, child_goal.clone(), child_limit) {
                Ok(c) => {
                    total = total.add(&c);
                    input_goals.push(InputGoal {
                        group: *g,
                        goal: child_goal,
                    });
                }
                Err(f) => return Err(!f.memoizable),
            }
        }

        self.consider_candidate(
            WinnerPlan {
                alg: app.alg,
                delivered: app.delivers,
                local_cost: local,
                total_cost: total,
                inputs: input_goals,
                expr: Some(binding.expr),
            },
            best,
            bound,
        );
        Ok(())
    }

    /// Pursue an enforcer move: cost the enforcer, subtract its cost from
    /// the bound (§6), and optimize the *same* group for the relaxed
    /// property vector with the enforced properties excluded.
    fn pursue_enf(
        &mut self,
        group: GroupId,
        enf_idx: usize,
        app: EnforcerApplication<M>,
        best: &mut Option<WinnerPlan<M>>,
        bound: &mut Limit<M::Cost>,
    ) -> Result<(), bool> {
        self.stats.enforcer_moves += 1;
        let model = self.model;
        let enf = &model.enforcers()[enf_idx];
        let local = {
            let ctx = RuleCtx::new(&self.memo);
            enf.cost(&app, group, &ctx)
        };
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.event(TraceEvent::MoveCosted {
                group,
                description: format!("enforcer {} as {:?}", enf.name(), app.alg),
            });
        }

        if self.opts.pruning && !bound.admits(&local) {
            self.stats.moves_pruned += 1;
            if traced {
                self.tracer.event(TraceEvent::MovePruned {
                    group,
                    reason: format!(
                        "enforcer {} as {:?}: local cost {:?} over limit",
                        enf.name(),
                        app.alg,
                        local
                    ),
                });
            }
            return Err(false);
        }
        let child_goal = Goal {
            required: app.relaxed.clone(),
            excluded: app.excluded.clone(),
        };
        let child_limit = if self.opts.pruning {
            bound.spend(&local)
        } else {
            Limit::unlimited()
        };
        match self.optimize_goal(group, child_goal.clone(), child_limit) {
            Ok(c) => {
                self.consider_candidate(
                    WinnerPlan {
                        alg: app.alg,
                        delivered: app.delivers,
                        local_cost: local.clone(),
                        total_cost: local.add(&c),
                        inputs: vec![InputGoal {
                            group,
                            goal: child_goal,
                        }],
                        expr: None,
                    },
                    best,
                    bound,
                );
                Ok(())
            }
            Err(f) => Err(!f.memoizable),
        }
    }

    /// Accept a completed candidate if it beats the best plan so far,
    /// tightening the branch-and-bound limit: "once a complete plan is
    /// known ... no other plan or partial plan with higher cost can be
    /// part of the optimal query evaluation plan".
    fn consider_candidate(
        &mut self,
        candidate: WinnerPlan<M>,
        best: &mut Option<WinnerPlan<M>>,
        bound: &mut Limit<M::Cost>,
    ) {
        let better = match best {
            None => !self.opts.pruning || bound.admits(&candidate.total_cost),
            Some(b) => candidate.total_cost.cheaper_than(&b.total_cost),
        };
        if better {
            if self.opts.pruning {
                *bound = bound.tighten(&candidate.total_cost);
            }
            *best = Some(candidate);
        }
    }

    /// Materialize the memoized optimal plan for a goal.
    fn extract_plan(&self, group: GroupId, goal: &Goal<M>) -> Option<Plan<M>> {
        let group = self.memo.repr(group);
        match self.memo.winner(group, goal)? {
            Winner::Failure { .. } => None,
            Winner::Optimal(p) => {
                // The paper's consistency check: "generated optimizers
                // verify that the physical properties of a chosen plan
                // really do satisfy the physical property vector given as
                // part of the optimization goal" (§2.2).
                assert!(
                    p.delivered.satisfies(&goal.required),
                    "plan properties {:?} violate goal {:?}",
                    p.delivered,
                    goal.required
                );
                let inputs = p
                    .inputs
                    .iter()
                    .map(|ig| {
                        self.extract_plan(ig.group, &ig.goal)
                            .expect("input goal of a winner must itself have a winner")
                    })
                    .collect();
                Some(Plan {
                    alg: p.alg.clone(),
                    delivered: p.delivered.clone(),
                    local_cost: p.local_cost.clone(),
                    cost: p.total_cost.clone(),
                    group,
                    inputs,
                })
            }
        }
    }
}
