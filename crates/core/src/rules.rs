//! Rule traits: transformations, implementations, enforcers (§2.2).
//!
//! "The algebraic rules of expression equivalence, e.g., commutativity or
//! associativity, are specified using transformation rules. The possible
//! mappings of operators to algorithms are specified using implementation
//! rules." Both kinds carry optional *condition code* "which will be
//! invoked after a pattern match has succeeded".

use crate::expr::SubstExpr;
use crate::ids::GroupId;
use crate::memo::Memo;
use crate::model::Model;
use crate::pattern::{Binding, Pattern};

/// Read-only context handed to rule condition, application, cost, and
/// promise code.
///
/// Exposes the logical properties of equivalence classes so that, e.g.,
/// "the logical properties ... can be inspected by a rule's condition code
/// to ensure that rules are only applied to expressions of the correct
/// type" (§2.2), and so cost functions can consult input cardinalities.
pub struct RuleCtx<'a, M: Model> {
    memo: &'a Memo<M>,
}

impl<'a, M: Model> RuleCtx<'a, M> {
    pub(crate) fn new(memo: &'a Memo<M>) -> Self {
        RuleCtx { memo }
    }

    /// Logical properties of an equivalence class.
    pub fn logical_props(&self, group: GroupId) -> &'a M::LogicalProps {
        self.memo.logical_props(group)
    }

    /// The underlying memo, for advanced condition code that "sometimes
    /// must inspect the internal data structures" (§6).
    pub fn memo(&self) -> &'a Memo<M> {
        self.memo
    }
}

/// An algebraic transformation rule within the logical algebra.
pub trait TransformationRule<M: Model>: Send + Sync {
    /// Rule name for traces and statistics.
    fn name(&self) -> &'static str;

    /// The pattern to match. Multi-level patterns (e.g. associativity)
    /// are supported; interior nodes quantify over all member expressions
    /// of the bound classes.
    fn pattern(&self) -> &Pattern<M>;

    /// Condition code, invoked after a pattern match has succeeded.
    fn condition(&self, _binding: &Binding<M>, _ctx: &RuleCtx<'_, M>) -> bool {
        true
    }

    /// Produce substitute expressions equivalent to the matched one. Each
    /// substitute is inserted into the matched expression's equivalence
    /// class; sub-trees that are not references to bound groups create (or
    /// rediscover) classes of their own, as in the paper's Figure 3 where
    /// associativity creates the new class `C`.
    fn apply(&self, binding: &Binding<M>, ctx: &RuleCtx<'_, M>) -> Vec<SubstExpr<M>>;

    /// Expected usefulness of pursuing this rule on this binding; moves
    /// are ordered by descending promise. The default makes all
    /// transformations equally promising.
    fn promise(&self, _binding: &Binding<M>, _ctx: &RuleCtx<'_, M>) -> f64 {
        1.0
    }
}

/// One way an algorithm can be applied to implement a bound logical
/// (sub-)expression: the output of an implementation rule's applicability
/// function.
pub struct AlgApplication<M: Model> {
    /// The chosen algorithm.
    pub alg: M::Alg,
    /// Physical property vectors the algorithm's inputs must satisfy, one
    /// per leaf group of the binding (in left-to-right order).
    pub input_props: Vec<M::PhysProps>,
    /// Physical properties the algorithm delivers when its inputs satisfy
    /// `input_props`. The engine verifies `delivers.satisfies(required)` —
    /// "generated optimizers verify that the physical properties of a
    /// chosen plan really do satisfy the physical property vector given as
    /// part of the optimization goal" (§2.2).
    pub delivers: M::PhysProps,
}

impl<M: Model> Clone for AlgApplication<M> {
    fn clone(&self) -> Self {
        AlgApplication {
            alg: self.alg.clone(),
            input_props: self.input_props.clone(),
            delivers: self.delivers.clone(),
        }
    }
}

impl<M: Model> std::fmt::Debug for AlgApplication<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgApplication")
            .field("alg", &self.alg)
            .field("input_props", &self.input_props)
            .field("delivers", &self.delivers)
            .finish()
    }
}

/// An implementation rule: the mapping of one or more logical operators to
/// an algorithm, with its applicability and cost functions.
pub trait ImplementationRule<M: Model>: Send + Sync {
    /// Rule name for traces and statistics.
    fn name(&self) -> &'static str;

    /// The logical pattern implemented. Multi-operator patterns map
    /// several logical operators onto a single physical operator ("a join
    /// followed by a projection ... should be implemented in a single
    /// procedure", §2.2).
    fn pattern(&self) -> &Pattern<M>;

    /// Condition code, invoked after a pattern match has succeeded.
    fn condition(&self, _binding: &Binding<M>, _ctx: &RuleCtx<'_, M>) -> bool {
        true
    }

    /// The applicability function: "determines whether or not the
    /// algorithm ... can deliver the logical expression with physical
    /// properties that satisfy the physical property vector", and if so,
    /// "the physical property vectors that the algorithm's inputs must
    /// satisfy".
    ///
    /// Returning more than one application expresses *alternative* input
    /// property combinations — e.g. a sort-based intersection may accept
    /// its inputs sorted `(A,B,C)`-consistently or `(B,A,C)`-consistently
    /// (§3), and the engine will optimize the subexpressions for each
    /// alternative.
    fn applies(
        &self,
        binding: &Binding<M>,
        required: &M::PhysProps,
        ctx: &RuleCtx<'_, M>,
    ) -> Vec<AlgApplication<M>>;

    /// The algorithm's cost function: the *local* cost of running this
    /// algorithm on inputs described by the bound groups' logical
    /// properties (input plan costs are accumulated by the engine).
    fn cost(&self, app: &AlgApplication<M>, binding: &Binding<M>, ctx: &RuleCtx<'_, M>) -> M::Cost;

    /// Expected usefulness; moves are ordered by descending promise.
    /// Pursuing promising algorithm moves first finds a good complete plan
    /// early, which tightens the branch-and-bound limit (§3).
    fn promise(
        &self,
        _app: &AlgApplication<M>,
        _binding: &Binding<M>,
        _ctx: &RuleCtx<'_, M>,
    ) -> f64 {
        1.0
    }
}

/// One way an enforcer can help deliver required physical properties.
pub struct EnforcerApplication<M: Model> {
    /// The enforcer as a physical operator.
    pub alg: M::Alg,
    /// The relaxed property vector required of the enforcer's input (the
    /// enforced component removed; "the original logical expression is
    /// optimized using FindBestPlan with a suitably modified (i.e.,
    /// relaxed) physical property vector", §3).
    pub relaxed: M::PhysProps,
    /// The *excluding physical property vector* passed down when the
    /// input is optimized: plans that could satisfy this vector directly
    /// "must not be explored again" below the enforcer (merge-join must
    /// not appear as input to a sort that enforces the same order).
    pub excluded: M::PhysProps,
    /// Properties the enforcer's output delivers.
    pub delivers: M::PhysProps,
}

impl<M: Model> Clone for EnforcerApplication<M> {
    fn clone(&self) -> Self {
        EnforcerApplication {
            alg: self.alg.clone(),
            relaxed: self.relaxed.clone(),
            excluded: self.excluded.clone(),
            delivers: self.delivers.clone(),
        }
    }
}

impl<M: Model> std::fmt::Debug for EnforcerApplication<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnforcerApplication")
            .field("alg", &self.alg)
            .field("relaxed", &self.relaxed)
            .field("excluded", &self.excluded)
            .field("delivers", &self.delivers)
            .finish()
    }
}

/// An enforcer: a physical operator that performs no logical data
/// manipulation but enforces physical properties (sort, decompress,
/// exchange, assembly...). "It is possible for an enforcer to ensure two
/// properties, or to enforce one but destroy another" — applications
/// describe the full delivered vector, so both cases are expressible.
pub trait Enforcer<M: Model>: Send + Sync {
    /// Enforcer name for traces and statistics.
    fn name(&self) -> &'static str;

    /// Applicability: if this enforcer can contribute to `required`,
    /// return the possible applications (usually zero or one).
    fn applies(
        &self,
        required: &M::PhysProps,
        group: GroupId,
        ctx: &RuleCtx<'_, M>,
    ) -> Vec<EnforcerApplication<M>>;

    /// The enforcer's cost function, based on the logical properties of
    /// the group it is applied to.
    fn cost(&self, app: &EnforcerApplication<M>, group: GroupId, ctx: &RuleCtx<'_, M>) -> M::Cost;

    /// Expected usefulness; moves are ordered by descending promise.
    fn promise(
        &self,
        _app: &EnforcerApplication<M>,
        _group: GroupId,
        _ctx: &RuleCtx<'_, M>,
    ) -> f64 {
        1.0
    }
}
