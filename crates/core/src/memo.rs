//! The memo: a hash table of expressions and equivalence classes (§3).
//!
//! > *"In order to prevent redundant optimization effort by detecting
//! > redundant (i.e., multiple equivalent) derivations of the same logical
//! > expressions and plans during optimization, expressions and plans are
//! > captured in a hash table of expressions and equivalence classes. An
//! > equivalence class represents two collections, one of equivalent
//! > logical and one of physical expressions (plans)."*
//!
//! This module fixes the EXODUS "MESH" pathologies the paper documents
//! (§4.1): logical and physical expressions are kept separately (a group's
//! logical members are shared by *all* plans, instead of duplicating nodes
//! per algorithm choice), physical properties key the winner table, and
//! identifiers are dense integers.
//!
//! Equivalence classes that are discovered to be equal (a transformation
//! produces an expression that already exists in a different class) are
//! *merged* through a union–find structure; expression keys are then
//! re-canonicalized, which can cascade into further merges.

use std::hash::{Hash, Hasher};
use std::mem::size_of;

use crate::cost::Limit;
use crate::expr::{ExprTree, SubstExpr};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::ids::{ExprId, GoalId, GroupId};
use crate::model::Model;

/// An optimization goal fragment: the property vectors a plan for some
/// group must satisfy ("each optimization goal (and subgoal) is a pair of
/// a logical expression and a physical property vector", §2.2, plus the
/// excluding vector used below enforcers, §3).
pub struct Goal<M: Model> {
    /// Required physical properties.
    pub required: M::PhysProps,
    /// Excluding physical property vector (almost always
    /// [`crate::PhysicalProps::any`], i.e. nothing excluded).
    pub excluded: M::PhysProps,
}

impl<M: Model> Clone for Goal<M> {
    fn clone(&self) -> Self {
        Goal {
            required: self.required.clone(),
            excluded: self.excluded.clone(),
        }
    }
}

impl<M: Model> PartialEq for Goal<M> {
    fn eq(&self, other: &Self) -> bool {
        self.required == other.required && self.excluded == other.excluded
    }
}

impl<M: Model> Eq for Goal<M> {}

impl<M: Model> std::hash::Hash for Goal<M> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.required.hash(state);
        self.excluded.hash(state);
    }
}

impl<M: Model> std::fmt::Debug for Goal<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Goal")
            .field("required", &self.required)
            .field("excluded", &self.excluded)
            .finish()
    }
}

/// Reference to the sub-goal an optimal plan's input was optimized for.
/// Plans are materialized from these references at extraction time, so the
/// memo stores each best sub-plan exactly once. Eight bytes: the property
/// vectors live once in the memo's goal table, referenced by [`GoalId`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct InputGoal {
    /// The input equivalence class.
    pub group: GroupId,
    /// The interned goal it was optimized for.
    pub goal: GoalId,
}

impl std::fmt::Debug for InputGoal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InputGoal({:?}, {:?})", self.group, self.goal)
    }
}

/// The best plan found for a goal.
pub struct WinnerPlan<M: Model> {
    /// Chosen algorithm or enforcer.
    pub alg: M::Alg,
    /// Physical properties the plan delivers (must satisfy the goal).
    pub delivered: M::PhysProps,
    /// Cost of this operator alone.
    pub local_cost: M::Cost,
    /// Cost including all inputs.
    pub total_cost: M::Cost,
    /// Input sub-goals, one per operator input.
    pub inputs: Vec<InputGoal>,
    /// The logical expression implemented, if the operator is an
    /// algorithm; `None` for enforcers, which implement the whole class.
    pub expr: Option<ExprId>,
}

impl<M: Model> Clone for WinnerPlan<M> {
    fn clone(&self) -> Self {
        WinnerPlan {
            alg: self.alg.clone(),
            delivered: self.delivered.clone(),
            local_cost: self.local_cost.clone(),
            total_cost: self.total_cost.clone(),
            inputs: self.inputs.clone(),
            expr: self.expr,
        }
    }
}

impl<M: Model> std::fmt::Debug for WinnerPlan<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WinnerPlan")
            .field("alg", &self.alg)
            .field("delivered", &self.delivered)
            .field("total_cost", &self.total_cost)
            .field("inputs", &self.inputs)
            .field("expr", &self.expr)
            .finish()
    }
}

/// A memoized optimization outcome for a goal: either the optimal plan or
/// a recorded failure. Failures are first-class — "newly derived
/// interesting facts are captured in the hash table. 'Interesting' ...
/// includes both plans optimal for given physical properties as well as
/// failures that can save future optimization effort" (§3).
pub enum Winner<M: Model> {
    /// The optimal plan and its cost.
    Optimal(WinnerPlan<M>),
    /// No plan exists within `tried`: any future request with the same or
    /// a lower cost limit can fail immediately.
    Failure {
        /// The most permissive limit under which optimization has failed.
        tried: Limit<M::Cost>,
    },
}

impl<M: Model> Clone for Winner<M> {
    fn clone(&self) -> Self {
        match self {
            Winner::Optimal(p) => Winner::Optimal(p.clone()),
            Winner::Failure { tried } => Winner::Failure {
                tried: tried.clone(),
            },
        }
    }
}

impl<M: Model> std::fmt::Debug for Winner<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Winner::Optimal(p) => write!(f, "Optimal({p:?})"),
            Winner::Failure { tried } => write!(f, "Failure(tried={tried:?})"),
        }
    }
}

pub(crate) struct ExprData<M: Model> {
    pub op: M::Op,
    /// Input groups; kept canonical (re-written on merge cascades).
    pub inputs: Vec<GroupId>,
    /// Owning group; kept canonical.
    pub group: GroupId,
    /// Set when a merge cascade discovered this expression duplicates an
    /// earlier one; dead expressions are skipped everywhere.
    pub dead: bool,
}

pub(crate) struct GroupData<M: Model> {
    /// Member logical expressions (live and dead; filter via `ExprData`).
    pub exprs: Vec<ExprId>,
    /// Logical properties, derived once from the first member expression:
    /// "the logical properties are determined based on the logical
    /// expression, before any optimization is performed" (§2.2).
    pub logical: M::LogicalProps,
    /// Best plans and failures per interned goal.
    pub winners: FxHashMap<GoalId, Winner<M>>,
    /// Memo version at the last structural change to this group.
    pub version: u64,
}

/// The memo structure. See the module documentation.
pub struct Memo<M: Model> {
    exprs: Vec<ExprData<M>>,
    groups: Vec<GroupData<M>>,
    /// Union–find parents over group indices.
    parent: Vec<u32>,
    /// Duplicate detection: hash of the canonical `(op, input groups)`
    /// pair → member expressions with that hash. Keying by precomputed
    /// hash instead of by owned `(op, inputs)` pairs means a probe never
    /// clones the operator or the input vector; equality is re-checked
    /// against the expression arena, so collisions are benign.
    index: FxHashMap<u64, Vec<ExprId>>,
    /// Monotone structural version counter.
    version: u64,
    /// Number of group merges performed (statistic).
    merges: u64,
    /// Number of expressions marked dead by merge cascades (statistic).
    dead_exprs: u64,
    /// Interned optimization goals, indexed by [`GoalId`]. Memo-global
    /// (not per-group), so group merges never remap goal ids.
    goals: Vec<Goal<M>>,
    /// Interner buckets: property-vector hash → candidate goal ids.
    /// Equality is re-checked on probe, so hash collisions are benign.
    goal_buckets: FxHashMap<u64, Vec<GoalId>>,
}

/// Hash a `(required, excluded)` pair without constructing a `Goal`.
/// Must agree with `Goal`'s `Hash` impl field order.
fn goal_hash<M: Model>(required: &M::PhysProps, excluded: &M::PhysProps) -> u64 {
    let mut h = FxHasher::default();
    required.hash(&mut h);
    excluded.hash(&mut h);
    h.finish()
}

/// Hash a canonical `(op, input groups)` pair for the duplicate-detection
/// index.
fn expr_hash<M: Model>(op: &M::Op, inputs: &[GroupId]) -> u64 {
    let mut h = FxHasher::default();
    op.hash(&mut h);
    inputs.hash(&mut h);
    h.finish()
}

impl<M: Model> Default for Memo<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Model> Memo<M> {
    /// Create an empty memo.
    pub fn new() -> Self {
        Memo {
            exprs: Vec::new(),
            groups: Vec::new(),
            parent: Vec::new(),
            index: FxHashMap::default(),
            version: 0,
            merges: 0,
            dead_exprs: 0,
            goals: Vec::new(),
            goal_buckets: FxHashMap::default(),
        }
    }

    /// Intern a `(required, excluded)` goal, returning its stable id.
    /// Property vectors are cloned only the first time a goal is seen;
    /// every later probe is a hash of references plus an `Eq` check.
    pub fn intern_goal(&mut self, required: &M::PhysProps, excluded: &M::PhysProps) -> GoalId {
        let h = goal_hash::<M>(required, excluded);
        if let Some(ids) = self.goal_buckets.get(&h) {
            for &id in ids {
                let g = &self.goals[id.index()];
                if g.required == *required && g.excluded == *excluded {
                    return id;
                }
            }
        }
        let id = GoalId::from_index(self.goals.len());
        self.goals.push(Goal {
            required: required.clone(),
            excluded: excluded.clone(),
        });
        self.goal_buckets.entry(h).or_default().push(id);
        id
    }

    /// Look up an already-interned goal without interning it (read-only
    /// probes such as [`crate::Optimizer::best_cost`]): `None` means the
    /// goal was never optimized, so it cannot have a winner either.
    pub fn find_goal(&self, required: &M::PhysProps, excluded: &M::PhysProps) -> Option<GoalId> {
        let h = goal_hash::<M>(required, excluded);
        let ids = self.goal_buckets.get(&h)?;
        ids.iter().copied().find(|id| {
            let g = &self.goals[id.index()];
            g.required == *required && g.excluded == *excluded
        })
    }

    /// The property vectors of an interned goal.
    pub fn goal(&self, id: GoalId) -> &Goal<M> {
        &self.goals[id.index()]
    }

    /// Number of distinct goals interned so far.
    pub fn num_goals(&self) -> usize {
        self.goals.len()
    }

    /// Resolve a group id to its union–find representative.
    pub fn repr(&self, g: GroupId) -> GroupId {
        let mut i = g.0;
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        GroupId(i)
    }

    /// Current structural version (bumped on every expression insertion
    /// or merge).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Version of the last structural change to `g`.
    pub fn group_version(&self, g: GroupId) -> u64 {
        self.groups[self.repr(g).index()].version
    }

    /// Total number of expression slots ever allocated (including dead).
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Total number of group slots ever allocated (including merged-away
    /// groups).
    pub fn num_allocated_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of live (non-merged-away) groups.
    pub fn num_groups(&self) -> usize {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] == i as u32)
            .count()
    }

    /// Number of group merges performed so far.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Number of expressions retired as duplicates by merge cascades.
    pub fn dead_expr_count(&self) -> u64 {
        self.dead_exprs
    }

    /// Is the expression alive (not retired by a merge cascade)?
    pub fn is_live(&self, e: ExprId) -> bool {
        !self.exprs[e.index()].dead
    }

    /// The operator and (canonical) input groups of an expression.
    pub fn expr(&self, e: ExprId) -> (&M::Op, &[GroupId]) {
        let d = &self.exprs[e.index()];
        (&d.op, &d.inputs)
    }

    /// The (canonical) group an expression belongs to.
    pub fn group_of(&self, e: ExprId) -> GroupId {
        self.repr(self.exprs[e.index()].group)
    }

    /// Live member expressions of a group, as a borrowing iterator (no
    /// allocation — this runs inside every pattern-match inner loop).
    pub fn group_exprs(&self, g: GroupId) -> impl Iterator<Item = ExprId> + '_ {
        self.groups[self.repr(g).index()]
            .exprs
            .iter()
            .copied()
            .filter(move |&e| !self.exprs[e.index()].dead)
    }

    /// Logical properties of a group.
    pub fn logical_props(&self, g: GroupId) -> &M::LogicalProps {
        &self.groups[self.repr(g).index()].logical
    }

    /// Look up the memoized outcome for an interned goal.
    pub fn winner(&self, g: GroupId, goal: GoalId) -> Option<&Winner<M>> {
        self.groups[self.repr(g).index()].winners.get(&goal)
    }

    /// Record (or replace) the memoized outcome for a goal.
    ///
    /// Invariant: an `Optimal` winner is never replaced by a strictly more
    /// expensive one (debug-asserted) — dynamic programming would be
    /// unsound otherwise.
    pub fn set_winner(&mut self, g: GroupId, goal: GoalId, w: Winner<M>) {
        let gi = self.repr(g).index();
        #[cfg(debug_assertions)]
        {
            use crate::cost::Cost;
            if let (Some(Winner::Optimal(old)), Winner::Optimal(new)) =
                (self.groups[gi].winners.get(&goal), &w)
            {
                debug_assert!(
                    new.total_cost.cheaper_or_equal(&old.total_cost),
                    "winner for {:?} regressed from {:?} to {:?}",
                    self.goals[goal.index()],
                    old.total_cost,
                    new.total_cost
                );
            }
        }
        self.groups[gi].winners.insert(goal, w);
    }

    /// Number of winner entries (plans + failures) across all groups.
    pub fn winner_count(&self) -> usize {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] == i as u32)
            .map(|i| self.groups[i].winners.len())
            .sum()
    }

    /// All live group ids (representatives).
    pub fn group_ids(&self) -> Vec<GroupId> {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] == i as u32)
            .map(|i| GroupId(i as u32))
            .collect()
    }

    /// Insert a complete expression tree, returning the root group.
    pub fn insert_tree(&mut self, model: &M, tree: &ExprTree<M>) -> GroupId {
        let inputs: Vec<GroupId> = tree
            .inputs
            .iter()
            .map(|t| self.insert_tree(model, t))
            .collect();
        let (g, _) = self.intern_expr(model, tree.op.clone(), inputs, None);
        g
    }

    /// Insert a substitute expression produced by a transformation rule.
    /// The root lands in (or is merged with) `target`. Returns `true` if
    /// the memo changed structurally.
    pub fn insert_subst(&mut self, model: &M, subst: &SubstExpr<M>, target: GroupId) -> bool {
        match subst {
            SubstExpr::Group(g) => {
                let target = self.repr(target);
                let g = self.repr(*g);
                if g == target {
                    false
                } else {
                    self.merge(target, g);
                    true
                }
            }
            SubstExpr::Node { op, inputs } => {
                let mut changed = false;
                let input_groups: Vec<GroupId> = inputs
                    .iter()
                    .map(|s| {
                        let (g, c) = self.insert_subst_sub(model, s);
                        changed |= c;
                        g
                    })
                    .collect();
                let (_, c) =
                    self.intern_expr(model, op.clone(), input_groups, Some(self.repr(target)));
                changed | c
            }
        }
    }

    /// Insert a substitute sub-expression with no target class ("often a
    /// new equivalence class is created during a transformation", §3 /
    /// Figure 3).
    fn insert_subst_sub(&mut self, model: &M, subst: &SubstExpr<M>) -> (GroupId, bool) {
        match subst {
            SubstExpr::Group(g) => (self.repr(*g), false),
            SubstExpr::Node { op, inputs } => {
                let mut changed = false;
                let input_groups: Vec<GroupId> = inputs
                    .iter()
                    .map(|s| {
                        let (g, c) = self.insert_subst_sub(model, s);
                        changed |= c;
                        g
                    })
                    .collect();
                let (g, c) = self.intern_expr(model, op.clone(), input_groups, None);
                (g, changed | c)
            }
        }
    }

    /// Core interning: find or create the expression `(op, inputs)`.
    ///
    /// * If it exists in `target`'s class (or no target was given):
    ///   nothing changes.
    /// * If it exists in a *different* class and a target was given, the
    ///   two classes have been proven equivalent and are merged.
    /// * Otherwise a new expression is created in `target` or, absent a
    ///   target, in a fresh class whose logical properties are derived
    ///   from this expression.
    ///
    /// Returns the (canonical) owning group and whether the memo changed.
    pub(crate) fn intern_expr(
        &mut self,
        model: &M,
        op: M::Op,
        inputs: Vec<GroupId>,
        target: Option<GroupId>,
    ) -> (GroupId, bool) {
        let inputs: Vec<GroupId> = inputs.iter().map(|&g| self.repr(g)).collect();
        let h = expr_hash::<M>(&op, &inputs);
        let existing = self.index.get(&h).and_then(|bucket| {
            bucket.iter().copied().find(|&e| {
                let d = &self.exprs[e.index()];
                d.op == op && d.inputs == inputs
            })
        });
        if let Some(existing) = existing {
            let eg = self.group_of(existing);
            return match target {
                Some(t) if self.repr(t) != eg => {
                    self.merge(self.repr(t), eg);
                    (self.repr(eg), true)
                }
                _ => (eg, false),
            };
        }

        // Derive logical properties from the input groups.
        let derived = {
            let input_props: Vec<&M::LogicalProps> =
                inputs.iter().map(|&g| self.logical_props(g)).collect();
            model.derive_logical_props(&op, &input_props)
        };

        let group = match target {
            Some(t) => {
                let t = self.repr(t);
                model.assert_logical_props_consistent(&self.groups[t.index()].logical, &derived);
                t
            }
            None => {
                let gid = GroupId(self.groups.len() as u32);
                self.groups.push(GroupData {
                    exprs: Vec::new(),
                    logical: derived,
                    winners: FxHashMap::default(),
                    version: 0,
                });
                self.parent.push(gid.0);
                gid
            }
        };

        let eid = ExprId(self.exprs.len() as u32);
        self.exprs.push(ExprData {
            op,
            inputs,
            group,
            dead: false,
        });
        self.groups[group.index()].exprs.push(eid);
        self.index.entry(h).or_default().push(eid);
        self.version += 1;
        self.groups[group.index()].version = self.version;
        (group, true)
    }

    /// Merge two equivalence classes proven equal, cascading through any
    /// further merges triggered by key re-canonicalization.
    pub(crate) fn merge(&mut self, a: GroupId, b: GroupId) {
        let mut pending = vec![(a, b)];
        while let Some((a, b)) = pending.pop() {
            let ra = self.repr(a);
            let rb = self.repr(b);
            if ra == rb {
                continue;
            }
            // Keep the lower index as representative for stability.
            let (keep, gone) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
            self.parent[gone.index()] = keep.0;
            self.merges += 1;
            self.version += 1;

            let gone_exprs = std::mem::take(&mut self.groups[gone.index()].exprs);
            self.groups[keep.index()].exprs.extend(gone_exprs);
            let gone_winners = std::mem::take(&mut self.groups[gone.index()].winners);
            for (goal, w) in gone_winners {
                self.merge_winner(keep, goal, w);
            }
            self.groups[keep.index()].version = self.version;

            pending.extend(self.rebuild_index());
        }
    }

    /// Merge a winner entry from an absorbed group, keeping the better
    /// fact for each goal. Goal ids are memo-global, so entries transfer
    /// without remapping.
    fn merge_winner(&mut self, g: GroupId, goal: GoalId, incoming: Winner<M>) {
        use crate::cost::Cost;
        let gi = g.index();
        let merged = match (self.groups[gi].winners.remove(&goal), incoming) {
            (None, w) => w,
            (Some(Winner::Optimal(a)), Winner::Optimal(b)) => {
                if b.total_cost.cheaper_than(&a.total_cost) {
                    Winner::Optimal(b)
                } else {
                    Winner::Optimal(a)
                }
            }
            (Some(Winner::Optimal(a)), Winner::Failure { .. }) => Winner::Optimal(a),
            (Some(Winner::Failure { .. }), Winner::Optimal(b)) => Winner::Optimal(b),
            (Some(Winner::Failure { tried: a }), Winner::Failure { tried: b }) => {
                if b.at_least_as_permissive_as(&a) {
                    Winner::Failure { tried: b }
                } else {
                    Winner::Failure { tried: a }
                }
            }
        };
        self.groups[gi].winners.insert(goal, merged);
    }

    /// Re-canonicalize every live expression after a merge; returns any
    /// newly discovered group equalities.
    fn rebuild_index(&mut self) -> Vec<(GroupId, GroupId)> {
        self.index.clear();
        let mut new_merges = Vec::new();
        for i in 0..self.exprs.len() {
            if self.exprs[i].dead {
                continue;
            }
            let inputs: Vec<GroupId> = self.exprs[i].inputs.iter().map(|&g| self.repr(g)).collect();
            let group = self.repr(self.exprs[i].group);
            self.exprs[i].inputs = inputs;
            self.exprs[i].group = group;
            let h = expr_hash::<M>(&self.exprs[i].op, &self.exprs[i].inputs);
            let prev = self.index.get(&h).and_then(|bucket| {
                bucket.iter().copied().find(|&e| {
                    let d = &self.exprs[e.index()];
                    d.op == self.exprs[i].op && d.inputs == self.exprs[i].inputs
                })
            });
            match prev {
                None => {
                    self.index.entry(h).or_default().push(ExprId(i as u32));
                }
                Some(prev) => {
                    let pg = self.repr(self.exprs[prev.index()].group);
                    if pg != group {
                        // Two identical expressions in different classes:
                        // the classes are equal.
                        new_merges.push((pg, group));
                    } else {
                        // True duplicate within one class: retire it.
                        self.exprs[i].dead = true;
                        self.dead_exprs += 1;
                    }
                }
            }
        }
        new_merges
    }

    /// Rough estimate of the memo's memory footprint in bytes, for the
    /// paper's "< 1 MB of work space" comparison (§4.2). Counts arena
    /// entries and hash-table payloads, not allocator overhead.
    pub fn memory_estimate(&self) -> usize {
        let expr_bytes: usize = self
            .exprs
            .iter()
            .map(|e| size_of::<ExprData<M>>() + e.inputs.len() * size_of::<GroupId>())
            .sum();
        let group_bytes: usize = self
            .groups
            .iter()
            .map(|g| {
                size_of::<GroupData<M>>()
                    + g.exprs.len() * size_of::<ExprId>()
                    + g.winners.len() * (size_of::<GoalId>() + size_of::<Winner<M>>())
                    + g.winners
                        .values()
                        .map(|w| match w {
                            Winner::Optimal(p) => p.inputs.len() * size_of::<InputGoal>(),
                            Winner::Failure { .. } => 0,
                        })
                        .sum::<usize>()
            })
            .sum();
        let index_entries: usize = self.index.values().map(Vec::len).sum();
        let index_bytes = index_entries * (size_of::<u64>() + size_of::<ExprId>());
        // Each interned goal stores its property vectors once, plus its
        // bucket entry (hash key amortized over the bucket's ids).
        let goal_bytes =
            self.goals.len() * (size_of::<Goal<M>>() + size_of::<GoalId>() + size_of::<u64>());
        expr_bytes + group_bytes + index_bytes + goal_bytes + self.parent.len() * size_of::<u32>()
    }
}
