//! The memo: a hash table of expressions and equivalence classes (§3).
//!
//! > *"In order to prevent redundant optimization effort by detecting
//! > redundant (i.e., multiple equivalent) derivations of the same logical
//! > expressions and plans during optimization, expressions and plans are
//! > captured in a hash table of expressions and equivalence classes. An
//! > equivalence class represents two collections, one of equivalent
//! > logical and one of physical expressions (plans)."*
//!
//! This module fixes the EXODUS "MESH" pathologies the paper documents
//! (§4.1): logical and physical expressions are kept separately (a group's
//! logical members are shared by *all* plans, instead of duplicating nodes
//! per algorithm choice), physical properties key the winner table, and
//! identifiers are dense integers.
//!
//! Equivalence classes that are discovered to be equal (a transformation
//! produces an expression that already exists in a different class) are
//! *merged* through a union–find structure; expression keys are then
//! re-canonicalized, which can cascade into further merges.

use std::collections::HashMap;
use std::mem::size_of;

use crate::cost::Limit;
use crate::expr::{ExprTree, SubstExpr};
use crate::ids::{ExprId, GroupId};
use crate::model::Model;

/// An optimization goal fragment: the property vectors a plan for some
/// group must satisfy ("each optimization goal (and subgoal) is a pair of
/// a logical expression and a physical property vector", §2.2, plus the
/// excluding vector used below enforcers, §3).
pub struct Goal<M: Model> {
    /// Required physical properties.
    pub required: M::PhysProps,
    /// Excluding physical property vector (almost always
    /// [`crate::PhysicalProps::any`], i.e. nothing excluded).
    pub excluded: M::PhysProps,
}

impl<M: Model> Clone for Goal<M> {
    fn clone(&self) -> Self {
        Goal {
            required: self.required.clone(),
            excluded: self.excluded.clone(),
        }
    }
}

impl<M: Model> PartialEq for Goal<M> {
    fn eq(&self, other: &Self) -> bool {
        self.required == other.required && self.excluded == other.excluded
    }
}

impl<M: Model> Eq for Goal<M> {}

impl<M: Model> std::hash::Hash for Goal<M> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.required.hash(state);
        self.excluded.hash(state);
    }
}

impl<M: Model> std::fmt::Debug for Goal<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Goal")
            .field("required", &self.required)
            .field("excluded", &self.excluded)
            .finish()
    }
}

/// Reference to the sub-goal an optimal plan's input was optimized for.
/// Plans are materialized from these references at extraction time, so the
/// memo stores each best sub-plan exactly once.
pub struct InputGoal<M: Model> {
    /// The input equivalence class.
    pub group: GroupId,
    /// The goal it was optimized for.
    pub goal: Goal<M>,
}

impl<M: Model> Clone for InputGoal<M> {
    fn clone(&self) -> Self {
        InputGoal {
            group: self.group,
            goal: self.goal.clone(),
        }
    }
}

impl<M: Model> std::fmt::Debug for InputGoal<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InputGoal({:?}, {:?})", self.group, self.goal)
    }
}

/// The best plan found for a goal.
pub struct WinnerPlan<M: Model> {
    /// Chosen algorithm or enforcer.
    pub alg: M::Alg,
    /// Physical properties the plan delivers (must satisfy the goal).
    pub delivered: M::PhysProps,
    /// Cost of this operator alone.
    pub local_cost: M::Cost,
    /// Cost including all inputs.
    pub total_cost: M::Cost,
    /// Input sub-goals, one per operator input.
    pub inputs: Vec<InputGoal<M>>,
    /// The logical expression implemented, if the operator is an
    /// algorithm; `None` for enforcers, which implement the whole class.
    pub expr: Option<ExprId>,
}

impl<M: Model> Clone for WinnerPlan<M> {
    fn clone(&self) -> Self {
        WinnerPlan {
            alg: self.alg.clone(),
            delivered: self.delivered.clone(),
            local_cost: self.local_cost.clone(),
            total_cost: self.total_cost.clone(),
            inputs: self.inputs.clone(),
            expr: self.expr,
        }
    }
}

impl<M: Model> std::fmt::Debug for WinnerPlan<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WinnerPlan")
            .field("alg", &self.alg)
            .field("delivered", &self.delivered)
            .field("total_cost", &self.total_cost)
            .field("inputs", &self.inputs)
            .field("expr", &self.expr)
            .finish()
    }
}

/// A memoized optimization outcome for a goal: either the optimal plan or
/// a recorded failure. Failures are first-class — "newly derived
/// interesting facts are captured in the hash table. 'Interesting' ...
/// includes both plans optimal for given physical properties as well as
/// failures that can save future optimization effort" (§3).
pub enum Winner<M: Model> {
    /// The optimal plan and its cost.
    Optimal(WinnerPlan<M>),
    /// No plan exists within `tried`: any future request with the same or
    /// a lower cost limit can fail immediately.
    Failure {
        /// The most permissive limit under which optimization has failed.
        tried: Limit<M::Cost>,
    },
}

impl<M: Model> Clone for Winner<M> {
    fn clone(&self) -> Self {
        match self {
            Winner::Optimal(p) => Winner::Optimal(p.clone()),
            Winner::Failure { tried } => Winner::Failure {
                tried: tried.clone(),
            },
        }
    }
}

impl<M: Model> std::fmt::Debug for Winner<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Winner::Optimal(p) => write!(f, "Optimal({p:?})"),
            Winner::Failure { tried } => write!(f, "Failure(tried={tried:?})"),
        }
    }
}

pub(crate) struct ExprData<M: Model> {
    pub op: M::Op,
    /// Input groups; kept canonical (re-written on merge cascades).
    pub inputs: Vec<GroupId>,
    /// Owning group; kept canonical.
    pub group: GroupId,
    /// Set when a merge cascade discovered this expression duplicates an
    /// earlier one; dead expressions are skipped everywhere.
    pub dead: bool,
}

pub(crate) struct GroupData<M: Model> {
    /// Member logical expressions (live and dead; filter via `ExprData`).
    pub exprs: Vec<ExprId>,
    /// Logical properties, derived once from the first member expression:
    /// "the logical properties are determined based on the logical
    /// expression, before any optimization is performed" (§2.2).
    pub logical: M::LogicalProps,
    /// Best plans and failures per goal.
    pub winners: HashMap<Goal<M>, Winner<M>>,
    /// Memo version at the last structural change to this group.
    pub version: u64,
}

/// The memo structure. See the module documentation.
pub struct Memo<M: Model> {
    exprs: Vec<ExprData<M>>,
    groups: Vec<GroupData<M>>,
    /// Union–find parents over group indices.
    parent: Vec<u32>,
    /// Duplicate detection: canonical `(op, input groups)` → expression.
    index: HashMap<(M::Op, Vec<GroupId>), ExprId>,
    /// Monotone structural version counter.
    version: u64,
    /// Number of group merges performed (statistic).
    merges: u64,
    /// Number of expressions marked dead by merge cascades (statistic).
    dead_exprs: u64,
}

impl<M: Model> Default for Memo<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Model> Memo<M> {
    /// Create an empty memo.
    pub fn new() -> Self {
        Memo {
            exprs: Vec::new(),
            groups: Vec::new(),
            parent: Vec::new(),
            index: HashMap::new(),
            version: 0,
            merges: 0,
            dead_exprs: 0,
        }
    }

    /// Resolve a group id to its union–find representative.
    pub fn repr(&self, g: GroupId) -> GroupId {
        let mut i = g.0;
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        GroupId(i)
    }

    /// Current structural version (bumped on every expression insertion
    /// or merge).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Version of the last structural change to `g`.
    pub fn group_version(&self, g: GroupId) -> u64 {
        self.groups[self.repr(g).index()].version
    }

    /// Total number of expression slots ever allocated (including dead).
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Total number of group slots ever allocated (including merged-away
    /// groups).
    pub fn num_allocated_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of live (non-merged-away) groups.
    pub fn num_groups(&self) -> usize {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] == i as u32)
            .count()
    }

    /// Number of group merges performed so far.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Number of expressions retired as duplicates by merge cascades.
    pub fn dead_expr_count(&self) -> u64 {
        self.dead_exprs
    }

    /// Is the expression alive (not retired by a merge cascade)?
    pub fn is_live(&self, e: ExprId) -> bool {
        !self.exprs[e.index()].dead
    }

    /// The operator and (canonical) input groups of an expression.
    pub fn expr(&self, e: ExprId) -> (&M::Op, &[GroupId]) {
        let d = &self.exprs[e.index()];
        (&d.op, &d.inputs)
    }

    /// The (canonical) group an expression belongs to.
    pub fn group_of(&self, e: ExprId) -> GroupId {
        self.repr(self.exprs[e.index()].group)
    }

    /// Live member expressions of a group.
    pub fn group_exprs(&self, g: GroupId) -> Vec<ExprId> {
        self.groups[self.repr(g).index()]
            .exprs
            .iter()
            .copied()
            .filter(|&e| !self.exprs[e.index()].dead)
            .collect()
    }

    /// Logical properties of a group.
    pub fn logical_props(&self, g: GroupId) -> &M::LogicalProps {
        &self.groups[self.repr(g).index()].logical
    }

    /// Look up the memoized outcome for a goal.
    pub fn winner(&self, g: GroupId, goal: &Goal<M>) -> Option<&Winner<M>> {
        self.groups[self.repr(g).index()].winners.get(goal)
    }

    /// Record (or replace) the memoized outcome for a goal.
    ///
    /// Invariant: an `Optimal` winner is never replaced by a strictly more
    /// expensive one (debug-asserted) — dynamic programming would be
    /// unsound otherwise.
    pub fn set_winner(&mut self, g: GroupId, goal: Goal<M>, w: Winner<M>) {
        let gi = self.repr(g).index();
        #[cfg(debug_assertions)]
        {
            use crate::cost::Cost;
            if let (Some(Winner::Optimal(old)), Winner::Optimal(new)) =
                (self.groups[gi].winners.get(&goal), &w)
            {
                debug_assert!(
                    new.total_cost.cheaper_or_equal(&old.total_cost),
                    "winner for {goal:?} regressed from {:?} to {:?}",
                    old.total_cost,
                    new.total_cost
                );
            }
        }
        self.groups[gi].winners.insert(goal, w);
    }

    /// Number of winner entries (plans + failures) across all groups.
    pub fn winner_count(&self) -> usize {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] == i as u32)
            .map(|i| self.groups[i].winners.len())
            .sum()
    }

    /// All live group ids (representatives).
    pub fn group_ids(&self) -> Vec<GroupId> {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] == i as u32)
            .map(|i| GroupId(i as u32))
            .collect()
    }

    /// Insert a complete expression tree, returning the root group.
    pub fn insert_tree(&mut self, model: &M, tree: &ExprTree<M>) -> GroupId {
        let inputs: Vec<GroupId> = tree
            .inputs
            .iter()
            .map(|t| self.insert_tree(model, t))
            .collect();
        let (g, _) = self.intern_expr(model, tree.op.clone(), inputs, None);
        g
    }

    /// Insert a substitute expression produced by a transformation rule.
    /// The root lands in (or is merged with) `target`. Returns `true` if
    /// the memo changed structurally.
    pub fn insert_subst(&mut self, model: &M, subst: &SubstExpr<M>, target: GroupId) -> bool {
        match subst {
            SubstExpr::Group(g) => {
                let target = self.repr(target);
                let g = self.repr(*g);
                if g == target {
                    false
                } else {
                    self.merge(target, g);
                    true
                }
            }
            SubstExpr::Node { op, inputs } => {
                let mut changed = false;
                let input_groups: Vec<GroupId> = inputs
                    .iter()
                    .map(|s| {
                        let (g, c) = self.insert_subst_sub(model, s);
                        changed |= c;
                        g
                    })
                    .collect();
                let (_, c) =
                    self.intern_expr(model, op.clone(), input_groups, Some(self.repr(target)));
                changed | c
            }
        }
    }

    /// Insert a substitute sub-expression with no target class ("often a
    /// new equivalence class is created during a transformation", §3 /
    /// Figure 3).
    fn insert_subst_sub(&mut self, model: &M, subst: &SubstExpr<M>) -> (GroupId, bool) {
        match subst {
            SubstExpr::Group(g) => (self.repr(*g), false),
            SubstExpr::Node { op, inputs } => {
                let mut changed = false;
                let input_groups: Vec<GroupId> = inputs
                    .iter()
                    .map(|s| {
                        let (g, c) = self.insert_subst_sub(model, s);
                        changed |= c;
                        g
                    })
                    .collect();
                let (g, c) = self.intern_expr(model, op.clone(), input_groups, None);
                (g, changed | c)
            }
        }
    }

    /// Core interning: find or create the expression `(op, inputs)`.
    ///
    /// * If it exists in `target`'s class (or no target was given):
    ///   nothing changes.
    /// * If it exists in a *different* class and a target was given, the
    ///   two classes have been proven equivalent and are merged.
    /// * Otherwise a new expression is created in `target` or, absent a
    ///   target, in a fresh class whose logical properties are derived
    ///   from this expression.
    ///
    /// Returns the (canonical) owning group and whether the memo changed.
    pub(crate) fn intern_expr(
        &mut self,
        model: &M,
        op: M::Op,
        inputs: Vec<GroupId>,
        target: Option<GroupId>,
    ) -> (GroupId, bool) {
        let inputs: Vec<GroupId> = inputs.iter().map(|&g| self.repr(g)).collect();
        let key = (op.clone(), inputs.clone());
        if let Some(&existing) = self.index.get(&key) {
            let eg = self.group_of(existing);
            return match target {
                Some(t) if self.repr(t) != eg => {
                    self.merge(self.repr(t), eg);
                    (self.repr(eg), true)
                }
                _ => (eg, false),
            };
        }

        // Derive logical properties from the input groups.
        let derived = {
            let input_props: Vec<&M::LogicalProps> =
                inputs.iter().map(|&g| self.logical_props(g)).collect();
            model.derive_logical_props(&op, &input_props)
        };

        let group = match target {
            Some(t) => {
                let t = self.repr(t);
                model.assert_logical_props_consistent(&self.groups[t.index()].logical, &derived);
                t
            }
            None => {
                let gid = GroupId(self.groups.len() as u32);
                self.groups.push(GroupData {
                    exprs: Vec::new(),
                    logical: derived,
                    winners: HashMap::new(),
                    version: 0,
                });
                self.parent.push(gid.0);
                gid
            }
        };

        let eid = ExprId(self.exprs.len() as u32);
        self.exprs.push(ExprData {
            op: op.clone(),
            inputs: inputs.clone(),
            group,
            dead: false,
        });
        self.groups[group.index()].exprs.push(eid);
        self.index.insert(key, eid);
        self.version += 1;
        self.groups[group.index()].version = self.version;
        (group, true)
    }

    /// Merge two equivalence classes proven equal, cascading through any
    /// further merges triggered by key re-canonicalization.
    pub(crate) fn merge(&mut self, a: GroupId, b: GroupId) {
        let mut pending = vec![(a, b)];
        while let Some((a, b)) = pending.pop() {
            let ra = self.repr(a);
            let rb = self.repr(b);
            if ra == rb {
                continue;
            }
            // Keep the lower index as representative for stability.
            let (keep, gone) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
            self.parent[gone.index()] = keep.0;
            self.merges += 1;
            self.version += 1;

            let gone_exprs = std::mem::take(&mut self.groups[gone.index()].exprs);
            self.groups[keep.index()].exprs.extend(gone_exprs);
            let gone_winners = std::mem::take(&mut self.groups[gone.index()].winners);
            for (goal, w) in gone_winners {
                self.merge_winner(keep, goal, w);
            }
            self.groups[keep.index()].version = self.version;

            pending.extend(self.rebuild_index());
        }
    }

    /// Merge a winner entry from an absorbed group, keeping the better
    /// fact for each goal.
    fn merge_winner(&mut self, g: GroupId, goal: Goal<M>, incoming: Winner<M>) {
        use crate::cost::Cost;
        let gi = g.index();
        let merged = match (self.groups[gi].winners.remove(&goal), incoming) {
            (None, w) => w,
            (Some(Winner::Optimal(a)), Winner::Optimal(b)) => {
                if b.total_cost.cheaper_than(&a.total_cost) {
                    Winner::Optimal(b)
                } else {
                    Winner::Optimal(a)
                }
            }
            (Some(Winner::Optimal(a)), Winner::Failure { .. }) => Winner::Optimal(a),
            (Some(Winner::Failure { .. }), Winner::Optimal(b)) => Winner::Optimal(b),
            (Some(Winner::Failure { tried: a }), Winner::Failure { tried: b }) => {
                if b.at_least_as_permissive_as(&a) {
                    Winner::Failure { tried: b }
                } else {
                    Winner::Failure { tried: a }
                }
            }
        };
        self.groups[gi].winners.insert(goal, merged);
    }

    /// Re-canonicalize every live expression after a merge; returns any
    /// newly discovered group equalities.
    fn rebuild_index(&mut self) -> Vec<(GroupId, GroupId)> {
        self.index.clear();
        let mut new_merges = Vec::new();
        for i in 0..self.exprs.len() {
            if self.exprs[i].dead {
                continue;
            }
            let inputs: Vec<GroupId> = self.exprs[i].inputs.iter().map(|&g| self.repr(g)).collect();
            let group = self.repr(self.exprs[i].group);
            self.exprs[i].inputs = inputs.clone();
            self.exprs[i].group = group;
            let key = (self.exprs[i].op.clone(), inputs);
            match self.index.get(&key) {
                None => {
                    self.index.insert(key, ExprId(i as u32));
                }
                Some(&prev) => {
                    let pg = self.repr(self.exprs[prev.index()].group);
                    if pg != group {
                        // Two identical expressions in different classes:
                        // the classes are equal.
                        new_merges.push((pg, group));
                    } else {
                        // True duplicate within one class: retire it.
                        self.exprs[i].dead = true;
                        self.dead_exprs += 1;
                    }
                }
            }
        }
        new_merges
    }

    /// Rough estimate of the memo's memory footprint in bytes, for the
    /// paper's "< 1 MB of work space" comparison (§4.2). Counts arena
    /// entries and hash-table payloads, not allocator overhead.
    pub fn memory_estimate(&self) -> usize {
        let expr_bytes: usize = self
            .exprs
            .iter()
            .map(|e| size_of::<ExprData<M>>() + e.inputs.len() * size_of::<GroupId>())
            .sum();
        let group_bytes: usize = self
            .groups
            .iter()
            .map(|g| {
                size_of::<GroupData<M>>()
                    + g.exprs.len() * size_of::<ExprId>()
                    + g.winners.len() * (size_of::<Goal<M>>() + size_of::<Winner<M>>())
                    + g.winners
                        .values()
                        .map(|w| match w {
                            Winner::Optimal(p) => p.inputs.len() * size_of::<InputGoal<M>>(),
                            Winner::Failure { .. } => 0,
                        })
                        .sum::<usize>()
            })
            .sum();
        let index_bytes = self.index.len()
            * (size_of::<(M::Op, Vec<GroupId>)>() + size_of::<ExprId>() + 2 * size_of::<GroupId>());
        expr_bytes + group_bytes + index_bytes + self.parent.len() * size_of::<u32>()
    }
}
