//! The abstract data type "cost" (§2.2, §4.1).
//!
//! > *"Cost is an abstract data type for the optimizer generator;
//! > therefore, the optimizer implementor can choose cost to be a number
//! > (e.g., estimated elapsed time), a record (e.g., estimated CPU time
//! > and I/O count), or any other type. Cost arithmetic and comparisons
//! > are performed by invoking functions associated with the abstract
//! > data type 'cost'."*
//!
//! The search engine only ever manipulates costs through the [`Cost`]
//! trait: addition (accumulating input costs against a limit),
//! subtraction (deriving the remaining budget for branch-and-bound, and
//! subtracting an enforcer's cost from the bound, §6), and comparison.
//! `f64` implements `Cost` for simple elapsed-time models; richer models
//! (CPU + I/O records, memory-dependent functions) implement it in the
//! model-specification crates.

use std::fmt::Debug;

/// Abstract cost supplied by the optimizer implementor.
///
/// Implementations must form a totally ordered monoid under [`Cost::add`]
/// with identity [`Cost::zero`]: `add` must be commutative and monotone
/// (adding a cost never makes the total cheaper). The search engine relies
/// on monotonicity for the correctness of branch-and-bound pruning.
pub trait Cost: Clone + Debug {
    /// The identity cost (a free operation).
    fn zero() -> Self;

    /// Accumulate another cost into this one.
    fn add(&self, other: &Self) -> Self;

    /// Budget remaining after spending `other`: `self - other`, saturating
    /// at [`Cost::zero`]. Used to pass tightened limits into input
    /// optimizations and to subtract enforcer costs from the bound.
    fn sub_saturating(&self, other: &Self) -> Self;

    /// Strict comparison: is `self` strictly cheaper than `other`?
    fn cheaper_than(&self, other: &Self) -> bool;

    /// Non-strict comparison, derived from [`Cost::cheaper_than`].
    fn cheaper_or_equal(&self, other: &Self) -> bool {
        !other.cheaper_than(self)
    }
}

impl Cost for f64 {
    fn zero() -> Self {
        0.0
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn sub_saturating(&self, other: &Self) -> Self {
        // `inf - inf` must stay an unlimited budget, not NaN.
        if self.is_infinite() && other.is_infinite() {
            f64::INFINITY
        } else {
            (self - other).max(0.0)
        }
    }

    fn cheaper_than(&self, other: &Self) -> bool {
        self < other
    }
}

/// A cost limit for branch-and-bound pruning.
///
/// `None` is the unlimited budget (the paper's "typically infinity for a
/// user query"); `Some(c)` means only plans with cost `<= c` are
/// acceptable. Modelling the unlimited budget explicitly rather than with
/// a sentinel keeps the `Cost` ADT free of an `infinite()` requirement
/// that some cost types (records, closures over memory size) cannot
/// represent faithfully.
#[derive(Clone, Debug, PartialEq)]
pub struct Limit<C>(pub Option<C>);

impl<C: Cost> Limit<C> {
    /// The unlimited budget.
    pub fn unlimited() -> Self {
        Limit(None)
    }

    /// A finite budget.
    pub fn at_most(c: C) -> Self {
        Limit(Some(c))
    }

    /// Is there no bound at all?
    pub fn is_unlimited(&self) -> bool {
        self.0.is_none()
    }

    /// Does a plan of cost `c` fit within this limit?
    pub fn admits(&self, c: &C) -> bool {
        match &self.0 {
            None => true,
            Some(l) => c.cheaper_or_equal(l),
        }
    }

    /// Budget remaining after spending `c` (saturating at zero).
    pub fn spend(&self, c: &C) -> Self {
        match &self.0 {
            None => Limit(None),
            Some(l) => Limit(Some(l.sub_saturating(c))),
        }
    }

    /// Tighten this limit so it admits nothing more expensive than `c`.
    /// Used when a complete plan of cost `c` is already known: "no other
    /// plan or partial plan with higher cost can be part of the optimal
    /// query evaluation plan" (§3).
    pub fn tighten(&self, c: &C) -> Self {
        match &self.0 {
            None => Limit(Some(c.clone())),
            Some(l) => {
                if c.cheaper_than(l) {
                    Limit(Some(c.clone()))
                } else {
                    self.clone()
                }
            }
        }
    }

    /// Is this limit at least as permissive as `other`? Used by the
    /// failure memo: a recorded failure at limit `L` proves failure for
    /// every request whose limit is *not more permissive* than `L`.
    pub fn at_least_as_permissive_as(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => b.cheaper_or_equal(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_cost_monoid() {
        let a = 2.0f64;
        let b = 3.0f64;
        assert_eq!(a.add(&b), 5.0);
        assert_eq!(f64::zero().add(&a), a);
        assert!(a.cheaper_than(&b));
        assert!(a.cheaper_or_equal(&a));
        assert!(!b.cheaper_or_equal(&a));
    }

    #[test]
    fn f64_sub_saturates() {
        assert_eq!(2.0f64.sub_saturating(&5.0), 0.0);
        assert_eq!(5.0f64.sub_saturating(&2.0), 3.0);
        let inf = f64::INFINITY;
        assert_eq!(inf.sub_saturating(&inf), inf);
        assert_eq!(inf.sub_saturating(&3.0), inf);
    }

    #[test]
    fn limit_admits_and_spends() {
        let l = Limit::at_most(10.0f64);
        assert!(l.admits(&10.0));
        assert!(l.admits(&0.0));
        assert!(!l.admits(&10.1));
        assert!(Limit::<f64>::unlimited().admits(&1e300));

        let rest = l.spend(&4.0);
        assert_eq!(rest, Limit::at_most(6.0));
        assert_eq!(Limit::<f64>::unlimited().spend(&4.0), Limit::unlimited());
    }

    #[test]
    fn limit_tighten_takes_min() {
        let l = Limit::at_most(10.0f64);
        assert_eq!(l.tighten(&3.0), Limit::at_most(3.0));
        assert_eq!(l.tighten(&30.0), Limit::at_most(10.0));
        assert_eq!(Limit::<f64>::unlimited().tighten(&3.0), Limit::at_most(3.0));
    }

    #[test]
    fn limit_permissiveness_order() {
        let small = Limit::at_most(1.0f64);
        let big = Limit::at_most(9.0f64);
        let unlim = Limit::<f64>::unlimited();
        assert!(big.at_least_as_permissive_as(&small));
        assert!(!small.at_least_as_permissive_as(&big));
        assert!(unlim.at_least_as_permissive_as(&big));
        assert!(!big.at_least_as_permissive_as(&unlim));
        assert!(big.at_least_as_permissive_as(&big));
    }
}
