//! # volcano-core — the Volcano optimizer generator search engine
//!
//! A from-scratch Rust implementation of the search engine described in
//! Goetz Graefe and William J. McKenna, *The Volcano Optimizer Generator:
//! Extensibility and Efficient Search*, ICDE 1993.
//!
//! The crate is completely **data-model independent**: everything the paper
//! lists as input to the optimizer generator is supplied by the *optimizer
//! implementor* through the [`Model`] trait and the rule traits:
//!
//! 1. a set of logical operators ([`Model::Op`]),
//! 2. algebraic transformation rules, possibly with condition code
//!    ([`TransformationRule`]),
//! 3. a set of algorithms and enforcers ([`Model::Alg`]),
//! 4. implementation rules, possibly with condition code
//!    ([`ImplementationRule`]),
//! 5. an ADT "cost" with arithmetic and comparison ([`Cost`]),
//! 6. an ADT "logical properties" ([`Model::LogicalProps`]),
//! 7. an ADT "physical property vector" with equality and *cover*
//!    comparisons ([`PhysicalProps`]),
//! 8. an applicability function for each algorithm and enforcer
//!    ([`ImplementationRule::applies`], [`Enforcer::applies`]),
//! 9. a cost function for each algorithm and enforcer
//!    ([`ImplementationRule::cost`], [`Enforcer::cost`]),
//! 10. a property function for each operator, algorithm, and enforcer
//!     ([`Model::derive_logical_props`], the `delivers` fields of
//!     [`AlgApplication`] / [`EnforcerApplication`]).
//!
//! In the 1993 system the model specification was translated into C source
//! code and compiled ("rule compilation" rather than interpretation, §2.1
//! design decision 4). The Rust analogue is monomorphization: an optimizer
//! is `Optimizer<M>` for a concrete `M: Model`, and `rustc` compiles the
//! rule set into the optimizer exactly as the generator did. The companion
//! crate `volcano-gen` additionally reproduces the literal
//! source-generation paradigm and an interpreted `DynamicModel`.
//!
//! ## The search algorithm
//!
//! [`Optimizer::find_best_plan`] implements Figure 2 of the paper:
//! **directed dynamic programming** — top-down, goal-oriented search where
//! a goal is a pair of an equivalence class (group) and a physical property
//! vector, with
//!
//! * a memo (hash table of expressions and equivalence classes) that
//!   detects redundant derivations and stores, per group and property
//!   combination, the best plan found *and* optimization failures,
//! * branch-and-bound pruning via cost limits that tighten as input costs
//!   accrue,
//! * "in progress" marks that break cycles among mutually inverse
//!   transformation rules,
//! * enforcers that relax the property vector for their input and pass an
//!   *excluding* property vector down so that algorithms which could have
//!   satisfied the requirement directly are not considered redundantly,
//! * move ordering by *promise*, with optional move selection — the
//!   "major heuristic placed into the hands of the optimizer implementor".
//!
//! ## Quick example
//!
//! The [`toy`] module contains a minimal relational-ish model used by the
//! crate's own tests:
//!
//! ```
//! use volcano_core::{Optimizer, SearchOptions, ExprTree, PhysicalProps};
//! use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
//!
//! let model = ToyModel::with_tables(&[("R", 1000), ("S", 100)]);
//! let query = ExprTree::new(
//!     ToyOp::Join,
//!     vec![ExprTree::leaf(ToyOp::Get("R".into())), ExprTree::leaf(ToyOp::Get("S".into()))],
//! );
//! let mut opt = Optimizer::new(&model, SearchOptions::default());
//! let root = opt.insert_tree(&query);
//! let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
//! assert!(plan.cost > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod cost;
pub mod error;
pub mod expr;
pub mod fxhash;
pub mod ids;
pub mod memo;
pub mod model;
pub mod pattern;
pub mod plan;
pub mod props;
pub mod rule_index;
pub mod rules;
pub mod search;
pub mod stats;
pub mod toy;
pub mod trace;

pub use budget::{BudgetOutcome, CancelToken, SearchBudget, TripReason};
pub use cost::Cost;
pub use error::OptimizeError;
pub use expr::{ExprTree, SubstExpr};
pub use ids::{ExprId, GoalId, GroupId};
pub use memo::Memo;
pub use model::Model;
pub use pattern::{match_pattern, match_pattern_with, Binding, BindingChild, OpMatcher, Pattern};
pub use plan::Plan;
pub use props::PhysicalProps;
pub use rule_index::RuleIndex;
pub use rules::{
    AlgApplication, Enforcer, EnforcerApplication, ImplementationRule, RuleCtx, TransformationRule,
};
pub use search::{Optimizer, SearchOptions};
pub use stats::SearchStats;
pub use trace::{
    build_span_tree, CollectingTracer, MetricsSnapshot, MetricsTracer, NullTracer, Span, SpanTree,
    TraceEvent, Tracer,
};
