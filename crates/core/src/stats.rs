//! Search statistics.
//!
//! The paper's evaluation (§4.2) reports optimization time, estimated plan
//! cost, and memory consumption; the engine counts everything needed to
//! regenerate those series and to explain *why* a search was cheap or
//! expensive.

use std::fmt;
use std::time::Duration;

use crate::budget::BudgetOutcome;

/// Counters accumulated over one `find_best_plan` invocation (they keep
/// accumulating if the same optimizer instance is reused, mirroring the
/// paper's note that partial results currently live for a single query).
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Equivalence classes created.
    pub groups_created: usize,
    /// Logical expressions created (live + later retired).
    pub exprs_created: usize,
    /// Group merges performed by duplicate detection.
    pub group_merges: u64,
    /// Expressions retired as duplicates by merge cascades.
    pub dead_exprs: u64,
    /// Transformation (expression, rule) exploration tasks whose root
    /// operator satisfied the rule's root matcher. Counting root-matcher
    /// hits (rather than raw task attempts) makes the counter invariant
    /// under the operator-indexed rule dispatch, which only skips tasks
    /// whose root matcher was guaranteed to reject the operator.
    pub transform_matches: u64,
    /// Transformation-rule firings (pattern + condition succeeded).
    pub transform_fired: u64,
    /// Substitute expressions produced by transformations.
    pub substitutes_produced: u64,
    /// Full passes of the exploration fixpoint.
    pub explore_passes: u64,
    /// Optimization goals entered (excluding memo hits).
    pub goals_optimized: u64,
    /// Goal lookups answered from the winner table (plans).
    pub winner_hits: u64,
    /// Goal lookups answered from the winner table (memoized failures).
    pub failure_hits: u64,
    /// Algorithm moves costed.
    pub alg_moves: u64,
    /// Enforcer moves costed.
    pub enforcer_moves: u64,
    /// Moves abandoned because the accumulated cost crossed the limit
    /// (branch-and-bound prunes).
    pub moves_pruned: u64,
    /// Moves skipped because their delivered properties satisfied the
    /// excluding property vector (redundant below an enforcer).
    pub moves_excluded: u64,
    /// Winner entries recorded (optimal plans).
    pub winners_recorded: u64,
    /// Failure entries recorded.
    pub failures_recorded: u64,
    /// Goals completed greedily (first feasible move) after the budget
    /// tripped. Zero for an exhaustive search.
    pub greedy_goals: u64,
    /// Whether the search ran to exhaustion or degraded under its
    /// [`crate::SearchBudget`].
    pub outcome: BudgetOutcome,
    /// Wall-clock time spent inside `find_best_plan`.
    pub elapsed: Duration,
    /// Memo memory footprint estimate after the search, in bytes.
    pub memo_bytes: usize,
}

impl SearchStats {
    /// Total moves considered (algorithms + enforcers).
    pub fn total_moves(&self) -> u64 {
        self.alg_moves + self.enforcer_moves
    }

    /// Accumulate another run's counters into this one. Used by the
    /// benchmark harness to aggregate per-complexity-level totals;
    /// `elapsed` and `memo_bytes` become sums over the merged runs.
    pub fn merge(&mut self, other: &SearchStats) {
        self.groups_created += other.groups_created;
        self.exprs_created += other.exprs_created;
        self.group_merges += other.group_merges;
        self.dead_exprs += other.dead_exprs;
        self.transform_matches += other.transform_matches;
        self.transform_fired += other.transform_fired;
        self.substitutes_produced += other.substitutes_produced;
        self.explore_passes += other.explore_passes;
        self.goals_optimized += other.goals_optimized;
        self.winner_hits += other.winner_hits;
        self.failure_hits += other.failure_hits;
        self.alg_moves += other.alg_moves;
        self.enforcer_moves += other.enforcer_moves;
        self.moves_pruned += other.moves_pruned;
        self.moves_excluded += other.moves_excluded;
        self.winners_recorded += other.winners_recorded;
        self.failures_recorded += other.failures_recorded;
        self.greedy_goals += other.greedy_goals;
        if other.outcome.is_degraded() && !self.outcome.is_degraded() {
            self.outcome = other.outcome;
        }
        self.elapsed += other.elapsed;
        self.memo_bytes += other.memo_bytes;
    }

    /// Counter-for-counter equality, ignoring wall-clock time (`elapsed`
    /// is the only nondeterministic field). Used by the differential
    /// (serial vs parallel exploration) and determinism tests.
    pub fn counters_eq(&self, other: &SearchStats) -> bool {
        self.groups_created == other.groups_created
            && self.exprs_created == other.exprs_created
            && self.group_merges == other.group_merges
            && self.dead_exprs == other.dead_exprs
            && self.transform_matches == other.transform_matches
            && self.transform_fired == other.transform_fired
            && self.substitutes_produced == other.substitutes_produced
            && self.explore_passes == other.explore_passes
            && self.goals_optimized == other.goals_optimized
            && self.winner_hits == other.winner_hits
            && self.failure_hits == other.failure_hits
            && self.alg_moves == other.alg_moves
            && self.enforcer_moves == other.enforcer_moves
            && self.moves_pruned == other.moves_pruned
            && self.moves_excluded == other.moves_excluded
            && self.winners_recorded == other.winners_recorded
            && self.failures_recorded == other.failures_recorded
            && self.greedy_goals == other.greedy_goals
            && self.outcome == other.outcome
            && self.memo_bytes == other.memo_bytes
    }

    /// Render the counters as a JSON object (hand-rolled: every field is
    /// numeric, so no escaping is needed). Consumed by `EXPLAIN ANALYZE`'s
    /// JSON export and the benchmark harness.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"groups_created\":{},\"exprs_created\":{},",
                "\"group_merges\":{},\"dead_exprs\":{},",
                "\"transform_matches\":{},\"transform_fired\":{},",
                "\"substitutes_produced\":{},\"explore_passes\":{},",
                "\"goals_optimized\":{},\"winner_hits\":{},",
                "\"failure_hits\":{},\"alg_moves\":{},",
                "\"enforcer_moves\":{},\"moves_pruned\":{},",
                "\"moves_excluded\":{},\"winners_recorded\":{},",
                "\"failures_recorded\":{},\"greedy_goals\":{},",
                "\"outcome\":\"{}\",\"elapsed_us\":{},",
                "\"memo_bytes\":{}}}"
            ),
            self.groups_created,
            self.exprs_created,
            self.group_merges,
            self.dead_exprs,
            self.transform_matches,
            self.transform_fired,
            self.substitutes_produced,
            self.explore_passes,
            self.goals_optimized,
            self.winner_hits,
            self.failure_hits,
            self.alg_moves,
            self.enforcer_moves,
            self.moves_pruned,
            self.moves_excluded,
            self.winners_recorded,
            self.failures_recorded,
            self.greedy_goals,
            self.outcome.as_token(),
            self.elapsed.as_micros(),
            self.memo_bytes
        )
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "memo: {} groups, {} exprs ({} retired), {} merges, ~{} bytes",
            self.groups_created,
            self.exprs_created,
            self.dead_exprs,
            self.group_merges,
            self.memo_bytes
        )?;
        writeln!(
            f,
            "explore: {} passes, {} matches, {} fired, {} substitutes",
            self.explore_passes,
            self.transform_matches,
            self.transform_fired,
            self.substitutes_produced
        )?;
        writeln!(
            f,
            "search: {} goals, {} winner hits, {} failure hits",
            self.goals_optimized, self.winner_hits, self.failure_hits
        )?;
        writeln!(
            f,
            "moves: {} algorithm, {} enforcer, {} pruned, {} excluded",
            self.alg_moves, self.enforcer_moves, self.moves_pruned, self.moves_excluded
        )?;
        write!(
            f,
            "results: {} winners ({} greedy), {} failures, {}, elapsed {:?}",
            self.winners_recorded,
            self.greedy_goals,
            self.failures_recorded,
            self.outcome,
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_display_mentions_key_counters() {
        let s = SearchStats {
            alg_moves: 3,
            enforcer_moves: 2,
            ..SearchStats::default()
        };
        assert_eq!(s.total_moves(), 5);
        let text = s.to_string();
        assert!(text.contains("3 algorithm"));
        assert!(text.contains("2 enforcer"));
    }

    #[test]
    fn stats_to_json_is_well_formed() {
        let s = SearchStats {
            alg_moves: 3,
            memo_bytes: 1024,
            elapsed: Duration::from_micros(250),
            ..SearchStats::default()
        };
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"alg_moves\":3"));
        assert!(json.contains("\"memo_bytes\":1024"));
        assert!(json.contains("\"elapsed_us\":250"));
        // Balanced quotes and no trailing commas.
        assert_eq!(json.matches('"').count() % 2, 0);
        assert!(!json.contains(",}"));
    }
}
