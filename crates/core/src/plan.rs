//! Extracted query evaluation plans.
//!
//! "The output of the optimizer is a plan, which is an expression over the
//! algebra of algorithms" (§2.2). During search the memo stores each best
//! sub-plan once, as winner entries referencing input *goals*; a [`Plan`]
//! is the materialized tree handed back to the caller.

use std::fmt::Write as _;

use crate::ids::GroupId;
use crate::model::{Algorithm, Model};

/// A physical algebra expression: the optimizer's output.
pub struct Plan<M: Model> {
    /// The algorithm or enforcer at this node.
    pub alg: M::Alg,
    /// Physical properties this node delivers.
    pub delivered: M::PhysProps,
    /// Cost of this node alone.
    pub local_cost: M::Cost,
    /// Cost of this node including all inputs (the plan's estimated
    /// execution cost at the root).
    pub cost: M::Cost,
    /// The equivalence class this plan implements.
    pub group: GroupId,
    /// Input plans.
    pub inputs: Vec<Plan<M>>,
}

impl<M: Model> Clone for Plan<M> {
    fn clone(&self) -> Self {
        Plan {
            alg: self.alg.clone(),
            delivered: self.delivered.clone(),
            local_cost: self.local_cost.clone(),
            cost: self.cost.clone(),
            group: self.group,
            inputs: self.inputs.clone(),
        }
    }
}

impl<M: Model> std::fmt::Debug for Plan<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("alg", &self.alg)
            .field("delivered", &self.delivered)
            .field("cost", &self.cost)
            .field("inputs", &self.inputs)
            .finish()
    }
}

impl<M: Model> Plan<M> {
    /// Number of physical operators in the plan.
    pub fn node_count(&self) -> usize {
        1 + self.inputs.iter().map(Plan::node_count).sum::<usize>()
    }

    /// Depth of the plan tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.inputs.iter().map(Plan::depth).max().unwrap_or(0)
    }

    /// Pre-order iterator over all nodes.
    pub fn nodes(&self) -> Vec<&Plan<M>> {
        let mut out = Vec::with_capacity(self.node_count());
        self.collect_nodes(&mut out);
        out
    }

    fn collect_nodes<'a>(&'a self, out: &mut Vec<&'a Plan<M>>) {
        out.push(self);
        for i in &self.inputs {
            i.collect_nodes(out);
        }
    }

    /// Count nodes whose algorithm satisfies a predicate (e.g. "how many
    /// sorts did the optimizer insert?").
    pub fn count_algs(&self, pred: impl Fn(&M::Alg) -> bool + Copy) -> usize {
        self.nodes().into_iter().filter(|n| pred(&n.alg)).count()
    }

    /// Rebuild the plan with each algorithm mapped through `f`,
    /// preserving structure, costs, and properties. This is how a cached
    /// plan template is re-bound to fresh parameter values: the mapping
    /// must not change any algorithm's shape, only embedded constants.
    pub fn map_algs(&self, f: &mut impl FnMut(&M::Alg) -> M::Alg) -> Plan<M> {
        Plan {
            alg: f(&self.alg),
            delivered: self.delivered.clone(),
            local_cost: self.local_cost.clone(),
            cost: self.cost.clone(),
            group: self.group,
            inputs: self.inputs.iter().map(|i| i.map_algs(f)).collect(),
        }
    }

    /// Render the plan as an indented tree with per-node costs and
    /// delivered properties.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let _ = writeln!(
            out,
            "{:indent$}{} [cost={:?}, local={:?}, delivers={:?}]",
            "",
            self.alg.name(),
            self.cost,
            self.local_cost,
            self.delivered,
            indent = depth * 2
        );
        for i in &self.inputs {
            i.explain_into(out, depth + 1);
        }
    }

    /// Render a compact single-line form: `alg(child, child)`.
    pub fn compact(&self) -> String {
        if self.inputs.is_empty() {
            self.alg.name().to_string()
        } else {
            let args: Vec<String> = self.inputs.iter().map(Plan::compact).collect();
            format!("{}({})", self.alg.name(), args.join(", "))
        }
    }
}
