//! The abstract data type "physical property vector" (§2.2).
//!
//! > *"The set of physical properties is summarized for each intermediate
//! > result in a physical property vector, which is defined by the
//! > optimizer implementor and treated as an abstract data type by the
//! > Volcano optimizer generator and its search engine."*
//!
//! The search engine needs exactly two comparisons on property vectors —
//! equality and *cover* — plus a distinguished "no requirements" vector.
//! Everything else (what the properties *are*: sort order, partitioning,
//! compression status, uniqueness, assembledness, ...) is the model's
//! business.

use std::fmt::Debug;
use std::hash::Hash;

/// Abstract physical property vector supplied by the optimizer
/// implementor.
///
/// `Eq + Hash` provide the paper's equality comparison (used to key the
/// winner table: "for each combination of physical properties for which an
/// equivalence class has already been optimized ... the best plan found is
/// kept"); [`PhysicalProps::satisfies`] provides the *cover* comparison.
///
/// # Laws
///
/// * `satisfies` is reflexive and transitive (a partial order up to
///   equivalence).
/// * `p.satisfies(&Self::any())` holds for every `p`: the empty
///   requirement is satisfied by anything.
/// * If `a == b` then `a.satisfies(&b)`.
///
/// These laws are exercised by property-based tests in the model crates.
pub trait PhysicalProps: Clone + Eq + Hash + Debug {
    /// The vector imposing no requirements at all.
    fn any() -> Self;

    /// Cover comparison: does a result with properties `self` satisfy a
    /// requirement of `required`? E.g. output sorted on `(A, B)` satisfies
    /// a requirement of "sorted on `(A)`".
    fn satisfies(&self, required: &Self) -> bool;

    /// Does this vector impose no requirements? Default: equality with
    /// [`PhysicalProps::any`].
    fn is_any(&self) -> bool {
        *self == Self::any()
    }
}

/// A trivial property vector for models without physical properties.
///
/// Useful for purely logical rewriting models and as a building block in
/// tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct NoProps;

impl PhysicalProps for NoProps {
    fn any() -> Self {
        NoProps
    }

    fn satisfies(&self, _required: &Self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_props_is_trivially_satisfied() {
        assert!(NoProps.satisfies(&NoProps));
        assert!(NoProps.is_any());
        assert_eq!(NoProps::any(), NoProps);
    }
}
