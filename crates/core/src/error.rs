//! Error types for optimization.

use std::error::Error;
use std::fmt;

/// Why [`crate::Optimizer::find_best_plan`] returned no plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// No combination of rules and algorithms produces a plan that
    /// delivers the required physical properties within the cost limit.
    /// With an unlimited budget this means the model simply cannot
    /// implement the expression (e.g. a missing implementation rule).
    NoPlan,
    /// A plan exists but exceeded the caller-supplied cost limit — the
    /// user-interface facility to "catch" unreasonable queries (§3).
    LimitExceeded,
    /// A transformation rule's condition/apply code panicked inside a
    /// parallel exploration worker. The panic is caught per task so a
    /// buggy rule cannot abort the process; the memo retains only
    /// fully-installed exploration passes.
    RulePanicked {
        /// Name of the rule that panicked (`"<worker>"` if the panic
        /// escaped task bookkeeping rather than rule code).
        rule: String,
        /// Rendered panic payload.
        message: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::NoPlan => {
                write!(f, "no plan can deliver the required physical properties")
            }
            OptimizeError::LimitExceeded => {
                write!(f, "every plan exceeds the supplied cost limit")
            }
            OptimizeError::RulePanicked { rule, message } => {
                write!(
                    f,
                    "transformation rule {rule} panicked during exploration: {message}"
                )
            }
        }
    }
}

impl Error for OptimizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(OptimizeError::NoPlan.to_string().contains("no plan"));
        assert!(OptimizeError::LimitExceeded
            .to_string()
            .contains("cost limit"));
    }
}
