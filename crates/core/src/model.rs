//! The data-model specification trait (§2.2).
//!
//! A [`Model`] bundles every component the optimizer implementor supplies:
//! the logical and physical algebras, the three ADTs (cost, logical
//! properties, physical property vector), the rule sets, and the property
//! functions. `Optimizer<M>` is then a *generated optimizer* in the
//! paper's sense: `rustc` monomorphizes the generic search engine over the
//! concrete model, compiling the rules into the optimizer.

use std::fmt::Debug;
use std::hash::Hash;

use crate::cost::Cost;
use crate::props::PhysicalProps;
use crate::rules::{Enforcer, ImplementationRule, TransformationRule};

/// A logical operator of the model's logical algebra.
///
/// Operators "can have zero or more inputs; the number of inputs is not
/// restricted" (§2.2). `arity` is consulted when expressions are built and
/// when patterns are matched.
pub trait Operator: Clone + Eq + Hash + Debug {
    /// Number of inputs this operator consumes.
    fn arity(&self) -> usize;

    /// Stable name for tracing and plan explanation.
    fn name(&self) -> &str;
}

/// A physical algorithm or enforcer of the model's physical algebra.
///
/// Enforcers "are operators in the physical algebra that do not correspond
/// to any operator in the logical algebra" (§2.2); the engine treats both
/// uniformly as `Alg` values once chosen, which mirrors the paper's "in
/// many respects, enforcers are dealt with exactly like algorithms".
pub trait Algorithm: Clone + Eq + Hash + Debug {
    /// Stable name for tracing and plan explanation.
    fn name(&self) -> &str;
}

/// The complete model specification: the input to the optimizer generator.
pub trait Model: Sized {
    /// Logical operators (the logical algebra).
    type Op: Operator;

    /// Physical algorithms and enforcers (the physical algebra).
    type Alg: Algorithm;

    /// The ADT "logical properties": schema, expected size, type of the
    /// intermediate result, ... Derived once per equivalence class, before
    /// any optimization is performed.
    type LogicalProps: Clone + Debug;

    /// The ADT "physical property vector": sort order, partitioning,
    /// compression status, ...
    type PhysProps: PhysicalProps;

    /// The ADT "cost".
    type Cost: Cost;

    /// The property function for logical operators: derive the logical
    /// properties of `op`'s result from the logical properties of its
    /// inputs. Encapsulates selectivity estimation (§2.2).
    ///
    /// Equivalent expressions must derive equal logical properties ("the
    /// schema of an intermediate result can be determined independently of
    /// which one of many equivalent algebra expressions creates it"); the
    /// memo derives each group's properties from the first expression
    /// inserted into it and debug-asserts agreement via
    /// [`Model::assert_logical_props_consistent`].
    fn derive_logical_props(
        &self,
        op: &Self::Op,
        inputs: &[&Self::LogicalProps],
    ) -> Self::LogicalProps;

    /// Consistency check hook: called in debug builds when a second
    /// expression joins an existing group; implementations may assert that
    /// `derived` agrees with the group's existing `props` (e.g. equal
    /// estimated cardinality). The default accepts silently, because
    /// logical property types need not be `Eq`.
    fn assert_logical_props_consistent(
        &self,
        _existing: &Self::LogicalProps,
        _derived: &Self::LogicalProps,
    ) {
    }

    /// Cheap, total *discriminant* of a logical operator, used by the
    /// operator-indexed rule dispatch ([`crate::RuleIndex`]): rules whose
    /// root [`crate::OpMatcher`] declares the discriminants it accepts are
    /// tried only against expressions whose operator carries one of them.
    ///
    /// The default returns `None` — "unindexable", meaning every rule is
    /// tried against every expression exactly as before — so existing and
    /// custom models keep working unchanged. Models that override it must
    /// return the same value for operators that are `==` (the value is a
    /// pure function of the enum variant, never of operator arguments).
    fn op_discriminant(&self, _op: &Self::Op) -> Option<usize> {
        None
    }

    /// The transformation rules of the logical algebra.
    fn transformations(&self) -> &[Box<dyn TransformationRule<Self>>];

    /// The implementation rules mapping logical operators (possibly more
    /// than one at a time) to algorithms.
    fn implementations(&self) -> &[Box<dyn ImplementationRule<Self>>];

    /// The enforcers of the physical algebra.
    fn enforcers(&self) -> &[Box<dyn Enforcer<Self>>];
}
