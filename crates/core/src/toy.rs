//! A deliberately small model specification used by this crate's tests,
//! doctests, and documentation examples.
//!
//! The toy algebra has three logical operators (`get`, `select`, `join`),
//! five physical operators (file scan, filter, hash join, merge join, and
//! the *sort* enforcer) and one physical property (sortedness on an
//! abstract key). Despite its size it exercises every engine feature the
//! paper describes: transformations with multi-level patterns
//! (associativity), property-driven algorithm applicability (merge join
//! requires sorted inputs; hash join cannot deliver sorted output), the
//! sort enforcer with its excluding property vector, and cost-based choice
//! between all of them. Real model specifications live in `volcano-rel`
//! and `volcano-oodb`.

use std::collections::HashMap;

use crate::expr::SubstExpr;
use crate::ids::GroupId;
use crate::model::{Algorithm, Model, Operator};
use crate::pattern::{Binding, Pattern};
use crate::props::PhysicalProps;
use crate::rules::{
    AlgApplication, Enforcer, EnforcerApplication, ImplementationRule, RuleCtx, TransformationRule,
};

/// Logical operators of the toy algebra.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ToyOp {
    /// Scan a named stored relation.
    Get(String),
    /// A selection (predicate left abstract).
    Select,
    /// A binary join (join predicate left abstract).
    Join,
}

/// Operator discriminants for the rule-dispatch index (see
/// [`Model::op_discriminant`]). Pure variant tags, never argument values.
pub mod toy_disc {
    /// `ToyOp::Get(_)`.
    pub const GET: usize = 0;
    /// `ToyOp::Select`.
    pub const SELECT: usize = 1;
    /// `ToyOp::Join`.
    pub const JOIN: usize = 2;
}

impl ToyOp {
    /// The operator's dispatch discriminant (see [`toy_disc`]).
    pub fn discriminant(&self) -> usize {
        match self {
            ToyOp::Get(_) => toy_disc::GET,
            ToyOp::Select => toy_disc::SELECT,
            ToyOp::Join => toy_disc::JOIN,
        }
    }
}

impl Operator for ToyOp {
    fn arity(&self) -> usize {
        match self {
            ToyOp::Get(_) => 0,
            ToyOp::Select => 1,
            ToyOp::Join => 2,
        }
    }

    fn name(&self) -> &str {
        match self {
            ToyOp::Get(_) => "get",
            ToyOp::Select => "select",
            ToyOp::Join => "join",
        }
    }
}

/// Physical operators of the toy algebra.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ToyAlg {
    /// Heap-file scan of a named relation; output unsorted.
    FileScan(String),
    /// Predicate filter; preserves its input's ordering.
    Filter,
    /// Hash join: builds on the left input; output unsorted.
    HashJoin,
    /// Merge join: requires both inputs sorted; output sorted.
    MergeJoin,
    /// The sort enforcer.
    Sort,
}

impl Algorithm for ToyAlg {
    fn name(&self) -> &str {
        match self {
            ToyAlg::FileScan(_) => "file_scan",
            ToyAlg::Filter => "filter",
            ToyAlg::HashJoin => "hash_join",
            ToyAlg::MergeJoin => "merge_join",
            ToyAlg::Sort => "sort",
        }
    }
}

/// The toy physical property vector: sortedness on one abstract key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ToyProps {
    /// Is the stream sorted?
    pub sorted: bool,
}

impl ToyProps {
    /// Requirement: sorted output.
    pub fn sorted() -> Self {
        ToyProps { sorted: true }
    }
}

impl PhysicalProps for ToyProps {
    fn any() -> Self {
        ToyProps { sorted: false }
    }

    fn satisfies(&self, required: &Self) -> bool {
        !required.sorted || self.sorted
    }
}

/// Toy logical properties: an estimated cardinality.
#[derive(Debug, Clone, Copy)]
pub struct ToyLogical {
    /// Estimated number of result rows.
    pub card: f64,
}

/// Join output selectivity used by the toy cost model.
pub const JOIN_SELECTIVITY: f64 = 0.01;
/// Selection selectivity used by the toy cost model.
pub const SELECT_SELECTIVITY: f64 = 0.5;

// ---------------------------------------------------------------------
// Transformation rules.
// ---------------------------------------------------------------------

struct JoinCommute {
    pattern: Pattern<ToyModel>,
}

impl JoinCommute {
    fn new() -> Self {
        JoinCommute {
            pattern: Pattern::op_disc(
                "join",
                vec![toy_disc::JOIN],
                |op: &ToyOp| matches!(op, ToyOp::Join),
                vec![Pattern::Any, Pattern::Any],
            ),
        }
    }
}

impl TransformationRule<ToyModel> for JoinCommute {
    fn name(&self) -> &'static str {
        "join_commute"
    }

    fn pattern(&self) -> &Pattern<ToyModel> {
        &self.pattern
    }

    fn apply(
        &self,
        b: &Binding<ToyModel>,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<SubstExpr<ToyModel>> {
        vec![SubstExpr::node(
            ToyOp::Join,
            vec![
                SubstExpr::group(b.input_group(1)),
                SubstExpr::group(b.input_group(0)),
            ],
        )]
    }
}

struct JoinAssoc {
    pattern: Pattern<ToyModel>,
}

impl JoinAssoc {
    fn new() -> Self {
        JoinAssoc {
            pattern: Pattern::op_disc(
                "join",
                vec![toy_disc::JOIN],
                |op: &ToyOp| matches!(op, ToyOp::Join),
                vec![
                    Pattern::op_disc(
                        "join",
                        vec![toy_disc::JOIN],
                        |op: &ToyOp| matches!(op, ToyOp::Join),
                        vec![Pattern::Any, Pattern::Any],
                    ),
                    Pattern::Any,
                ],
            ),
        }
    }
}

impl TransformationRule<ToyModel> for JoinAssoc {
    fn name(&self) -> &'static str {
        "join_assoc"
    }

    fn pattern(&self) -> &Pattern<ToyModel> {
        &self.pattern
    }

    fn apply(
        &self,
        b: &Binding<ToyModel>,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<SubstExpr<ToyModel>> {
        // (A join B) join C  =>  A join (B join C): the inner join on the
        // right is the paper's Figure 3 "new equivalence class".
        let inner = b.nested(0);
        let a = inner.input_group(0);
        let bb = inner.input_group(1);
        let c = b.input_group(1);
        vec![SubstExpr::node(
            ToyOp::Join,
            vec![
                SubstExpr::group(a),
                SubstExpr::node(ToyOp::Join, vec![SubstExpr::group(bb), SubstExpr::group(c)]),
            ],
        )]
    }
}

// ---------------------------------------------------------------------
// Implementation rules.
// ---------------------------------------------------------------------

struct GetToScan {
    pattern: Pattern<ToyModel>,
}

impl GetToScan {
    fn new() -> Self {
        GetToScan {
            pattern: Pattern::op_disc(
                "get",
                vec![toy_disc::GET],
                |op: &ToyOp| matches!(op, ToyOp::Get(_)),
                vec![],
            ),
        }
    }
}

impl ImplementationRule<ToyModel> for GetToScan {
    fn name(&self) -> &'static str {
        "get_to_file_scan"
    }

    fn pattern(&self) -> &Pattern<ToyModel> {
        &self.pattern
    }

    fn applies(
        &self,
        b: &Binding<ToyModel>,
        required: &ToyProps,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<AlgApplication<ToyModel>> {
        if required.sorted {
            // A heap scan cannot deliver sorted output; only the sort
            // enforcer can help here.
            return vec![];
        }
        let ToyOp::Get(name) = &b.op else {
            unreachable!()
        };
        vec![AlgApplication {
            alg: ToyAlg::FileScan(name.clone()),
            input_props: vec![],
            delivers: ToyProps { sorted: false },
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<ToyModel>,
        b: &Binding<ToyModel>,
        ctx: &RuleCtx<'_, ToyModel>,
    ) -> f64 {
        ctx.memo().logical_props(ctx.memo().group_of(b.expr)).card
    }
}

struct SelectToFilter {
    pattern: Pattern<ToyModel>,
}

impl SelectToFilter {
    fn new() -> Self {
        SelectToFilter {
            pattern: Pattern::op_disc(
                "select",
                vec![toy_disc::SELECT],
                |op: &ToyOp| matches!(op, ToyOp::Select),
                vec![Pattern::Any],
            ),
        }
    }
}

impl ImplementationRule<ToyModel> for SelectToFilter {
    fn name(&self) -> &'static str {
        "select_to_filter"
    }

    fn pattern(&self) -> &Pattern<ToyModel> {
        &self.pattern
    }

    fn applies(
        &self,
        _b: &Binding<ToyModel>,
        required: &ToyProps,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<AlgApplication<ToyModel>> {
        // Filter preserves its input's ordering, so it can deliver
        // whatever is required by requiring the same of its input.
        vec![AlgApplication {
            alg: ToyAlg::Filter,
            input_props: vec![*required],
            delivers: *required,
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<ToyModel>,
        b: &Binding<ToyModel>,
        ctx: &RuleCtx<'_, ToyModel>,
    ) -> f64 {
        // One predicate evaluation per input row.
        ctx.logical_props(b.input_group(0)).card
    }
}

struct JoinToHash {
    pattern: Pattern<ToyModel>,
}

impl JoinToHash {
    fn new() -> Self {
        JoinToHash {
            pattern: Pattern::op_disc(
                "join",
                vec![toy_disc::JOIN],
                |op: &ToyOp| matches!(op, ToyOp::Join),
                vec![Pattern::Any, Pattern::Any],
            ),
        }
    }
}

impl ImplementationRule<ToyModel> for JoinToHash {
    fn name(&self) -> &'static str {
        "join_to_hash_join"
    }

    fn pattern(&self) -> &Pattern<ToyModel> {
        &self.pattern
    }

    fn applies(
        &self,
        _b: &Binding<ToyModel>,
        required: &ToyProps,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<AlgApplication<ToyModel>> {
        if required.sorted {
            // "When optimizing a join expression whose result should be
            // sorted on the join attribute, hybrid hash join does not
            // qualify" (§2.2).
            return vec![];
        }
        vec![AlgApplication {
            alg: ToyAlg::HashJoin,
            input_props: vec![ToyProps::any(), ToyProps::any()],
            delivers: ToyProps { sorted: false },
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<ToyModel>,
        b: &Binding<ToyModel>,
        ctx: &RuleCtx<'_, ToyModel>,
    ) -> f64 {
        // Build on the left (2 units/row), probe with the right (1/row):
        // asymmetric on purpose, so commutativity pays off.
        let l = ctx.logical_props(b.input_group(0)).card;
        let r = ctx.logical_props(b.input_group(1)).card;
        2.0 * l + r
    }
}

struct JoinToMerge {
    pattern: Pattern<ToyModel>,
}

impl JoinToMerge {
    fn new() -> Self {
        JoinToMerge {
            pattern: Pattern::op_disc(
                "join",
                vec![toy_disc::JOIN],
                |op: &ToyOp| matches!(op, ToyOp::Join),
                vec![Pattern::Any, Pattern::Any],
            ),
        }
    }
}

impl ImplementationRule<ToyModel> for JoinToMerge {
    fn name(&self) -> &'static str {
        "join_to_merge_join"
    }

    fn pattern(&self) -> &Pattern<ToyModel> {
        &self.pattern
    }

    fn applies(
        &self,
        _b: &Binding<ToyModel>,
        _required: &ToyProps,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<AlgApplication<ToyModel>> {
        // "Merge-join qualifies with the requirement that its inputs be
        // sorted" (§2.2), and its output is sorted whether that was
        // required or not.
        vec![AlgApplication {
            alg: ToyAlg::MergeJoin,
            input_props: vec![ToyProps::sorted(), ToyProps::sorted()],
            delivers: ToyProps::sorted(),
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<ToyModel>,
        b: &Binding<ToyModel>,
        ctx: &RuleCtx<'_, ToyModel>,
    ) -> f64 {
        let l = ctx.logical_props(b.input_group(0)).card;
        let r = ctx.logical_props(b.input_group(1)).card;
        l + r
    }
}

// ---------------------------------------------------------------------
// Enforcers.
// ---------------------------------------------------------------------

struct SortEnforcer;

impl Enforcer<ToyModel> for SortEnforcer {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn applies(
        &self,
        required: &ToyProps,
        _group: GroupId,
        _ctx: &RuleCtx<'_, ToyModel>,
    ) -> Vec<EnforcerApplication<ToyModel>> {
        if !required.sorted {
            return vec![];
        }
        vec![EnforcerApplication {
            alg: ToyAlg::Sort,
            relaxed: ToyProps::any(),
            // Merge-join "must not be considered as input to the sort"
            // (§2.2): exclude plans that could deliver sortedness
            // themselves.
            excluded: ToyProps::sorted(),
            delivers: ToyProps::sorted(),
        }]
    }

    fn cost(
        &self,
        _app: &EnforcerApplication<ToyModel>,
        group: GroupId,
        ctx: &RuleCtx<'_, ToyModel>,
    ) -> f64 {
        let card = ctx.logical_props(group).card.max(2.0);
        card * card.log2()
    }
}

/// The toy model specification.
pub struct ToyModel {
    tables: HashMap<String, f64>,
    transforms: Vec<Box<dyn TransformationRule<ToyModel>>>,
    impls: Vec<Box<dyn ImplementationRule<ToyModel>>>,
    enfs: Vec<Box<dyn Enforcer<ToyModel>>>,
}

impl ToyModel {
    /// Build a model over the named tables with their cardinalities.
    pub fn with_tables(tables: &[(&str, u64)]) -> Self {
        ToyModel {
            tables: tables
                .iter()
                .map(|(n, c)| (n.to_string(), *c as f64))
                .collect(),
            transforms: vec![Box::new(JoinCommute::new()), Box::new(JoinAssoc::new())],
            impls: vec![
                Box::new(GetToScan::new()),
                Box::new(SelectToFilter::new()),
                Box::new(JoinToHash::new()),
                Box::new(JoinToMerge::new()),
            ],
            enfs: vec![Box::new(SortEnforcer)],
        }
    }

    /// Append a custom transformation rule. Test support: inject
    /// adversarial rules (e.g. panicking condition/apply code) without
    /// defining a whole model.
    pub fn push_transformation(&mut self, rule: Box<dyn TransformationRule<ToyModel>>) {
        self.transforms.push(rule);
    }

    /// Cardinality of a named table.
    pub fn table_card(&self, name: &str) -> f64 {
        *self
            .tables
            .get(name)
            .unwrap_or_else(|| panic!("unknown toy table {name:?}"))
    }
}

impl Model for ToyModel {
    type Op = ToyOp;
    type Alg = ToyAlg;
    type LogicalProps = ToyLogical;
    type PhysProps = ToyProps;
    type Cost = f64;

    fn derive_logical_props(&self, op: &ToyOp, inputs: &[&ToyLogical]) -> ToyLogical {
        let card = match op {
            ToyOp::Get(name) => self.table_card(name),
            ToyOp::Select => inputs[0].card * SELECT_SELECTIVITY,
            ToyOp::Join => inputs[0].card * inputs[1].card * JOIN_SELECTIVITY,
        };
        ToyLogical { card }
    }

    fn assert_logical_props_consistent(&self, existing: &ToyLogical, derived: &ToyLogical) {
        debug_assert!(
            (existing.card - derived.card).abs() <= 1e-6 * existing.card.max(1.0),
            "equivalent expressions derived different cardinalities: {} vs {}",
            existing.card,
            derived.card
        );
    }

    fn op_discriminant(&self, op: &ToyOp) -> Option<usize> {
        Some(op.discriminant())
    }

    fn transformations(&self) -> &[Box<dyn TransformationRule<Self>>] {
        &self.transforms
    }

    fn implementations(&self) -> &[Box<dyn ImplementationRule<Self>>] {
        &self.impls
    }

    fn enforcers(&self) -> &[Box<dyn Enforcer<Self>>] {
        &self.enfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OptimizeError;
    use crate::expr::ExprTree;
    use crate::search::{Optimizer, SearchOptions};

    type Tree = ExprTree<ToyModel>;

    fn get(name: &str) -> Tree {
        Tree::leaf(ToyOp::Get(name.into()))
    }

    fn join(l: Tree, r: Tree) -> Tree {
        Tree::new(ToyOp::Join, vec![l, r])
    }

    fn select(x: Tree) -> Tree {
        Tree::new(ToyOp::Select, vec![x])
    }

    #[test]
    fn scan_costs_cardinality() {
        let model = ToyModel::with_tables(&[("R", 500)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&get("R"));
        let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
        assert_eq!(plan.cost, 500.0);
        assert!(matches!(plan.alg, ToyAlg::FileScan(ref n) if n == "R"));
    }

    #[test]
    fn commutativity_puts_small_relation_on_build_side() {
        let model = ToyModel::with_tables(&[("BIG", 10_000), ("SMALL", 10)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&join(get("BIG"), get("SMALL")));
        let plan = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
        // Hash join builds on the left: the optimizer must have commuted
        // so SMALL is the build (left) input.
        assert_eq!(plan.alg, ToyAlg::HashJoin);
        assert!(matches!(plan.inputs[0].alg, ToyAlg::FileScan(ref n) if n == "SMALL"));
        // Total: scans (10_000 + 10) + hash join (2*10 + 10_000).
        assert_eq!(plan.cost, 10.0 + 10_000.0 + 2.0 * 10.0 + 10_000.0);
    }

    #[test]
    fn sorted_goal_is_satisfied_and_consistent() {
        let model = ToyModel::with_tables(&[("R", 1000), ("S", 1000)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&join(get("R"), get("S")));
        let plan = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();
        assert!(plan.delivered.sorted);
        // Either merge-join (with sort enforcers below) or sort-on-top of
        // hash join; both deliver sortedness.
        assert!(matches!(plan.alg, ToyAlg::MergeJoin | ToyAlg::Sort));
    }

    #[test]
    fn merge_join_never_appears_directly_under_sort() {
        // The excluding physical property vector at work (§3).
        let model = ToyModel::with_tables(&[("R", 1000), ("S", 900)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&join(get("R"), get("S")));
        let plan = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();
        for node in plan.nodes() {
            if node.alg == ToyAlg::Sort {
                assert_ne!(
                    node.inputs[0].alg,
                    ToyAlg::MergeJoin,
                    "merge-join must not be considered as input to the sort"
                );
            }
        }
    }

    #[test]
    fn sorted_goal_cost_is_min_of_both_strategies() {
        let model = ToyModel::with_tables(&[("R", 1000), ("S", 1000)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&join(get("R"), get("S")));
        let plan = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();

        let scan = 1000.0;
        let sort_base = |card: f64| card * card.log2();
        // Strategy A: sort both scans, merge join.
        let a = 2.0 * scan + 2.0 * sort_base(1000.0) + (1000.0 + 1000.0);
        // Strategy B: hash join unsorted, sort the result (card 10_000).
        let b = 2.0 * scan + (2.0 * 1000.0 + 1000.0) + sort_base(10_000.0);
        assert!((plan.cost - a.min(b)).abs() < 1e-6);
    }

    #[test]
    fn three_way_join_explores_all_orders() {
        let model = ToyModel::with_tables(&[("A", 100), ("B", 200), ("C", 300)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&join(join(get("A"), get("B")), get("C")));
        let _ = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
        // Exhaustive exploration of 3 relations: 3 leaf groups, the three
        // pair groups {AB, BC, AC}, and the root group = 7 live groups.
        assert_eq!(opt.memo().num_groups(), 7);
        // Each pair group holds both commuted joins; the root holds
        // 3 (pairs) * 2 (commutations) = 6 join expressions.
        let root_exprs = opt.memo().group_exprs(opt.memo().repr(root));
        assert_eq!(root_exprs.count(), 6);
    }

    #[test]
    fn cost_limit_is_respected() {
        let model = ToyModel::with_tables(&[("R", 1000), ("S", 1000)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&join(get("R"), get("S")));
        let err = opt
            .find_best_plan(root, ToyProps::any(), Some(10.0))
            .unwrap_err();
        assert_eq!(err, OptimizeError::LimitExceeded);
        // And a generous limit succeeds on the same optimizer instance
        // (failure memoization must not block the more permissive retry).
        let plan = opt
            .find_best_plan(root, ToyProps::any(), Some(1e12))
            .unwrap();
        assert!(plan.cost < 1e12);
    }

    #[test]
    fn select_preserves_order_requirement() {
        let model = ToyModel::with_tables(&[("R", 1000)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&select(get("R")));
        let plan = opt.find_best_plan(root, ToyProps::sorted(), None).unwrap();
        assert!(plan.delivered.sorted);
        // Cheapest: sort the 1000-row scan, then filter (sort above the
        // filter would sort the same 500 rows cheaper... so the optimizer
        // picks sort(filter(scan)) or filter(sort(scan)) by cost).
        let algs: Vec<_> = plan.nodes().iter().map(|n| n.alg.clone()).collect();
        assert!(algs.contains(&ToyAlg::Sort));
        assert!(algs.contains(&ToyAlg::Filter));
    }

    #[test]
    fn pruning_does_not_change_the_answer() {
        let model = ToyModel::with_tables(&[("A", 1000), ("B", 2000), ("C", 500), ("D", 1500)]);
        let query = join(join(join(get("A"), get("B")), get("C")), get("D"));

        let mut opt1 = Optimizer::new(&model, SearchOptions::default());
        let r1 = opt1.insert_tree(&query);
        let p1 = opt1.find_best_plan(r1, ToyProps::any(), None).unwrap();

        let no_prune = SearchOptions {
            pruning: false,
            failure_memo: false,
            ..SearchOptions::default()
        };
        let mut opt2 = Optimizer::new(&model, no_prune);
        let r2 = opt2.insert_tree(&query);
        let p2 = opt2.find_best_plan(r2, ToyProps::any(), None).unwrap();

        assert!((p1.cost - p2.cost).abs() < 1e-6);
    }

    #[test]
    fn stats_are_populated() {
        let model = ToyModel::with_tables(&[("R", 1000), ("S", 100)]);
        let mut opt = Optimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&join(get("R"), get("S")));
        let _ = opt.find_best_plan(root, ToyProps::any(), None).unwrap();
        let s = opt.stats();
        assert!(s.goals_optimized > 0);
        assert!(s.alg_moves > 0);
        assert!(s.transform_fired > 0);
        assert!(s.winners_recorded > 0);
        assert!(s.memo_bytes > 0);
        assert!(s.exprs_created >= 4);
    }
}
