//! Operator-indexed rule dispatch.
//!
//! The inner loops of both exploration (`explore_fixpoint`) and move
//! generation (`generate_moves`) historically tried *every* rule against
//! *every* expression — a Get expression would pattern-match every join
//! rule just to fail at the root matcher. A [`RuleIndex`] is built once
//! per [`crate::Optimizer`] and maps each operator *discriminant* (see
//! [`Model::op_discriminant`]) to the transformation and implementation
//! rules whose root [`crate::OpMatcher`] can possibly accept an operator
//! with that discriminant.
//!
//! The index is conservative by construction:
//!
//! * a rule whose root matcher declares no discriminant set is a candidate
//!   for **every** operator,
//! * an operator whose model returns `None` ("unindexable") receives the
//!   **full** rule list,
//! * candidate lists preserve ascending rule order, so consulting the
//!   index visits exactly the rules a linear scan would have visited, in
//!   the same order, minus rules whose root matcher was going to reject
//!   the operator anyway. Plans, costs, statistics, and trace streams are
//!   therefore identical with the index on or off (the differential test
//!   asserts this; the completeness proptest guards the declared sets).

use std::collections::HashMap;

use crate::model::Model;
use crate::pattern::Pattern;

/// Candidate rule lists for one rule kind (transformations or
/// implementations).
struct KindIndex {
    /// Every rule index, ascending: the fallback for unindexable
    /// operators (and for `rule_index: false` runs).
    all: Vec<usize>,
    /// Rules whose root matcher declares no discriminant set (including
    /// `Any`-rooted patterns): candidates for every operator.
    always: Vec<usize>,
    /// Per-discriminant candidates: `always` merged with the rules that
    /// declared the discriminant, ascending. Discriminants no rule
    /// declared are absent — their candidates are exactly `always`.
    by_disc: HashMap<usize, Vec<usize>>,
}

impl KindIndex {
    /// Build from each rule's root pattern, in rule order.
    fn build<'p, M: Model + 'p>(patterns: impl Iterator<Item = &'p Pattern<M>>) -> Self {
        let mut all = Vec::new();
        let mut always = Vec::new();
        let mut declared: HashMap<usize, Vec<usize>> = HashMap::new();
        for (ri, pattern) in patterns.enumerate() {
            all.push(ri);
            match pattern.root_matcher().and_then(|m| m.discriminants()) {
                None => always.push(ri),
                Some(ds) => {
                    for &d in ds {
                        let bucket = declared.entry(d).or_default();
                        // Tolerate duplicate declarations.
                        if bucket.last() != Some(&ri) {
                            bucket.push(ri);
                        }
                    }
                }
            }
        }
        let by_disc = declared
            .into_iter()
            .map(|(d, mut rules)| {
                rules.extend_from_slice(&always);
                rules.sort_unstable();
                (d, rules)
            })
            .collect();
        KindIndex {
            all,
            always,
            by_disc,
        }
    }

    fn candidates(&self, disc: Option<usize>) -> &[usize] {
        match disc {
            None => &self.all,
            Some(d) => self.by_disc.get(&d).map_or(&self.always, Vec::as_slice),
        }
    }
}

/// The dispatch index over a model's transformation and implementation
/// rules. Enforcers are not indexed: they are per-goal, not per-operator.
pub struct RuleIndex {
    transforms: KindIndex,
    impls: KindIndex,
}

impl RuleIndex {
    /// Build the index for a model. Cost is O(rules × declared
    /// discriminants), paid once per optimizer.
    pub fn new<M: Model>(model: &M) -> Self {
        RuleIndex {
            transforms: KindIndex::build(model.transformations().iter().map(|r| r.pattern())),
            impls: KindIndex::build(model.implementations().iter().map(|r| r.pattern())),
        }
    }

    /// Transformation rules that can possibly match an operator with the
    /// given discriminant, ascending. `None` = unindexable → all rules.
    pub fn transform_candidates(&self, disc: Option<usize>) -> &[usize] {
        self.transforms.candidates(disc)
    }

    /// Implementation rules that can possibly match an operator with the
    /// given discriminant, ascending. `None` = unindexable → all rules.
    pub fn impl_candidates(&self, disc: Option<usize>) -> &[usize] {
        self.impls.candidates(disc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyModel;

    #[test]
    fn unindexable_discriminant_gets_every_rule() {
        let model = ToyModel::with_tables(&[("R", 100)]);
        let idx = RuleIndex::new(&model);
        assert_eq!(
            idx.transform_candidates(None).len(),
            model.transformations().len()
        );
        assert_eq!(
            idx.impl_candidates(None).len(),
            model.implementations().len()
        );
    }

    #[test]
    fn candidate_lists_are_ascending() {
        let model = ToyModel::with_tables(&[("R", 100)]);
        let idx = RuleIndex::new(&model);
        for d in 0..8 {
            for list in [
                idx.transform_candidates(Some(d)),
                idx.impl_candidates(Some(d)),
            ] {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted: {list:?}");
            }
        }
    }
}
