//! Integer identifiers for memo entities.
//!
//! The EXODUS prototype already translated "all strings into integers,
//! which ensured very fast pattern matching" (§4); we follow the same
//! discipline: groups and expressions are dense `u32` indices into arenas,
//! never pointers or strings.

use std::fmt;

/// Identifier of an equivalence class (group) in the [`crate::Memo`].
///
/// A `GroupId` may refer to a group that has since been merged into
/// another; the memo resolves identifiers to their union-find
/// representative on every access, so stale ids remain valid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub(crate) u32);

impl GroupId {
    /// Raw index value (stable for the lifetime of the memo).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for tests and serialization.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        GroupId(i as u32)
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Identifier of a logical expression in the [`crate::Memo`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub(crate) u32);

impl ExprId {
    /// Raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for tests and serialization.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ExprId(i as u32)
    }
}

impl fmt::Debug for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Identifier of an interned optimization goal (a `(required, excluded)`
/// physical-property pair) in the [`crate::Memo`]'s goal table.
///
/// Goal ids are memo-global, not per-group, so group merges never need to
/// remap them; two goals with equal property vectors always intern to the
/// same id, making winner-table probes and cycle checks integer
/// comparisons instead of property-vector hashes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GoalId(pub(crate) u32);

impl GoalId {
    /// Raw index value (stable for the lifetime of the memo).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for tests and serialization.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        GoalId(i as u32)
    }
}

impl fmt::Debug for GoalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl fmt::Display for GoalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_id_roundtrip() {
        let q = GoalId::from_index(3);
        assert_eq!(q.index(), 3);
        assert_eq!(format!("{q:?}"), "Q3");
    }

    #[test]
    fn group_id_roundtrip() {
        let g = GroupId::from_index(42);
        assert_eq!(g.index(), 42);
        assert_eq!(format!("{g:?}"), "G42");
        assert_eq!(format!("{g}"), "G42");
    }

    #[test]
    fn expr_id_roundtrip() {
        let e = ExprId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e:?}"), "E7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(GroupId::from_index(1) < GroupId::from_index(2));
        assert!(ExprId::from_index(0) < ExprId::from_index(1));
    }
}
