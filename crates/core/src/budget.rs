//! Resource budgets for the search engine: the *anytime* layer.
//!
//! The paper's search is exhaustive — "the Volcano search strategy uses
//! dynamic programming for all possible plans" — and §4.2 shows memo and
//! goal counts growing super-linearly with query size. A production
//! optimizer serving heavy traffic cannot spend unbounded time or memory
//! per query, so [`SearchBudget`] bounds a search along four axes (wall
//! clock, memo expressions, memo groups, goals optimized) and adds a
//! cooperative [`CancelToken`] for external aborts.
//!
//! Tripping a budget never turns into an error. The engine instead
//! switches to a *greedy, promise-first completion pass*: every in-flight
//! goal is finished with the first feasible move (no further enumeration),
//! so `find_best_plan` still returns a valid, executable plan whose cost
//! is an upper bound on the true optimum — the anytime property. The
//! outcome — [`BudgetOutcome::Exhaustive`] or
//! [`BudgetOutcome::Degraded`] with its [`TripReason`] — is surfaced
//! through [`crate::SearchStats`], [`crate::TraceEvent::BudgetTripped`],
//! `EXPLAIN ANALYZE`, and the CLI.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cooperative cancellation token.
///
/// Clone it, hand one clone to the optimizer via
/// [`SearchBudget::cancel`], and keep the other; calling
/// [`CancelToken::cancel`] from any thread makes the search degrade to
/// greedy completion at the next goal or move boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource limits for one optimizer. The default is unlimited on every
/// axis, which reproduces the paper's exhaustive search exactly.
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    /// Wall-clock deadline, armed at each [`crate::Optimizer::find_best_plan`]
    /// (or standalone exploration) entry.
    pub deadline: Option<Duration>,
    /// Maximum memo expressions (live + retired) before degrading.
    pub max_exprs: Option<usize>,
    /// Maximum memo equivalence classes allocated before degrading.
    pub max_groups: Option<usize>,
    /// Maximum optimization goals entered (memo hits excluded) before
    /// degrading.
    pub max_goals: Option<u64>,
    /// Cooperative cancellation token, polled at goal and move
    /// boundaries.
    pub cancel: Option<CancelToken>,
}

impl SearchBudget {
    /// The unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Is every axis unlimited? (Fast-path check: an unlimited budget
    /// costs the engine one branch per check site.)
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_exprs.is_none()
            && self.max_groups.is_none()
            && self.max_goals.is_none()
            && self.cancel.is_none()
    }

    /// Builder: set a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Builder: cap memo expressions.
    pub fn with_max_exprs(mut self, n: usize) -> Self {
        self.max_exprs = Some(n);
        self
    }

    /// Builder: cap memo groups.
    pub fn with_max_groups(mut self, n: usize) -> Self {
        self.max_groups = Some(n);
        self
    }

    /// Builder: cap optimization goals.
    pub fn with_max_goals(mut self, n: u64) -> Self {
        self.max_goals = Some(n);
        self
    }

    /// Builder: attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Which budget axis tripped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The memo exceeded its expression cap.
    ExprLimit,
    /// The memo exceeded its group cap.
    GroupLimit,
    /// The goal count exceeded its cap.
    GoalLimit,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl TripReason {
    /// Stable lowercase identifier, used in JSON exports and EXPLAIN.
    pub fn as_str(&self) -> &'static str {
        match self {
            TripReason::Deadline => "deadline",
            TripReason::ExprLimit => "expr-limit",
            TripReason::GroupLimit => "group-limit",
            TripReason::GoalLimit => "goal-limit",
            TripReason::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a search ended with respect to its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetOutcome {
    /// The budget never tripped: the search was the paper's exhaustive
    /// search and the returned plan is optimal.
    #[default]
    Exhaustive,
    /// The budget tripped: the remaining goals were completed greedily
    /// (first feasible move, promise order) and the returned plan is a
    /// valid upper bound on the optimum.
    Degraded(TripReason),
}

impl BudgetOutcome {
    /// Did the budget trip?
    pub fn is_degraded(&self) -> bool {
        matches!(self, BudgetOutcome::Degraded(_))
    }

    /// Stable identifier used in JSON exports: `"exhaustive"` or
    /// `"degraded:<reason>"`.
    pub fn as_token(&self) -> String {
        match self {
            BudgetOutcome::Exhaustive => "exhaustive".to_string(),
            BudgetOutcome::Degraded(r) => format!("degraded:{r}"),
        }
    }
}

impl fmt::Display for BudgetOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetOutcome::Exhaustive => f.write_str("exhaustive"),
            BudgetOutcome::Degraded(r) => write!(f, "degraded ({r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(SearchBudget::default().is_unlimited());
        assert!(!SearchBudget::default().with_max_goals(10).is_unlimited());
        assert!(!SearchBudget::default()
            .with_deadline(Duration::from_millis(5))
            .is_unlimited());
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn outcome_tokens() {
        assert_eq!(BudgetOutcome::Exhaustive.as_token(), "exhaustive");
        assert_eq!(
            BudgetOutcome::Degraded(TripReason::Deadline).as_token(),
            "degraded:deadline"
        );
        assert!(!BudgetOutcome::Exhaustive.is_degraded());
        assert!(BudgetOutcome::Degraded(TripReason::GoalLimit).is_degraded());
        assert_eq!(
            BudgetOutcome::Degraded(TripReason::ExprLimit).to_string(),
            "degraded (expr-limit)"
        );
    }
}
