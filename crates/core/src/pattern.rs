//! Tree patterns and pattern matching over the memo.
//!
//! Rules specify *patterns* — trees of operator matchers whose leaves are
//! wildcards binding entire equivalence classes. Matching a pattern
//! against a logical expression enumerates every *binding*: a choice of
//! concrete member expression for each interior pattern node. Multi-level
//! patterns are what make rules such as join associativity
//! (`Join(Join(?a, ?b), ?c)`) and multi-operator implementation rules
//! (`Project(Join(?a, ?b))` → one physical operator, §2.2) expressible.

use std::fmt;

use crate::ids::{ExprId, GroupId};
use crate::memo::Memo;
use crate::model::Model;

/// Boxed operator predicate.
type OpPred<M> = Box<dyn Fn(&<M as Model>::Op) -> bool + Send + Sync>;

/// A predicate over logical operators, used at interior pattern nodes.
///
/// Matchers are named so traces and generated documentation can display
/// patterns symbolically.
pub struct OpMatcher<M: Model> {
    name: &'static str,
    pred: OpPred<M>,
    /// Operator discriminants (see [`Model::op_discriminant`]) the
    /// predicate can possibly accept. `None` = undeclared: the matcher
    /// must be tried against every operator.
    discriminants: Option<Vec<usize>>,
}

impl<M: Model> OpMatcher<M> {
    /// Build a matcher from a name and a predicate.
    pub fn new(name: &'static str, pred: impl Fn(&M::Op) -> bool + Send + Sync + 'static) -> Self {
        OpMatcher {
            name,
            pred: Box::new(pred),
            discriminants: None,
        }
    }

    /// Build a matcher that additionally *declares* the operator
    /// discriminants its predicate can accept, enabling the
    /// operator-indexed rule dispatch ([`crate::RuleIndex`]) to skip the
    /// rule entirely for operators outside the set.
    ///
    /// Soundness contract: for every operator `op` with
    /// `model.op_discriminant(op) == Some(d)`, if `pred(op)` can return
    /// `true` then `d` must be in `discriminants`. Declaring too much is
    /// merely wasted work; declaring too little silently loses plans (the
    /// `RuleIndex` completeness proptest guards the shipped models).
    pub fn with_discriminants(
        name: &'static str,
        discriminants: Vec<usize>,
        pred: impl Fn(&M::Op) -> bool + Send + Sync + 'static,
    ) -> Self {
        OpMatcher {
            name,
            pred: Box::new(pred),
            discriminants: Some(discriminants),
        }
    }

    /// Does this matcher accept `op`?
    pub fn matches(&self, op: &M::Op) -> bool {
        (self.pred)(op)
    }

    /// The matcher's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The declared discriminant set, if any.
    pub fn discriminants(&self) -> Option<&[usize]> {
        self.discriminants.as_deref()
    }
}

impl<M: Model> fmt::Debug for OpMatcher<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpMatcher({})", self.name)
    }
}

/// A tree pattern over the logical algebra.
pub enum Pattern<M: Model> {
    /// Wildcard: matches any equivalence class, binding its group id.
    Any,
    /// An interior node: matches expressions whose operator satisfies the
    /// matcher and whose inputs match the sub-patterns position-wise.
    Op {
        /// Predicate on the operator at this node.
        matcher: OpMatcher<M>,
        /// Sub-patterns, one per operator input.
        inputs: Vec<Pattern<M>>,
    },
}

impl<M: Model> fmt::Debug for Pattern<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern({})", self.display())
    }
}

impl<M: Model> Pattern<M> {
    /// Convenience constructor for an interior node.
    pub fn op(
        name: &'static str,
        pred: impl Fn(&M::Op) -> bool + Send + Sync + 'static,
        inputs: Vec<Pattern<M>>,
    ) -> Self {
        Pattern::Op {
            matcher: OpMatcher::new(name, pred),
            inputs,
        }
    }

    /// Convenience constructor for an interior node with a declared
    /// discriminant set (see [`OpMatcher::with_discriminants`]).
    pub fn op_disc(
        name: &'static str,
        discriminants: Vec<usize>,
        pred: impl Fn(&M::Op) -> bool + Send + Sync + 'static,
        inputs: Vec<Pattern<M>>,
    ) -> Self {
        Pattern::Op {
            matcher: OpMatcher::with_discriminants(name, discriminants, pred),
            inputs,
        }
    }

    /// The matcher at the pattern root, if the root is an `Op` node.
    pub fn root_matcher(&self) -> Option<&OpMatcher<M>> {
        match self {
            Pattern::Any => None,
            Pattern::Op { matcher, .. } => Some(matcher),
        }
    }

    /// Does the pattern root accept `op`? A top-level wildcard binds
    /// nothing useful (rules must have an operator at the root), so `Any`
    /// answers `false` — consistent with [`match_pattern`] producing no
    /// bindings for it.
    pub fn root_matches(&self, op: &M::Op) -> bool {
        match self {
            Pattern::Any => false,
            Pattern::Op { matcher, .. } => matcher.matches(op),
        }
    }

    /// Depth of the pattern: `Any` is 0, a node is 1 + max input depth.
    /// Patterns of depth ≤ 1 never need re-matching when input groups
    /// grow, which the exploration fixpoint exploits.
    pub fn depth(&self) -> usize {
        match self {
            Pattern::Any => 0,
            Pattern::Op { inputs, .. } => 1 + inputs.iter().map(Pattern::depth).max().unwrap_or(0),
        }
    }

    /// Render the pattern symbolically, e.g. `join(join(?, ?), ?)`.
    pub fn display(&self) -> String {
        match self {
            Pattern::Any => "?".to_string(),
            Pattern::Op { matcher, inputs } => {
                if inputs.is_empty() {
                    matcher.name().to_string()
                } else {
                    let args: Vec<String> = inputs.iter().map(Pattern::display).collect();
                    format!("{}({})", matcher.name(), args.join(", "))
                }
            }
        }
    }
}

/// The result of matching one pattern node against one expression.
pub struct Binding<M: Model> {
    /// The matched expression.
    pub expr: ExprId,
    /// The matched expression's operator (cloned so condition/apply code
    /// can inspect operator arguments without re-borrowing the memo).
    pub op: M::Op,
    /// One child per operator input, position-wise.
    pub children: Vec<BindingChild<M>>,
}

/// A bound pattern child: either a whole group (wildcard) or a nested
/// binding (interior pattern node).
pub enum BindingChild<M: Model> {
    /// The child pattern was `Any`; the whole input group is bound.
    Group(GroupId),
    /// The child pattern was an `Op` node bound to a member expression.
    Bound(Binding<M>),
}

impl<M: Model> Clone for Binding<M> {
    fn clone(&self) -> Self {
        Binding {
            expr: self.expr,
            op: self.op.clone(),
            children: self.children.clone(),
        }
    }
}

impl<M: Model> fmt::Debug for Binding<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Binding")
            .field("expr", &self.expr)
            .field("op", &self.op)
            .field("children", &self.children)
            .finish()
    }
}

impl<M: Model> Clone for BindingChild<M> {
    fn clone(&self) -> Self {
        match self {
            BindingChild::Group(g) => BindingChild::Group(*g),
            BindingChild::Bound(b) => BindingChild::Bound(b.clone()),
        }
    }
}

impl<M: Model> fmt::Debug for BindingChild<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingChild::Group(g) => write!(f, "Group({g:?})"),
            BindingChild::Bound(b) => write!(f, "Bound({b:?})"),
        }
    }
}

impl<M: Model> Binding<M> {
    /// The groups bound by `Any` leaves, in left-to-right order. For an
    /// implementation rule these are the input groups of the resulting
    /// physical operator.
    pub fn leaf_groups(&self) -> Vec<GroupId> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<GroupId>) {
        for c in &self.children {
            match c {
                BindingChild::Group(g) => out.push(*g),
                BindingChild::Bound(b) => b.collect_leaves(out),
            }
        }
    }

    /// The input group bound at child position `i` (panics if that child
    /// was matched by a nested pattern rather than a wildcard).
    pub fn input_group(&self, i: usize) -> GroupId {
        match &self.children[i] {
            BindingChild::Group(g) => *g,
            BindingChild::Bound(_) => {
                panic!("binding child {i} is a nested expression, not a group")
            }
        }
    }

    /// The nested binding at child position `i` (panics if that child was
    /// matched by a wildcard).
    pub fn nested(&self, i: usize) -> &Binding<M> {
        match &self.children[i] {
            BindingChild::Group(_) => panic!("binding child {i} is a group, not a nested binding"),
            BindingChild::Bound(b) => b,
        }
    }
}

/// Stream every binding of `pattern` rooted at expression `expr` into the
/// visitor `f`, in the same lexicographic order [`match_pattern`] returns
/// (child 0 varies slowest; within a child, member-expression order, then
/// that member's own binding order).
///
/// Interior pattern nodes quantify over every live member expression of
/// the corresponding input group, so the enumeration covers the full cross
/// product — exactly the "several different ways" in which an algebraic
/// transformation system can derive the same expression, which the memo's
/// duplicate detection then collapses. Streaming means the cross product
/// is never materialized: the children accumulator is a single backtracked
/// stack, and each emitted [`Binding`] is built only when a complete match
/// exists. Caveat: alternatives of a child are re-enumerated for each
/// combination of earlier children, which only costs extra work for
/// patterns with two or more nested `Op` children — none of the shipped
/// models have one.
pub fn match_pattern_with<M: Model>(
    memo: &Memo<M>,
    pattern: &Pattern<M>,
    expr: ExprId,
    f: &mut dyn FnMut(Binding<M>),
) {
    // A top-level wildcard binds nothing useful; rules must have an
    // operator at the root.
    let Pattern::Op { matcher, inputs } = pattern else {
        return;
    };
    let (op, expr_inputs) = memo.expr(expr);
    if !matcher.matches(op) || inputs.len() != expr_inputs.len() {
        return;
    }
    let op = op.clone();
    let mut acc: Vec<BindingChild<M>> = Vec::with_capacity(inputs.len());
    fill_children(memo, inputs, expr_inputs, &mut acc, &mut |children| {
        f(Binding {
            expr,
            op: op.clone(),
            children: children.to_vec(),
        })
    });
}

/// Backtracking recursion over child positions: `acc` holds bindings for
/// positions `0..acc.len()`; once every position is bound, `emit` fires.
fn fill_children<M: Model>(
    memo: &Memo<M>,
    pats: &[Pattern<M>],
    groups: &[GroupId],
    acc: &mut Vec<BindingChild<M>>,
    emit: &mut dyn FnMut(&[BindingChild<M>]),
) {
    let i = acc.len();
    if i == pats.len() {
        emit(acc);
        return;
    }
    match &pats[i] {
        Pattern::Any => {
            acc.push(BindingChild::Group(memo.repr(groups[i])));
            fill_children(memo, pats, groups, acc, emit);
            acc.pop();
        }
        nested => {
            for eid in memo.group_exprs(groups[i]) {
                match_pattern_with(memo, nested, eid, &mut |b| {
                    acc.push(BindingChild::Bound(b));
                    fill_children(memo, pats, groups, acc, emit);
                    acc.pop();
                });
            }
        }
    }
}

/// Enumerate all bindings of `pattern` rooted at expression `expr` as a
/// materialized vector. Convenience wrapper over [`match_pattern_with`]
/// for tests and callers that genuinely need the whole set; the search
/// engine's hot paths use the streaming form.
pub fn match_pattern<M: Model>(
    memo: &Memo<M>,
    pattern: &Pattern<M>,
    expr: ExprId,
) -> Vec<Binding<M>> {
    let mut out = Vec::new();
    match_pattern_with(memo, pattern, expr, &mut |b| out.push(b));
    out
}
