//! Logical algebra expression trees.
//!
//! [`ExprTree`] is the optimizer's *input*: "user queries to be optimized
//! by a generated optimizer are specified as an algebra expression (tree)
//! of logical operators" (§2.2). [`SubstExpr`] is what a transformation
//! rule *produces*: a tree whose leaves may refer back to equivalence
//! classes bound by the rule's pattern.

use crate::ids::GroupId;
use crate::model::{Model, Operator};

/// A standalone logical algebra expression (the parser's output).
// Trait impls are written by hand throughout this crate because derives on
// `Foo<M: Model>` would bound `M` itself instead of the associated types.
pub struct ExprTree<M: Model> {
    /// The operator at this node.
    pub op: M::Op,
    /// Input expressions, one per operator input.
    pub inputs: Vec<ExprTree<M>>,
}

impl<M: Model> Clone for ExprTree<M> {
    fn clone(&self) -> Self {
        ExprTree {
            op: self.op.clone(),
            inputs: self.inputs.clone(),
        }
    }
}

impl<M: Model> std::fmt::Debug for ExprTree<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExprTree")
            .field("op", &self.op)
            .field("inputs", &self.inputs)
            .finish()
    }
}

impl<M: Model> PartialEq for ExprTree<M> {
    fn eq(&self, other: &Self) -> bool {
        self.op == other.op && self.inputs == other.inputs
    }
}

impl<M: Model> Eq for ExprTree<M> {}

impl<M: Model> ExprTree<M> {
    /// Build an interior node; panics if the input count does not match
    /// the operator's declared arity.
    pub fn new(op: M::Op, inputs: Vec<ExprTree<M>>) -> Self {
        assert_eq!(
            op.arity(),
            inputs.len(),
            "operator {} declares arity {} but got {} inputs",
            op.name(),
            op.arity(),
            inputs.len()
        );
        ExprTree { op, inputs }
    }

    /// Build a leaf (zero-input) node.
    pub fn leaf(op: M::Op) -> Self {
        Self::new(op, Vec::new())
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.inputs.iter().map(ExprTree::node_count).sum::<usize>()
    }

    /// Depth of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.inputs.iter().map(ExprTree::depth).max().unwrap_or(0)
    }

    /// Render as `op(child, child, ...)`.
    pub fn display(&self) -> String {
        if self.inputs.is_empty() {
            self.op.name().to_string()
        } else {
            let args: Vec<String> = self.inputs.iter().map(ExprTree::display).collect();
            format!("{}({})", self.op.name(), args.join(", "))
        }
    }
}

/// A substitute expression produced by a transformation rule.
///
/// Leaves are either operators of arity zero or references to equivalence
/// classes the rule's pattern bound (`Group`). Referring to groups rather
/// than concrete expressions is what lets a single rule application stand
/// for the transformation of *every* member of the bound classes — the
/// memo sharing at the heart of dynamic programming over algebras.
pub enum SubstExpr<M: Model> {
    /// Reference to an existing equivalence class.
    Group(GroupId),
    /// A new (or rediscovered) operator node.
    Node {
        /// The operator at this node.
        op: M::Op,
        /// Inputs, one per operator input.
        inputs: Vec<SubstExpr<M>>,
    },
}

impl<M: Model> Clone for SubstExpr<M> {
    fn clone(&self) -> Self {
        match self {
            SubstExpr::Group(g) => SubstExpr::Group(*g),
            SubstExpr::Node { op, inputs } => SubstExpr::Node {
                op: op.clone(),
                inputs: inputs.clone(),
            },
        }
    }
}

impl<M: Model> std::fmt::Debug for SubstExpr<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubstExpr::Group(g) => write!(f, "Group({g:?})"),
            SubstExpr::Node { op, inputs } => f
                .debug_struct("Node")
                .field("op", op)
                .field("inputs", inputs)
                .finish(),
        }
    }
}

impl<M: Model> SubstExpr<M> {
    /// Build an interior node; panics on arity mismatch.
    pub fn node(op: M::Op, inputs: Vec<SubstExpr<M>>) -> Self {
        assert_eq!(
            op.arity(),
            inputs.len(),
            "operator {} declares arity {} but got {} inputs",
            op.name(),
            op.arity(),
            inputs.len()
        );
        SubstExpr::Node { op, inputs }
    }

    /// Build a group reference.
    pub fn group(g: GroupId) -> Self {
        SubstExpr::Group(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ToyModel, ToyOp};

    type Tree = ExprTree<ToyModel>;

    fn join(l: Tree, r: Tree) -> Tree {
        Tree::new(ToyOp::Join, vec![l, r])
    }

    fn get(name: &str) -> Tree {
        Tree::leaf(ToyOp::Get(name.into()))
    }

    #[test]
    fn tree_shape_metrics() {
        let t = join(join(get("a"), get("b")), get("c"));
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.display(), "join(join(get, get), get)");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = Tree::new(ToyOp::Join, vec![get("a")]);
    }
}
