//! A fast, non-cryptographic hasher for the memo's internal tables.
//!
//! The search engine's hot loops are dominated by hash-table traffic:
//! expression duplicate detection on every rule product, winner-table
//! probes on every goal entry, and goal interning. `std`'s default
//! SipHash is DoS-resistant but costs tens of nanoseconds per key; the
//! memo hashes only values it created itself (operator structures, dense
//! integer ids), so collision-flooding attacks do not apply and a
//! multiply–xor hash in the style of the Fowler–Noll–Vo / rustc "Fx"
//! family is both safe and several times faster.
//!
//! The implementation is self-contained (the build is offline; no
//! external hashing crate), deterministic across runs and platforms, and
//! deliberately *not* seeded: memo contents must not depend on process
//! randomness, or the differential serial-vs-parallel tests could not
//! demand bit-identical statistics.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the 64-bit Fibonacci hashing constant
/// (`2^64 / golden_ratio`), the same constant rustc's hasher uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher: rotate, xor, multiply per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn byte_tails_are_hashed() {
        // Chunked `write` must not ignore the non-multiple-of-8 tail.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
