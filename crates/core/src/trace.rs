//! Optimization tracing.
//!
//! A [`Tracer`] receives structured events as the search runs; the default
//! [`NullTracer`] compiles to nothing. [`CollectingTracer`] records events
//! for tests, debugging, and `EXPLAIN`-style tooling.

use std::cell::RefCell;

use crate::ids::{ExprId, GroupId};

/// One search event. Payloads are pre-rendered strings so the event type
/// stays independent of the model's associated types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transformation rule fired on an expression.
    RuleFired {
        /// Rule name.
        rule: &'static str,
        /// The matched expression.
        expr: ExprId,
    },
    /// Optimization of a goal began.
    GoalBegin {
        /// The group being optimized.
        group: GroupId,
        /// Rendered required physical properties.
        required: String,
    },
    /// Optimization of a goal finished.
    GoalEnd {
        /// The group that was optimized.
        group: GroupId,
        /// Rendered outcome (winning algorithm + cost, or failure).
        outcome: String,
    },
    /// An algorithm or enforcer move was costed.
    MoveCosted {
        /// The group the move applies to.
        group: GroupId,
        /// Rendered move description.
        description: String,
    },
}

/// Receiver of search events.
pub trait Tracer {
    /// Called once per event, in search order.
    fn event(&self, e: TraceEvent);
}

/// A tracer that discards everything (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn event(&self, _e: TraceEvent) {}
}

/// A tracer that collects every event in memory.
#[derive(Debug, Default)]
pub struct CollectingTracer {
    events: RefCell<Vec<TraceEvent>>,
}

impl CollectingTracer {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the collected events, leaving the collector empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.borrow_mut())
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Tracer for CollectingTracer {
    fn event(&self, e: TraceEvent) {
        self.events.borrow_mut().push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_tracer_accumulates() {
        let t = CollectingTracer::new();
        assert!(t.is_empty());
        t.event(TraceEvent::RuleFired {
            rule: "join_commute",
            expr: ExprId::from_index(0),
        });
        t.event(TraceEvent::GoalBegin {
            group: GroupId::from_index(1),
            required: "any".into(),
        });
        assert_eq!(t.len(), 2);
        let events = t.take();
        assert_eq!(events.len(), 2);
        assert!(t.is_empty());
        assert!(matches!(
            events[0],
            TraceEvent::RuleFired {
                rule: "join_commute",
                ..
            }
        ));
    }
}
