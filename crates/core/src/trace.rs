//! Optimization tracing: events, spans, and aggregated metrics.
//!
//! A [`Tracer`] receives structured events as the search runs; the default
//! [`NullTracer`] compiles to nothing (the engine checks
//! [`Tracer::enabled`] before rendering event payloads, so a disabled
//! tracer costs one virtual call per site and no formatting).
//! [`CollectingTracer`] records events for tests, debugging, and
//! `EXPLAIN`-style tooling; [`MetricsTracer`] aggregates per-group counters
//! and a goal-latency histogram instead of storing every event.
//!
//! The event stream is *hierarchical*: every [`TraceEvent::GoalBegin`] is
//! eventually matched by a [`TraceEvent::GoalEnd`] for the same group, and
//! events emitted between the two belong to that goal. [`build_span_tree`]
//! reconstructs the goal recursion as a [`SpanTree`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::ids::{ExprId, GroupId};

/// Which winner-table entry answered a goal without search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoHitKind {
    /// An optimal plan was found in the winner table and admitted by the
    /// cost limit.
    Winner,
    /// The lookup proved failure: either a memoized failure covering the
    /// current limit, or an optimal plan more expensive than the limit.
    Failure,
}

/// One search event. Payloads are pre-rendered strings so the event type
/// stays independent of the model's associated types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transformation rule fired on an expression.
    RuleFired {
        /// Rule name.
        rule: &'static str,
        /// The matched expression.
        expr: ExprId,
        /// Substitute expressions the firing produced.
        substitutes: u64,
    },
    /// Optimization of a goal began. Opens a span; every event until the
    /// matching [`TraceEvent::GoalEnd`] for the same group belongs to it.
    GoalBegin {
        /// The group being optimized.
        group: GroupId,
        /// Rendered required physical properties.
        required: String,
    },
    /// Optimization of a goal finished. Closes the span opened by the
    /// matching [`TraceEvent::GoalBegin`].
    GoalEnd {
        /// The group that was optimized.
        group: GroupId,
        /// Rendered outcome (winning algorithm + cost, or failure).
        outcome: String,
        /// Wall-clock time spent inside this goal, including its input
        /// goals (inclusive time).
        elapsed: Duration,
        /// Moves actually pursued for this goal (after promise ordering
        /// and any move limit).
        moves: u64,
    },
    /// An algorithm or enforcer move was costed.
    MoveCosted {
        /// The group the move applies to.
        group: GroupId,
        /// Rendered move description.
        description: String,
    },
    /// A move was abandoned by branch-and-bound pruning.
    MovePruned {
        /// The group the move applied to.
        group: GroupId,
        /// Rendered reason (which move, and what crossed the limit).
        reason: String,
    },
    /// A move was skipped because its delivered properties satisfied the
    /// excluding property vector (redundant below an enforcer).
    MoveExcluded {
        /// The group the move applied to.
        group: GroupId,
        /// Rendered reason (which properties were already enforced).
        reason: String,
    },
    /// A goal was answered from the winner table without search.
    MemoHit {
        /// The group that was looked up.
        group: GroupId,
        /// Whether the hit produced a plan or a proven failure.
        kind: MemoHitKind,
    },
    /// The search budget tripped; from here on the engine completes
    /// in-flight goals greedily (first feasible move, promise order).
    BudgetTripped {
        /// Which budget axis tripped (`deadline`, `expr-limit`,
        /// `group-limit`, `goal-limit`, or `cancelled`).
        reason: &'static str,
    },
    /// The cross-query plan cache was consulted for a query shape. Emitted
    /// by the serving layer (not the search engine), before any
    /// optimization work: a `hit` outcome means `find_best_plan` was
    /// skipped entirely.
    PlanCacheLookup {
        /// The canonical shape key that was probed.
        shape: u64,
        /// `hit`, `miss`, `invalidated` (epoch/drift forced
        /// re-optimization), or `bypass` (cache disabled).
        outcome: &'static str,
    },
    /// One morsel-driven parallel phase finished executing. Emitted by the
    /// execution layer (not the search engine) after a `gather(n)` region
    /// drains, summarizing how work was distributed across its workers.
    MorselPhase {
        /// Worker threads the phase ran on.
        workers: u32,
        /// Morsels dispatched across all of the phase's pipelines.
        morsels: u64,
        /// Morsels a worker stole from another worker's local queue.
        steals: u64,
    },
    /// Observed selectivities from one executed plan were merged into the
    /// catalog's selectivity memory. Emitted by the execution layer after
    /// a feedback-enabled prepared execution completes.
    FeedbackApplied {
        /// Selectivity observations harvested from this execution.
        observations: u64,
        /// Whether the merge moved the memory materially — in which case
        /// the stats epoch was bumped so cached plans re-justify
        /// themselves under the observed statistics.
        epoch_bumped: bool,
    },
}

impl TraceEvent {
    /// The group this event concerns, if any (rule firings are keyed by
    /// expression, not group).
    pub fn group(&self) -> Option<GroupId> {
        match self {
            TraceEvent::RuleFired { .. }
            | TraceEvent::BudgetTripped { .. }
            | TraceEvent::PlanCacheLookup { .. }
            | TraceEvent::MorselPhase { .. }
            | TraceEvent::FeedbackApplied { .. } => None,
            TraceEvent::GoalBegin { group, .. }
            | TraceEvent::GoalEnd { group, .. }
            | TraceEvent::MoveCosted { group, .. }
            | TraceEvent::MovePruned { group, .. }
            | TraceEvent::MoveExcluded { group, .. }
            | TraceEvent::MemoHit { group, .. } => Some(*group),
        }
    }
}

/// Receiver of search events.
pub trait Tracer {
    /// Called once per event, in search order.
    fn event(&self, e: TraceEvent);

    /// Whether this tracer wants events at all. The engine checks this
    /// before rendering event payloads (`format!` of properties, costs,
    /// move descriptions), so disabled tracers — notably [`NullTracer`] —
    /// keep the hot path free of formatting cost.
    fn enabled(&self) -> bool {
        true
    }
}

/// A tracer that discards everything (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn event(&self, _e: TraceEvent) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

// Reference-counted tracers forward to their target, so a caller can keep
// a handle for reading results after handing the optimizer a boxed clone.
impl<T: Tracer + ?Sized> Tracer for std::rc::Rc<T> {
    fn event(&self, e: TraceEvent) {
        (**self).event(e);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

impl<T: Tracer + ?Sized> Tracer for std::sync::Arc<T> {
    fn event(&self, e: TraceEvent) {
        (**self).event(e);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// A tracer that collects every event in memory.
#[derive(Debug, Default)]
pub struct CollectingTracer {
    events: RefCell<Vec<TraceEvent>>,
}

impl CollectingTracer {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the collected events, leaving the collector empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.borrow_mut())
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Tracer for CollectingTracer {
    fn event(&self, e: TraceEvent) {
        self.events.borrow_mut().push(e);
    }
}

/// One optimization goal reconstructed from the event stream: the slice of
/// search between a [`TraceEvent::GoalBegin`] and its matching
/// [`TraceEvent::GoalEnd`], with the input goals it recursed into as
/// children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The group this goal optimized.
    pub group: GroupId,
    /// Rendered required physical properties.
    pub required: String,
    /// Rendered outcome, or empty if the trace ended before the goal
    /// closed (e.g. a truncated event stream).
    pub outcome: String,
    /// Inclusive wall-clock time (this goal plus its children).
    pub elapsed: Duration,
    /// Moves pursued by this goal itself.
    pub moves: u64,
    /// Non-goal events that occurred directly inside this goal (moves
    /// costed/pruned/excluded, memo hits of *lookups it made* are
    /// attributed to the child span when one opened).
    pub events: Vec<TraceEvent>,
    /// Input goals this goal optimized, in pursuit order.
    pub children: Vec<Span>,
}

impl Span {
    /// Number of spans in this subtree, including this one.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Span::size).sum::<usize>()
    }

    /// Depth of the subtree rooted here (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Span::depth).max().unwrap_or(0)
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        writeln!(
            f,
            "{:indent$}goal {:?} require {} -> {} ({} moves, {:?})",
            "",
            self.group,
            self.required,
            if self.outcome.is_empty() {
                "<unclosed>"
            } else {
                &self.outcome
            },
            self.moves,
            self.elapsed,
            indent = indent
        )?;
        for child in &self.children {
            child.render(f, indent + 2)?;
        }
        Ok(())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// The goal recursion reconstructed from a flat event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level goals, in order. A single `find_best_plan` call yields
    /// one root per top-level goal request.
    pub roots: Vec<Span>,
    /// Events that occurred outside any goal — exploration-phase rule
    /// firings, chiefly.
    pub toplevel: Vec<TraceEvent>,
}

impl SpanTree {
    /// Total number of spans across all roots.
    pub fn size(&self) -> usize {
        self.roots.iter().map(Span::size).sum()
    }

    /// Maximum goal-recursion depth across all roots.
    pub fn depth(&self) -> usize {
        self.roots.iter().map(Span::depth).max().unwrap_or(0)
    }
}

/// Reconstruct the goal recursion from a flat event stream, pairing each
/// [`TraceEvent::GoalBegin`] with its matching [`TraceEvent::GoalEnd`].
/// Unclosed goals (truncated streams) are closed implicitly at the end
/// with an empty outcome.
pub fn build_span_tree(events: &[TraceEvent]) -> SpanTree {
    let mut tree = SpanTree::default();
    // Stack of open spans; the deepest open span is last.
    let mut stack: Vec<Span> = Vec::new();

    fn close_into(tree: &mut SpanTree, stack: &mut [Span], span: Span) {
        match stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => tree.roots.push(span),
        }
    }

    for e in events {
        match e {
            TraceEvent::GoalBegin { group, required } => {
                stack.push(Span {
                    group: *group,
                    required: required.clone(),
                    outcome: String::new(),
                    elapsed: Duration::ZERO,
                    moves: 0,
                    events: Vec::new(),
                    children: Vec::new(),
                });
            }
            TraceEvent::GoalEnd {
                group,
                outcome,
                elapsed,
                moves,
            } => {
                // Close the innermost open span for this group; tolerate
                // malformed streams by popping intermediates unclosed.
                while let Some(mut span) = stack.pop() {
                    let matches = span.group == *group;
                    if matches {
                        span.outcome = outcome.clone();
                        span.elapsed = *elapsed;
                        span.moves = *moves;
                    }
                    close_into(&mut tree, &mut stack, span);
                    if matches {
                        break;
                    }
                }
            }
            other => match stack.last_mut() {
                Some(span) => span.events.push(other.clone()),
                None => tree.toplevel.push(other.clone()),
            },
        }
    }
    while let Some(span) = stack.pop() {
        close_into(&mut tree, &mut stack, span);
    }
    tree
}

/// Fixed-bucket log₂ histogram of goal latencies. Bucket `i` counts
/// durations in `[2^i, 2^(i+1))` microseconds, with bucket 0 additionally
/// holding sub-microsecond goals and the last bucket holding everything
/// longer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurationHistogram {
    buckets: [u64; Self::BUCKETS],
    total: Duration,
    count: u64,
}

impl DurationHistogram {
    /// Number of buckets (covers 1 µs .. ~2 s in powers of two).
    pub const BUCKETS: usize = 22;

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = if us == 0 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.total += d;
        self.count += 1;
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Counters aggregated per group (and in total) by [`MetricsTracer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoalMetrics {
    /// Goals actually optimized (searches entered).
    pub goals: u64,
    /// Goals answered from the winner table.
    pub memo_hits: u64,
    /// Rule firings attributed to this group's expressions (totals only;
    /// the per-group map does not track firings, which are keyed by
    /// expression).
    pub rules_fired: u64,
    /// Substitute expressions produced by those firings.
    pub substitutes: u64,
    /// Moves costed (algorithms + enforcers).
    pub moves_costed: u64,
    /// Moves abandoned by branch-and-bound pruning.
    pub moves_pruned: u64,
    /// Moves skipped via the excluding property vector.
    pub moves_excluded: u64,
    /// Inclusive wall-clock time across this group's goals.
    pub elapsed: Duration,
}

/// Aggregated view of a finished [`MetricsTracer`] run.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-group counters, keyed by group.
    pub per_group: BTreeMap<GroupId, GoalMetrics>,
    /// Counters summed over all groups (plus expression-keyed rule
    /// firings, which have no group attribution).
    pub totals: GoalMetrics,
    /// Histogram of per-goal inclusive latencies.
    pub goal_latency: DurationHistogram,
    /// Deepest goal nesting observed.
    pub max_depth: usize,
}

impl MetricsSnapshot {
    /// Render a compact human-readable report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let t = &self.totals;
        let _ = writeln!(
            out,
            "goals: {} optimized, {} memo hits, max depth {}",
            t.goals, t.memo_hits, self.max_depth
        );
        let _ = writeln!(
            out,
            "rules: {} fired, {} substitutes",
            t.rules_fired, t.substitutes
        );
        let _ = writeln!(
            out,
            "moves: {} costed, {} pruned, {} excluded",
            t.moves_costed, t.moves_pruned, t.moves_excluded
        );
        let _ = writeln!(
            out,
            "goal latency: {} samples, mean {:?}, total {:?}",
            self.goal_latency.count(),
            self.goal_latency.mean(),
            self.goal_latency.total()
        );
        let mut groups: Vec<_> = self.per_group.iter().collect();
        groups.sort_by(|a, b| b.1.elapsed.cmp(&a.1.elapsed).then(a.0.cmp(b.0)));
        for (g, m) in groups.into_iter().take(10) {
            let _ = writeln!(
                out,
                "  {:?}: {} goals, {} hits, {} moves ({} pruned, {} excluded), {:?}",
                g,
                m.goals,
                m.memo_hits,
                m.moves_costed,
                m.moves_pruned,
                m.moves_excluded,
                m.elapsed
            );
        }
        out
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    per_group: BTreeMap<GroupId, GoalMetrics>,
    totals: GoalMetrics,
    goal_latency: DurationHistogram,
    depth: usize,
    max_depth: usize,
}

/// A tracer that aggregates counters instead of storing events: per-group
/// goal/move/prune counts, total rule firings, a histogram of per-goal
/// latencies, and the deepest goal nesting. Suitable for long searches
/// where a [`CollectingTracer`] would retain millions of events.
#[derive(Debug, Default)]
pub struct MetricsTracer {
    inner: RefCell<MetricsInner>,
}

impl MetricsTracer {
    /// Create an empty metrics aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the aggregated metrics so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            per_group: inner.per_group.clone(),
            totals: inner.totals.clone(),
            goal_latency: inner.goal_latency.clone(),
            max_depth: inner.max_depth,
        }
    }
}

impl Tracer for MetricsTracer {
    fn event(&self, e: TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        match &e {
            TraceEvent::RuleFired { substitutes, .. } => {
                inner.totals.rules_fired += 1;
                inner.totals.substitutes += substitutes;
            }
            TraceEvent::GoalBegin { .. } => {
                inner.depth += 1;
                inner.max_depth = inner.max_depth.max(inner.depth);
            }
            TraceEvent::GoalEnd { group, elapsed, .. } => {
                inner.depth = inner.depth.saturating_sub(1);
                inner.totals.goals += 1;
                inner.totals.elapsed += *elapsed;
                inner.goal_latency.record(*elapsed);
                let m = inner.per_group.entry(*group).or_default();
                m.goals += 1;
                m.elapsed += *elapsed;
            }
            TraceEvent::MoveCosted { group, .. } => {
                inner.totals.moves_costed += 1;
                inner.per_group.entry(*group).or_default().moves_costed += 1;
            }
            TraceEvent::MovePruned { group, .. } => {
                inner.totals.moves_pruned += 1;
                inner.per_group.entry(*group).or_default().moves_pruned += 1;
            }
            TraceEvent::MoveExcluded { group, .. } => {
                inner.totals.moves_excluded += 1;
                inner.per_group.entry(*group).or_default().moves_excluded += 1;
            }
            TraceEvent::MemoHit { group, .. } => {
                inner.totals.memo_hits += 1;
                inner.per_group.entry(*group).or_default().memo_hits += 1;
            }
            // Budget trips are not per-group counters (SearchStats carries
            // the outcome), cache lookups precede any search, and morsel
            // phases and feedback merges are execution-time signals.
            TraceEvent::BudgetTripped { .. }
            | TraceEvent::PlanCacheLookup { .. }
            | TraceEvent::MorselPhase { .. }
            | TraceEvent::FeedbackApplied { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupId {
        GroupId::from_index(i as usize)
    }

    #[test]
    fn collecting_tracer_accumulates() {
        let t = CollectingTracer::new();
        assert!(t.is_empty());
        assert!(t.enabled());
        t.event(TraceEvent::RuleFired {
            rule: "join_commute",
            expr: ExprId::from_index(0),
            substitutes: 1,
        });
        t.event(TraceEvent::GoalBegin {
            group: g(1),
            required: "any".into(),
        });
        assert_eq!(t.len(), 2);
        let events = t.take();
        assert_eq!(events.len(), 2);
        assert!(t.is_empty());
        assert!(matches!(
            events[0],
            TraceEvent::RuleFired {
                rule: "join_commute",
                ..
            }
        ));
    }

    #[test]
    fn null_tracer_is_disabled() {
        assert!(!NullTracer.enabled());
    }

    #[test]
    fn span_tree_reconstructs_nesting() {
        let events = vec![
            TraceEvent::RuleFired {
                rule: "r",
                expr: ExprId::from_index(0),
                substitutes: 2,
            },
            TraceEvent::GoalBegin {
                group: g(0),
                required: "sorted".into(),
            },
            TraceEvent::MoveCosted {
                group: g(0),
                description: "join".into(),
            },
            TraceEvent::GoalBegin {
                group: g(1),
                required: "any".into(),
            },
            TraceEvent::GoalEnd {
                group: g(1),
                outcome: "optimal cost 1.0".into(),
                elapsed: Duration::from_micros(5),
                moves: 1,
            },
            TraceEvent::GoalEnd {
                group: g(0),
                outcome: "optimal cost 3.0".into(),
                elapsed: Duration::from_micros(20),
                moves: 2,
            },
        ];
        let tree = build_span_tree(&events);
        assert_eq!(tree.toplevel.len(), 1);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.size(), 2);
        assert_eq!(tree.depth(), 2);
        let root = &tree.roots[0];
        assert_eq!(root.group, g(0));
        assert_eq!(root.moves, 2);
        assert_eq!(root.events.len(), 1);
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].group, g(1));
        assert!(root.to_string().contains("goal"));
    }

    #[test]
    fn span_tree_tolerates_unclosed_goals() {
        let events = vec![
            TraceEvent::GoalBegin {
                group: g(0),
                required: "any".into(),
            },
            TraceEvent::GoalBegin {
                group: g(1),
                required: "any".into(),
            },
        ];
        let tree = build_span_tree(&events);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].children.len(), 1);
        assert!(tree.roots[0].outcome.is_empty());
    }

    #[test]
    fn duration_histogram_buckets() {
        let mut h = DurationHistogram::default();
        h.record(Duration::from_nanos(100)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 0 (2^0)
        h.record(Duration::from_micros(9)); // bucket 3 (8..16)
        h.record(Duration::from_secs(60)); // clamped to last bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[DurationHistogram::BUCKETS - 1], 1);
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn metrics_tracer_aggregates() {
        let t = MetricsTracer::new();
        t.event(TraceEvent::RuleFired {
            rule: "r",
            expr: ExprId::from_index(0),
            substitutes: 3,
        });
        t.event(TraceEvent::GoalBegin {
            group: g(0),
            required: "any".into(),
        });
        t.event(TraceEvent::GoalBegin {
            group: g(1),
            required: "any".into(),
        });
        t.event(TraceEvent::MoveCosted {
            group: g(1),
            description: "scan".into(),
        });
        t.event(TraceEvent::MovePruned {
            group: g(1),
            reason: "over limit".into(),
        });
        t.event(TraceEvent::GoalEnd {
            group: g(1),
            outcome: "optimal".into(),
            elapsed: Duration::from_micros(4),
            moves: 2,
        });
        t.event(TraceEvent::MemoHit {
            group: g(1),
            kind: MemoHitKind::Winner,
        });
        t.event(TraceEvent::GoalEnd {
            group: g(0),
            outcome: "optimal".into(),
            elapsed: Duration::from_micros(10),
            moves: 1,
        });
        let snap = t.snapshot();
        assert_eq!(snap.totals.goals, 2);
        assert_eq!(snap.totals.rules_fired, 1);
        assert_eq!(snap.totals.substitutes, 3);
        assert_eq!(snap.totals.moves_costed, 1);
        assert_eq!(snap.totals.moves_pruned, 1);
        assert_eq!(snap.totals.memo_hits, 1);
        assert_eq!(snap.max_depth, 2);
        assert_eq!(snap.goal_latency.count(), 2);
        let g1 = &snap.per_group[&g(1)];
        assert_eq!(g1.goals, 1);
        assert_eq!(g1.moves_costed, 1);
        assert_eq!(g1.memo_hits, 1);
        let report = snap.report();
        assert!(report.contains("goals: 2 optimized"));
        assert!(report.contains("moves: 1 costed, 1 pruned"));
    }
}
