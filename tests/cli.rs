//! Integration test of the `volcano` CLI binary: script in, plans and
//! rows out.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_volcano"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn volcano CLI");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn full_session() {
    let (stdout, stderr, ok) = run_script(
        "CREATE TABLE emp (id INT, dept INT DISTINCT 10) CARD 500;\
         CREATE TABLE dept (id INT DISTINCT 10) CARD 10;\
         GENERATE SEED 1;\
         EXPLAIN SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id;\
         SELECT dept, COUNT(*) FROM emp GROUP BY dept;",
    );
    assert!(ok, "CLI failed: {stderr}");
    assert!(stdout.contains("created table emp"), "{stdout}");
    assert!(stdout.contains("physical plan"), "{stdout}");
    assert!(
        stdout.contains("hybrid_hash_join") || stdout.contains("merge_join"),
        "{stdout}"
    );
    assert!(stdout.contains("(10 rows)"), "{stdout}");
}

#[test]
fn order_by_output_is_sorted() {
    let (stdout, _, ok) = run_script(
        "CREATE TABLE t (x INT DISTINCT 50) CARD 100;\
         GENERATE SEED 2;\
         SELECT x FROM t WHERE x < 10 ORDER BY x;",
    );
    assert!(ok);
    let values: Vec<i64> = stdout
        .lines()
        .filter(|l| !l.starts_with('(') && !l.starts_with("generated") && !l.starts_with("created"))
        .filter_map(|l| l.trim().parse().ok())
        .collect();
    assert!(!values.is_empty());
    for w in values.windows(2) {
        assert!(w[0] <= w[1], "output not sorted: {values:?}");
    }
}

#[test]
fn parse_errors_exit_nonzero() {
    let (_, stderr, ok) = run_script("SELECT FROM FROM;");
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn semantic_errors_exit_nonzero() {
    let (_, stderr, ok) =
        run_script("CREATE TABLE t (x INT) CARD 10; GENERATE; SELECT ghost FROM t;");
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn indexed_column_enables_sort_free_order_by() {
    let (stdout, stderr, ok) = run_script(
        "CREATE TABLE t (k INT DISTINCT 20 INDEXED, v INT) CARD 200;\
         GENERATE SEED 1;\
         EXPLAIN SELECT * FROM t ORDER BY k;",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("index_scan"), "{stdout}");
    assert!(!stdout.contains("sort["), "no sort needed: {stdout}");
}

#[test]
fn explain_analyze_reports_actual_rows() {
    let (stdout, stderr, ok) = run_script(
        "CREATE TABLE t (x INT DISTINCT 10) CARD 100;\
         GENERATE SEED 4;\
         EXPLAIN ANALYZE SELECT * FROM t WHERE x < 5;",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- analyze"), "{stdout}");
    assert!(stdout.contains("actual"), "{stdout}");
}

#[test]
fn budget_degrades_search_but_query_still_runs() {
    // A tiny goal budget on a 5-way join chain trips mid-search; the
    // shell reports the degraded outcome and still returns rows.
    let (stdout, stderr, ok) = run_script(
        "CREATE TABLE t0 (a INT DISTINCT 5, b INT DISTINCT 5) CARD 20;\
         CREATE TABLE t1 (a INT DISTINCT 5, b INT DISTINCT 5) CARD 20;\
         CREATE TABLE t2 (a INT DISTINCT 5, b INT DISTINCT 5) CARD 20;\
         CREATE TABLE t3 (a INT DISTINCT 5, b INT DISTINCT 5) CARD 20;\
         CREATE TABLE t4 (a INT DISTINCT 5, b INT DISTINCT 5) CARD 20;\
         GENERATE SEED 3;\
         SET BUDGET GOALS 5;\
         EXPLAIN SELECT COUNT(*) FROM t0, t1, t2, t3, t4 \
           WHERE t0.b = t1.a AND t1.b = t2.a AND t2.b = t3.a AND t3.b = t4.a;\
         SELECT COUNT(*) FROM t0, t1, t2, t3, t4 \
           WHERE t0.b = t1.a AND t1.b = t2.a AND t2.b = t3.a AND t3.b = t4.a;",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("budget: max 5 goals"), "{stdout}");
    assert!(stdout.contains("degraded (goal-limit)"), "{stdout}");
    assert!(
        stdout.contains("search budget tripped"),
        "query path must surface degradation: {stdout}"
    );
    assert!(stdout.contains("(1 rows)"), "{stdout}");
}

#[test]
fn budget_off_restores_exhaustive_search() {
    let (stdout, stderr, ok) = run_script(
        "CREATE TABLE t0 (a INT DISTINCT 5, b INT DISTINCT 5) CARD 20;\
         CREATE TABLE t1 (a INT DISTINCT 5, b INT DISTINCT 5) CARD 20;\
         GENERATE SEED 3;\
         SET BUDGET GOALS 1;\
         SET BUDGET OFF;\
         EXPLAIN SELECT COUNT(*) FROM t0, t1 WHERE t0.b = t1.a;",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("budget off"), "{stdout}");
    assert!(stdout.contains("exhaustive"), "{stdout}");
    assert!(!stdout.contains("degraded"), "{stdout}");
}

#[test]
fn cost_limit_catches_unreasonable_queries() {
    // §3: "the user interface may permit users to set their own limits
    // to 'catch' unreasonable queries".
    let (_, stderr, ok) = run_script(
        "CREATE TABLE a (x INT DISTINCT 5) CARD 50000;\
         CREATE TABLE b (x INT DISTINCT 5) CARD 50000;\
         GENERATE SEED 1;\
         SET COST LIMIT 1;\
         SELECT COUNT(*) FROM a, b WHERE a.x = b.x;",
    );
    assert!(!ok);
    assert!(stderr.contains("cost limit"), "{stderr}");

    // Turning the limit off lets the same query plan again (we only
    // EXPLAIN to keep the test fast — execution of the cross-heavy join
    // is the expensive part).
    let (stdout, stderr2, ok2) = run_script(
        "CREATE TABLE a (x INT DISTINCT 5) CARD 50000;\
         CREATE TABLE b (x INT DISTINCT 5) CARD 50000;\
         GENERATE SEED 1;\
         SET COST LIMIT 1;\
         SET COST LIMIT OFF;\
         EXPLAIN SELECT COUNT(*) FROM a, b WHERE a.x = b.x;",
    );
    assert!(ok2, "{stderr2}");
    assert!(stdout.contains("cost limit off"), "{stdout}");
}
