//! Cross-crate integration: SQL text through parser, optimizer, and
//! execution engine, validated against the naive evaluator.

use volcano::core::{PhysicalProps, SearchOptions};
use volcano::exec::{assert_same_rows, evaluate_logical, Database};
use volcano::rel::{Catalog, ColumnDef, RelModel, RelOptimizer, RelProps, Value};
use volcano::sql::plan_query;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        300.0,
        vec![
            ColumnDef::int("id", 300.0),
            ColumnDef::int("dept", 12.0),
            ColumnDef::int("salary", 40.0),
        ],
    );
    c.add_table(
        "dept",
        12.0,
        vec![ColumnDef::int("id", 12.0), ColumnDef::int("region", 4.0)],
    );
    c.add_table(
        "region",
        4.0,
        vec![ColumnDef::int("id", 4.0), ColumnDef::str("name", 8, 4.0)],
    );
    c
}

/// Run a SQL query through the whole stack; return (rows, oracle rows
/// aligned to the same schema).
fn run_sql(sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut cat = catalog();
    let query = plan_query(sql, &mut cat).expect("valid SQL");
    let db = Database::in_memory(cat.clone());
    db.generate(99);
    let model = RelModel::with_defaults(cat);
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query.expr);
    let goal = RelProps::sorted(query.order_by.clone());
    let plan = opt.find_best_plan(root, goal.clone(), None).expect("plan");
    assert!(plan.delivered.satisfies(&goal));

    let compiled = volcano::exec::compile(&db, &plan);
    let phys_schema = compiled.schema.clone();
    let mut op = compiled.operator;
    let raw = volcano::exec::collect(op.as_mut());
    let oracle = evaluate_logical(&db, &query.expr);
    let positions: Vec<usize> = oracle
        .schema
        .iter()
        .map(|a| phys_schema.iter().position(|b| b == a).expect("attr"))
        .collect();
    let aligned: Vec<Vec<Value>> = raw
        .into_iter()
        .map(|t| positions.iter().map(|&i| t[i].clone()).collect())
        .collect();
    (aligned, oracle.rows)
}

#[test]
fn select_project_order() {
    let (got, want) = run_sql("SELECT id, salary FROM emp WHERE salary < 20 ORDER BY salary");
    assert!(!got.is_empty());
    assert_same_rows(got, want);
}

#[test]
fn three_way_join_through_sql() {
    let (got, want) = run_sql(
        "SELECT emp.id, region.name FROM emp, dept, region \
         WHERE emp.dept = dept.id AND dept.region = region.id AND emp.salary >= 5",
    );
    assert!(!got.is_empty());
    assert_same_rows(got, want);
}

#[test]
fn aggregation_through_sql() {
    let (got, want) =
        run_sql("SELECT dept, COUNT(*), MIN(salary), MAX(salary) FROM emp GROUP BY dept");
    assert_eq!(got.len(), 12);
    assert_same_rows(got, want);
}

#[test]
fn set_op_through_sql() {
    let (got, want) = run_sql(
        "SELECT dept FROM emp WHERE salary < 10 \
         INTERSECT SELECT dept FROM emp WHERE salary >= 10",
    );
    assert_same_rows(got, want);
}

#[test]
fn order_by_is_really_sorted() {
    let (got, _) = run_sql("SELECT id, salary FROM emp ORDER BY salary, id");
    for w in got.windows(2) {
        assert!(
            (&w[0][1], &w[0][0]) <= (&w[1][1], &w[1][0]),
            "violated ORDER BY salary, id"
        );
    }
}

#[test]
fn sql_errors_surface() {
    let mut cat = catalog();
    assert!(plan_query("SELECT * FROM ghost", &mut cat).is_err());
    assert!(plan_query("SELECT nope FROM emp", &mut cat).is_err());
    assert!(plan_query("SELECT FROM FROM", &mut cat).is_err());
}
