//! Differential tests for the search-engine hot-path machinery.
//!
//! The operator-indexed rule dispatch and the goal interner are pure
//! engineering: with either (or both) force-disabled through their
//! [`SearchOptions`] escape hatches, the optimizer must produce *exactly*
//! the same plans, costs, and search statistics — on the toy model, on
//! the fig4 relational workload, on the SQL golden-plan queries, and
//! under both serial and parallel exploration. A completeness property
//! test additionally verifies the soundness contract of the declared
//! discriminant sets for both shipped models.

use proptest::prelude::*;
use volcano_bench::workload::{generate_query, WorkloadConfig};
use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
use volcano_core::{ExprTree, Model, Optimizer, PhysicalProps, SearchOptions, SearchStats};
use volcano_rel::{
    explain_plan, Catalog, ColumnDef, RelModel, RelModelOptions, RelOptimizer, RelProps,
};
use volcano_sql::plan_query;

/// All four {rule_index, goal_interning} ablation configurations. The
/// first entry is the production default; the rest must be observationally
/// identical to it.
fn configs() -> [SearchOptions; 4] {
    let mk = |rule_index: bool, goal_interning: bool| SearchOptions {
        rule_index,
        goal_interning,
        ..SearchOptions::default()
    };
    [
        mk(true, true),
        mk(false, true),
        mk(true, false),
        mk(false, false),
    ]
}

// ---------------------------------------------------------------------
// Toy model.
// ---------------------------------------------------------------------

fn toy_chain(n: usize) -> (ToyModel, ExprTree<ToyModel>) {
    let tables: Vec<(String, u64)> = (0..n)
        .map(|i| (format!("t{i}"), 100 + 211 * i as u64))
        .collect();
    let refs: Vec<(&str, u64)> = tables.iter().map(|(s, c)| (s.as_str(), *c)).collect();
    let model = ToyModel::with_tables(&refs);
    let mut e = ExprTree::leaf(ToyOp::Get("t0".into()));
    for i in 1..n {
        e = ExprTree::new(
            ToyOp::Join,
            vec![e, ExprTree::leaf(ToyOp::Get(format!("t{i}")))],
        );
    }
    (model, e)
}

/// Optimize the toy chain under one configuration; return the observable
/// outcome (plan shape, cost, counters).
fn toy_outcome(
    n: usize,
    sorted: bool,
    opts: SearchOptions,
    parallel: bool,
) -> (String, f64, SearchStats) {
    let goal = if sorted {
        ToyProps::sorted()
    } else {
        ToyProps::any()
    };
    let (model, query) = toy_chain(n);
    let mut opt = Optimizer::new(&model, opts);
    let root = opt.insert_tree(&query);
    if parallel {
        opt.explore_parallel(2).unwrap();
    }
    let plan = opt.find_best_plan(root, goal, None).unwrap();
    (plan.compact(), plan.cost, opt.stats().clone())
}

#[test]
fn toy_ablations_are_observationally_identical() {
    for n in [3usize, 4, 5, 6] {
        for sorted in [false, true] {
            for parallel in [false, true] {
                let (bplan, bcost, bstats) = toy_outcome(n, sorted, configs()[0].clone(), parallel);
                for opts in &configs()[1..] {
                    let (plan, cost, stats) = toy_outcome(n, sorted, opts.clone(), parallel);
                    let tag = format!(
                        "n={n} sorted={sorted} parallel={parallel} \
                         rule_index={} goal_interning={}",
                        opts.rule_index, opts.goal_interning
                    );
                    assert_eq!(bplan, plan, "{tag}: plans diverged");
                    assert!((bcost - cost).abs() < 1e-12, "{tag}: costs diverged");
                    assert!(
                        bstats.counters_eq(&stats),
                        "{tag}: stats diverged\nbaseline: {bstats:?}\nablation: {stats:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Relational model: fig4 workload.
// ---------------------------------------------------------------------

/// Optimize one generated fig4 query; return the explained plan (which
/// embeds operator choices and costs), the plan cost, and the counters.
fn fig4_outcome(n: usize, seed: u64, opts: SearchOptions, parallel: bool) -> (String, SearchStats) {
    let q = generate_query(&WorkloadConfig::relations(n), seed);
    let model = RelModel::new(q.catalog.clone(), RelModelOptions::paper_fig4());
    let mut opt = RelOptimizer::new(&model, opts);
    let root = opt.insert_tree(&q.expr);
    if parallel {
        opt.explore_parallel(2).unwrap();
    }
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    (explain_plan(&q.catalog, &plan), opt.stats().clone())
}

#[test]
fn fig4_ablations_are_observationally_identical() {
    for n in [2usize, 3, 4, 5] {
        for seed in 0..3u64 {
            for parallel in [false, true] {
                let (bplan, bstats) = fig4_outcome(n, seed, configs()[0].clone(), parallel);
                for opts in &configs()[1..] {
                    let (plan, stats) = fig4_outcome(n, seed, opts.clone(), parallel);
                    let tag = format!(
                        "n={n} seed={seed} parallel={parallel} \
                         rule_index={} goal_interning={}",
                        opts.rule_index, opts.goal_interning
                    );
                    assert_eq!(bplan, plan, "{tag}: plans diverged");
                    assert!(
                        bstats.counters_eq(&stats),
                        "{tag}: stats diverged\nbaseline: {bstats:?}\nablation: {stats:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Relational model: SQL golden-plan queries (full default rule set,
// including selections, projections, set operations, and aggregation).
// ---------------------------------------------------------------------

fn sql_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        2000.0,
        vec![
            ColumnDef::int("id", 2000.0),
            ColumnDef::int("dept", 20.0),
            ColumnDef::int("salary", 100.0),
        ],
    );
    c.add_table(
        "dept",
        20.0,
        vec![ColumnDef::int("id", 20.0), ColumnDef::int("region", 4.0)],
    );
    c.add_table("region", 4.0, vec![ColumnDef::int("id", 4.0)]);
    c
}

const SQL_QUERIES: &[&str] = &[
    "SELECT emp.id FROM emp WHERE emp.salary < 50 ORDER BY emp.id",
    "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id",
    "SELECT emp.id FROM emp, dept, region \
     WHERE emp.dept = dept.id AND dept.region = region.id AND emp.salary < 50 \
     ORDER BY emp.id",
    "SELECT emp.dept, COUNT(*) FROM emp GROUP BY emp.dept ORDER BY emp.dept",
    "SELECT emp.dept FROM emp WHERE emp.salary < 50 UNION SELECT dept.id FROM dept",
];

fn sql_outcome(sql: &str, opts: SearchOptions) -> (String, SearchStats) {
    let mut catalog = sql_catalog();
    let q = plan_query(sql, &mut catalog).expect("query must parse");
    let model = RelModel::with_defaults(catalog.clone());
    let mut opt = RelOptimizer::new(&model, opts);
    let root = opt.insert_tree(&q.expr);
    let plan = opt
        .find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
        .expect("query must be satisfiable");
    (explain_plan(&catalog, &plan), opt.stats().clone())
}

#[test]
fn sql_golden_queries_ablations_are_observationally_identical() {
    for sql in SQL_QUERIES {
        let (bplan, bstats) = sql_outcome(sql, configs()[0].clone());
        for opts in &configs()[1..] {
            let (plan, stats) = sql_outcome(sql, opts.clone());
            let tag = format!(
                "{sql:?} rule_index={} goal_interning={}",
                opts.rule_index, opts.goal_interning
            );
            assert_eq!(bplan, plan, "{tag}: plans diverged");
            assert!(
                bstats.counters_eq(&stats),
                "{tag}: stats diverged\nbaseline: {bstats:?}\nablation: {stats:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// RuleIndex completeness: for any operator the index must offer every
// rule whose root matcher accepts it (the soundness contract of
// `OpMatcher::with_discriminants` — under-declared discriminants would
// silently lose plans).
// ---------------------------------------------------------------------

/// Assert the candidate lists for `op` cover every root-matching rule.
fn assert_index_complete<M: Model>(model: &M, op: &M::Op, tag: &str) {
    let opt = Optimizer::new(model, SearchOptions::default());
    let disc = model.op_discriminant(op);
    let tcands = opt.rule_index().transform_candidates(disc);
    for (i, rule) in model.transformations().iter().enumerate() {
        if rule.pattern().root_matches(op) {
            assert!(
                tcands.contains(&i),
                "{tag}: transformation {:?} matches {op:?} but is not indexed \
                 under discriminant {disc:?} (candidates {tcands:?})",
                rule.name()
            );
        }
    }
    let icands = opt.rule_index().impl_candidates(disc);
    for (i, rule) in model.implementations().iter().enumerate() {
        if rule.pattern().root_matches(op) {
            assert!(
                icands.contains(&i),
                "{tag}: implementation {:?} matches {op:?} but is not indexed \
                 under discriminant {disc:?} (candidates {icands:?})",
                rule.name()
            );
        }
    }
}

/// Every `RelOp` variant, with representative arguments drawn from a
/// planned query so predicates and specs reference real attributes.
fn rel_ops_universe() -> (RelModel, Vec<volcano_rel::RelOp>) {
    let mut catalog = sql_catalog();
    let mut ops = Vec::new();
    for sql in SQL_QUERIES {
        let q = plan_query(sql, &mut catalog).expect("query must parse");
        collect_ops(&q.expr, &mut ops);
    }
    let model = RelModel::with_defaults(catalog);
    (model, ops)
}

fn collect_ops(e: &volcano_rel::RelExpr, out: &mut Vec<volcano_rel::RelOp>) {
    out.push(e.op.clone());
    for i in &e.inputs {
        collect_ops(i, out);
    }
}

#[test]
fn rel_rule_index_is_complete_for_all_query_operators() {
    let (model, ops) = rel_ops_universe();
    // The SQL set exercises Get, Select, Project, Join, Union, and
    // Aggregate; add the remaining set operations by hand.
    let mut ops = ops;
    ops.push(volcano_rel::RelOp::Intersect);
    ops.push(volcano_rel::RelOp::Difference);
    for op in &ops {
        assert_index_complete(&model, op, "rel");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Toy-model completeness over randomly named scans and both
    /// structural operators.
    #[test]
    fn toy_rule_index_is_complete(table in "t[0-9]{1,2}", which in 0usize..3) {
        let (model, _) = toy_chain(3);
        let op = match which {
            0 => ToyOp::Get(table),
            1 => ToyOp::Select,
            _ => ToyOp::Join,
        };
        assert_index_complete(&model, &op, "toy");
    }
}
