//! Property-based invariant tests over randomly generated workloads:
//! the dynamic-programming and branch-and-bound guarantees the paper's
//! search algorithm rests on.

use proptest::prelude::*;
use volcano::core::cost::Cost;
use volcano::core::{PhysicalProps, SearchOptions};
use volcano::exodus::ExodusOptimizer;
use volcano::rel::{RelModel, RelModelOptions, RelOptimizer, RelPlan, RelProps};
use volcano_bench::{generate_query, WorkloadConfig};

fn optimize(query: &volcano_bench::GeneratedQuery, opts: SearchOptions) -> RelPlan {
    let model = RelModel::new(query.catalog.clone(), RelModelOptions::paper_fig4());
    let mut opt = RelOptimizer::new(&model, opts);
    let root = opt.insert_tree(&query.expr);
    opt.find_best_plan(root, RelProps::any(), None)
        .expect("fig4 workload always satisfiable")
}

/// Recompute a plan's total cost from its local costs; must equal the
/// reported cumulative cost.
fn recomputed_cost(plan: &RelPlan) -> f64 {
    plan.local_cost.total() + plan.inputs.iter().map(recomputed_cost).sum::<f64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plan cost bookkeeping is internally consistent.
    #[test]
    fn plan_costs_add_up(n in 2usize..6, seed in 0u64..1_000_000) {
        let q = generate_query(&WorkloadConfig::relations(n), seed);
        let plan = optimize(&q, SearchOptions::default());
        let recomputed = recomputed_cost(&plan);
        prop_assert!(
            (plan.cost.total() - recomputed).abs() <= 1e-6 * plan.cost.total().max(1.0),
            "reported {} vs recomputed {}", plan.cost.total(), recomputed
        );
    }

    /// Branch-and-bound pruning and failure memoization are pure
    /// optimizations: they never change the optimum.
    #[test]
    fn pruning_preserves_optimality(n in 2usize..6, seed in 0u64..1_000_000) {
        let q = generate_query(&WorkloadConfig::relations(n), seed);
        let with = optimize(&q, SearchOptions::default());
        let raw = SearchOptions {
            pruning: false,
            failure_memo: false,
            promise_ordering: false,
            ..SearchOptions::default()
        };
        let without = optimize(&q, raw);
        prop_assert!(
            (with.cost.total() - without.cost.total()).abs()
                <= 1e-6 * with.cost.total().max(1.0),
            "pruned {} vs exhaustive {}", with.cost.total(), without.cost.total()
        );
    }

    /// Every node of a chosen plan delivers properties satisfying what
    /// its parent demanded (spot-checked via merge-join inputs: their
    /// delivered sort must cover the join keys).
    #[test]
    fn merge_join_inputs_really_sorted(n in 2usize..6, seed in 0u64..1_000_000) {
        use volcano::rel::RelAlg;
        let q = generate_query(&WorkloadConfig::relations(n), seed);
        let plan = optimize(&q, SearchOptions::default());
        for node in plan.nodes() {
            if let RelAlg::MergeJoin(p) = &node.alg {
                let k = p.pairs().len();
                prop_assert!(node.inputs[0].delivered.sort.len() >= k);
                prop_assert!(node.inputs[1].delivered.sort.len() >= k);
            }
        }
    }

    /// The exhaustive, property-driven search never loses to the greedy
    /// forward-chaining baseline.
    #[test]
    fn volcano_never_loses_to_exodus(n in 2usize..6, seed in 0u64..1_000_000) {
        let q = generate_query(&WorkloadConfig::relations(n), seed);
        let vplan = optimize(&q, SearchOptions::default());
        let model = RelModel::new(q.catalog.clone(), RelModelOptions::paper_fig4());
        if let Ok(e) = ExodusOptimizer::new(&model).optimize(&q.expr, &[]) {
            prop_assert!(
                vplan.cost.total() <= e.cost.total() + 1e-6,
                "volcano {} vs exodus {}", vplan.cost.total(), e.cost.total()
            );
        }
    }

    /// A cost limit below the optimum fails; at or above it succeeds —
    /// the branch-and-bound boundary is exact.
    #[test]
    fn cost_limit_boundary(n in 2usize..5, seed in 0u64..1_000_000) {
        use volcano::rel::RelCost;
        let q = generate_query(&WorkloadConfig::relations(n), seed);
        let best = optimize(&q, SearchOptions::default()).cost;
        let model = RelModel::new(q.catalog.clone(), RelModelOptions::paper_fig4());

        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&q.expr);
        let below = RelCost::new(best.io * 0.99, best.cpu * 0.99);
        prop_assert!(opt.find_best_plan(root, RelProps::any(), Some(below)).is_err());

        let mut opt2 = RelOptimizer::new(&model, SearchOptions::default());
        let root2 = opt2.insert_tree(&q.expr);
        let above = RelCost::new(best.io * 1.01 + 1.0, best.cpu * 1.01 + 1.0);
        let plan = opt2.find_best_plan(root2, RelProps::any(), Some(above));
        prop_assert!(plan.is_ok());
        prop_assert!(plan.unwrap().cost.cheaper_or_equal(&above));
    }

    /// Requesting a sorted result must deliver one, and its cost is at
    /// least the unsorted optimum.
    #[test]
    fn sorted_goal_monotonicity(n in 2usize..5, seed in 0u64..1_000_000) {
        let q = generate_query(&WorkloadConfig::relations(n), seed);
        let model = RelModel::new(q.catalog.clone(), RelModelOptions::paper_fig4());
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&q.expr);
        let unsorted = opt.find_best_plan(root, RelProps::any(), None).unwrap();
        // Sort on the first output attribute.
        let attr = opt.memo().logical_props(opt.memo().repr(root)).cols[0].attr;
        let goal = RelProps::sorted(vec![attr]);
        let sorted = opt.find_best_plan(root, goal.clone(), None).unwrap();
        prop_assert!(sorted.delivered.satisfies(&goal));
        prop_assert!(sorted.cost.total() + 1e-9 >= unsorted.cost.total());
    }
}
