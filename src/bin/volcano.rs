//! `volcano` — a small command-line shell over the whole stack.
//!
//! Reads a `;`-separated script from a file argument or stdin:
//!
//! ```text
//! CREATE TABLE emp (id INT, dept INT DISTINCT 20, salary INT DISTINCT 100) CARD 2000;
//! CREATE TABLE dept (id INT DISTINCT 20, region INT DISTINCT 4) CARD 20;
//! GENERATE SEED 42;
//! EXPLAIN SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id ORDER BY emp.id;
//! SELECT dept, COUNT(*) FROM emp GROUP BY dept;
//! ```
//!
//! Usage: `volcano [script.sql]` (defaults to stdin), or
//! `cargo run --bin volcano -- script.sql`.
//!
//! The shell is one [`Session`] of the serving layer: `SET EXECUTOR`,
//! `SET BUDGET`, `SET PLAN_CACHE`, and `SET FEEDBACK` are session
//! state, and `PREPARE`
//! / `EXECUTE` go through the session (and so through admission
//! control, like any other client of the shared database).

use std::io::Read;
use std::sync::Arc;
use std::time::Duration;

use volcano::core::{SearchBudget, SearchOptions};
use volcano::exec::{BatchConfig, Database, Engine, Server, ServerConfig, Session, TrafficClass};
use volcano::rel::catalog::ColType;
use volcano::rel::{
    explain_expr, explain_plan, Catalog, ColumnDef, RelModel, RelModelOptions, RelOptimizer,
    RelProps,
};
use volcano::sql::{
    lower, parse_script, BudgetSetting, ExecutorSetting, PlanCacheSetting, Statement,
};

struct Shell {
    catalog: Catalog,
    /// The shell's one serving-layer session (created lazily together
    /// with the database, so all CREATE TABLE statements can precede
    /// it). Owns the prepared statements and the per-session `SET`
    /// state; the database underneath takes `&self` everywhere.
    session: Option<Session>,
    /// User-supplied cost limit (§3): queries whose best plan exceeds it
    /// are rejected instead of executed.
    cost_limit: Option<f64>,
    /// Search budget for subsequent queries; tripped budgets degrade to
    /// greedy completion instead of failing. Mirrored into the session
    /// (it may be set before the database exists).
    budget: SearchBudget,
    /// Execution engine for subsequent queries (tuple, batch, or
    /// fused). Mirrored into the session.
    executor: Engine,
    /// Morsel-driven parallel degree for the batch engine (1 = serial).
    /// The optimizer sees it as a physical property: at degree > 1 it
    /// weighs gather plans against serial ones and keeps whichever is
    /// cheaper.
    parallel_degree: u32,
}

impl Shell {
    fn new() -> Self {
        Shell {
            catalog: Catalog::new(),
            session: None,
            cost_limit: None,
            budget: SearchBudget::default(),
            executor: Engine::Tuple,
            parallel_degree: 1,
        }
    }

    fn search_options(&self) -> SearchOptions {
        SearchOptions {
            budget: self.budget.clone(),
            ..SearchOptions::default()
        }
    }

    fn model_options(&self) -> RelModelOptions {
        RelModelOptions::default().with_parallel_degree(self.parallel_degree)
    }

    /// The shell's session, creating the database on first use.
    fn session(&mut self) -> &mut Session {
        if self.session.is_none() {
            let db = Database::in_memory(self.catalog.clone());
            db.set_parallel_degree(self.parallel_degree);
            let server = Server::new(db, ServerConfig::default());
            let mut session = server.session(TrafficClass::Interactive);
            session.set_budget(Some(self.budget.clone()));
            session.set_executor(self.executor);
            self.session = Some(session);
        }
        self.session.as_mut().expect("just created")
    }

    fn db(&mut self) -> Arc<Database> {
        self.session().db().clone()
    }

    fn run(&mut self, stmt: Statement) -> Result<(), String> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                card,
            } => {
                if self.session.is_some() {
                    return Err(
                        "CREATE TABLE must precede GENERATE / queries in this shell".to_string()
                    );
                }
                let cols: Vec<ColumnDef> = columns
                    .into_iter()
                    .map(|c| {
                        let ty = match c.ty.as_str() {
                            "INT" | "INTEGER" => ColType::Int,
                            "FLOAT" | "DOUBLE" => ColType::Float,
                            "STRING" | "TEXT" | "VARCHAR" => ColType::Str,
                            "BOOL" | "BOOLEAN" => ColType::Bool,
                            other => return Err(format!("unknown type {other}")),
                        };
                        let width = c.width.unwrap_or(match ty {
                            ColType::Str => 16,
                            _ => 8,
                        });
                        if c.indexed && ty != ColType::Int {
                            return Err(format!(
                                "column {}: only INT columns can be INDEXED",
                                c.name
                            ));
                        }
                        Ok(ColumnDef {
                            name: c.name,
                            ty,
                            width,
                            distinct: c.distinct.unwrap_or(card),
                            indexed: c.indexed,
                        })
                    })
                    .collect::<Result<_, String>>()?;
                self.catalog.add_table(&name, card, cols);
                println!("created table {name} (card {card})");
                Ok(())
            }
            Statement::SetCostLimit(limit) => {
                self.cost_limit = limit;
                match limit {
                    Some(l) => println!("cost limit set to {l} ms"),
                    None => println!("cost limit off"),
                }
                Ok(())
            }
            Statement::SetBudget(setting) => {
                match setting {
                    BudgetSetting::TimeoutMs(ms) => {
                        self.budget.deadline = Some(Duration::from_millis(ms));
                        println!("budget: timeout {ms} ms");
                    }
                    BudgetSetting::Goals(n) => {
                        self.budget.max_goals = Some(n);
                        println!("budget: max {n} goals");
                    }
                    BudgetSetting::Exprs(n) => {
                        self.budget.max_exprs = Some(n);
                        println!("budget: max {n} memo expressions");
                    }
                    BudgetSetting::Groups(n) => {
                        self.budget.max_groups = Some(n);
                        println!("budget: max {n} memo groups");
                    }
                    BudgetSetting::Off => {
                        self.budget = SearchBudget::default();
                        println!("budget off (exhaustive search)");
                    }
                }
                let budget = self.budget.clone();
                if let Some(session) = &mut self.session {
                    session.set_budget(Some(budget));
                }
                Ok(())
            }
            Statement::SetExecutor(setting) => {
                match setting {
                    ExecutorSetting::Tuple => {
                        self.executor = Engine::Tuple;
                        println!("executor: tuple-at-a-time");
                    }
                    ExecutorSetting::Batch {
                        batch_size,
                        parallel,
                    }
                    | ExecutorSetting::Fused {
                        batch_size,
                        parallel,
                    } => {
                        let cfg = match batch_size {
                            Some(n) => BatchConfig::with_batch_size(n),
                            None => BatchConfig::default(),
                        };
                        self.executor = match setting {
                            ExecutorSetting::Fused { .. } => Engine::Fused(cfg),
                            _ => Engine::Batch(cfg),
                        };
                        if let Some(degree) = parallel {
                            self.parallel_degree = degree.max(1);
                            if let Some(session) = &self.session {
                                session.db().set_parallel_degree(self.parallel_degree);
                            }
                        }
                        println!(
                            "executor: {} (batch size {}, parallel degree {})",
                            self.executor.label(),
                            cfg.batch_size,
                            self.parallel_degree
                        );
                    }
                }
                let executor = self.executor;
                if let Some(session) = &mut self.session {
                    session.set_executor(executor);
                }
                Ok(())
            }
            Statement::Generate { seed } => {
                self.db().generate(seed);
                println!(
                    "generated data for {} table(s)",
                    self.catalog.tables().len()
                );
                Ok(())
            }
            Statement::Explain {
                query: ast,
                analyze,
            } => {
                let mut catalog = self.catalog.clone();
                let q = lower(&ast, &mut catalog).map_err(|e| e.to_string())?;
                println!("-- logical algebra --");
                print!("{}", explain_expr(&catalog, &q.expr));
                let model = RelModel::new(catalog.clone(), self.model_options());
                let mut opt = RelOptimizer::new(&model, self.search_options());
                let root = opt.insert_tree(&q.expr);
                let goal = RelProps::sorted(q.order_by.clone());
                let plan = opt
                    .find_best_plan(root, goal, None)
                    .map_err(|e| e.to_string())?;
                println!("-- physical plan --");
                print!("{}", explain_plan(&catalog, &plan));
                println!(
                    "-- search: {} goals, {} moves, memo ~{} KB, {} --",
                    opt.stats().goals_optimized,
                    opt.stats().total_moves(),
                    opt.stats().memo_bytes / 1024,
                    opt.stats().outcome
                );
                if analyze {
                    let stats_json = opt.stats().to_json();
                    let executor = self.executor;
                    let db = self.db();
                    // The fused engine has no per-plan-node seams to
                    // instrument: report per-pipeline metrics instead of
                    // the per-operator table.
                    if let Engine::Fused(cfg) = executor {
                        let analyzed = volcano::exec::execute_analyzed_fused(&db, &plan, cfg);
                        println!("-- analyze ({} result rows) --", analyzed.rows.len());
                        for line in analyzed.report.lines() {
                            println!("{line}");
                        }
                        return Ok(());
                    }
                    let analyzed = match executor {
                        Engine::Batch(cfg) => {
                            volcano::exec::execute_analyzed_batch(&db, &catalog, &plan, cfg)
                        }
                        _ => volcano::exec::execute_analyzed(&db, &catalog, &plan),
                    };
                    println!("-- analyze ({} result rows) --", analyzed.rows.len());
                    print!("{}", analyzed.report());
                    // Machine-readable export: per-operator measurements
                    // plus the search and plan-cache statistics, one JSON
                    // object.
                    println!("-- json --");
                    println!(
                        "{{\"analyze\":{},\"search\":{},\"plan_cache\":{},\"feedback\":{}}}",
                        analyzed.to_json(),
                        stats_json,
                        db.plan_cache().stats().to_json(),
                        db.feedback_stats().to_json()
                    );
                }
                Ok(())
            }
            Statement::Query(ast) => {
                // Lowering may allocate aggregate attrs: the execution
                // catalog must match the planning catalog.
                let mut catalog = self.catalog.clone();
                let q = lower(&ast, &mut catalog).map_err(|e| e.to_string())?;
                let cost_limit = self.cost_limit;
                let options = self.search_options();
                let model_options = self.model_options();
                let executor = self.executor;
                let db = self.db();
                let model = RelModel::new(catalog.clone(), model_options);
                let mut opt = RelOptimizer::new(&model, options);
                let root = opt.insert_tree(&q.expr);
                let goal = RelProps::sorted(q.order_by.clone());
                let limit = cost_limit.map(|l| volcano::rel::RelCost::new(0.0, l));
                let plan = opt
                    .find_best_plan(root, goal, limit)
                    .map_err(|e| match cost_limit {
                        Some(l) => format!("{e} (cost limit {l} ms)"),
                        None => e.to_string(),
                    })?;
                if opt.stats().outcome.is_degraded() {
                    println!(
                        "-- note: search budget tripped; plan is {} --",
                        opt.stats().outcome
                    );
                }
                let rows = match executor {
                    Engine::Tuple => db.execute(&plan),
                    Engine::Batch(cfg) => db.execute_batch(&plan, cfg),
                    Engine::Fused(cfg) => db.execute_fused(&plan, cfg),
                };
                for row in &rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                println!("({} rows)", rows.len());
                Ok(())
            }
            Statement::DropTable { name } => {
                if self.catalog.drop_table(&name).is_none() {
                    return Err(format!("unknown table {name}"));
                }
                if let Some(session) = &self.session {
                    session.db().drop_table(&name);
                }
                println!("dropped table {name}");
                Ok(())
            }
            Statement::SetPlanCache(setting) => {
                let db = self.db();
                match setting {
                    PlanCacheSetting::On => {
                        self.session().set_plan_cache(true);
                        println!("plan cache on (capacity {})", db.plan_cache().capacity());
                    }
                    PlanCacheSetting::Off => {
                        // Session-level bypass: the shared cache and its
                        // contents are untouched for other sessions.
                        self.session().set_plan_cache(false);
                        println!("plan cache off");
                    }
                    PlanCacheSetting::Capacity(n) => {
                        db.set_plan_cache_capacity(n);
                        self.session().set_plan_cache(true);
                        println!("plan cache on (capacity {})", db.plan_cache().capacity());
                    }
                }
                Ok(())
            }
            Statement::SetFeedback(on) => {
                self.session().set_feedback(on);
                if on {
                    println!("feedback on (adaptive re-optimization)");
                } else {
                    println!("feedback off");
                }
                Ok(())
            }
            Statement::Prepare { name, query } => {
                let params = self.session().prepare_ast(&name, &query);
                println!("prepared {name} ({params} parameter(s))");
                Ok(())
            }
            Statement::Execute { name, params } => {
                let out = self
                    .session()
                    .execute(&name, &params)
                    .map_err(|e| e.to_string())?;
                if out.degraded {
                    println!("-- note: admitted degraded (greedy search) --");
                }
                let out = out.outcome;
                for row in &out.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                println!("({} rows, plan cache {})", out.rows.len(), out.cache);
                Ok(())
            }
        }
    }
}

fn main() {
    let mut input = String::new();
    match std::env::args().nth(1) {
        Some(path) => {
            input = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        }
        None => {
            std::io::stdin()
                .read_to_string(&mut input)
                .expect("read stdin");
        }
    }
    let stmts = match parse_script(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    let mut shell = Shell::new();
    for stmt in stmts {
        if let Err(e) = shell.run(stmt) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
