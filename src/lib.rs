//! # volcano — facade crate
//!
//! Re-exports the public API of the Volcano optimizer generator
//! reproduction so that examples, integration tests, and downstream users
//! can depend on a single crate.
//!
//! * [`core`] — the data-model-independent search engine (memo, rules,
//!   directed dynamic programming).
//! * [`rel`] — the relational model specification (operators, algorithms,
//!   enforcers, cost model, catalog).
//! * [`exodus`] — the EXODUS optimizer generator baseline used by the
//!   paper's Figure 4 comparison.
//! * [`exec`] — the Volcano demand-driven iterator execution engine.
//! * [`store`] — paged heap-file storage with a buffer pool.
//! * [`sql`] — a small SQL-like front end lowering to the logical algebra.
//! * [`gen`] — the optimizer generator: model-spec DSL, Rust code emitter,
//!   and interpreted dynamic models.
//! * [`oodb`] — an object algebra model demonstrating data-model
//!   independence (materialize operator, assembly enforcer).

pub use exodus;
pub use volcano_core as core;
pub use volcano_exec as exec;
pub use volcano_gen as gen;
pub use volcano_oodb as oodb;
pub use volcano_rel as rel;
pub use volcano_sql as sql;
pub use volcano_store as store;
